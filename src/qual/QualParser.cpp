//===- QualParser.cpp -----------------------------------------------------===//

#include "qual/QualParser.h"

#include "support/Lexer.h"

#include <cassert>
#include <set>

using namespace stq;
using namespace stq::qual;
using cminus::BinaryOp;
using cminus::UnaryOp;

namespace {

class QualParser {
public:
  QualParser(std::vector<Token> Tokens, QualifierSet &Set,
             DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Set(Set), Diags(Diags) {}

  bool run();

private:
  const Token &peek(unsigned Ahead = 0) const {
    size_t Index = Pos + Ahead;
    if (Index >= Tokens.size())
      Index = Tokens.size() - 1;
    return Tokens[Index];
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokenKind K) const { return peek().is(K); }
  bool checkIdent(const char *S) const { return peek().isIdent(S); }
  bool match(TokenKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool matchIdent(const char *S) {
    if (!checkIdent(S))
      return false;
    advance();
    return true;
  }
  bool expect(TokenKind K, const char *Context) {
    if (match(K))
      return true;
    error(std::string("expected ") + tokenKindName(K) + " " + Context);
    return false;
  }
  void error(const std::string &Message) {
    Failed = true;
    // Cap the flood: fuzzed input can otherwise produce one diagnostic
    // per token.
    ++ErrorCount;
    if (ErrorCount > MaxParseErrors)
      return;
    if (ErrorCount == MaxParseErrors) {
      Diags.error(peek().Loc, "qualparse",
                  "too many parse errors; suppressing further diagnostics");
      return;
    }
    Diags.error(peek().Loc, "qualparse", Message);
  }
  /// True when predicate nesting is within bounds; otherwise reports one
  /// too-deep diagnostic and fails the enclosing clause. Predicates are
  /// parsed by recursive descent on the native stack, so an adversarial
  /// `((((...` tower would otherwise overflow it.
  bool checkDepth() {
    if (Depth < MaxNestingDepth)
      return true;
    if (!DepthErrorReported) {
      error("predicate nesting too deep: more than " +
            std::to_string(MaxNestingDepth) + " levels");
      DepthErrorReported = true;
    }
    return false;
  }
  /// Increments the nesting counter for one recursive parse call.
  struct DepthScope {
    unsigned &Depth;
    explicit DepthScope(unsigned &Depth) : Depth(Depth) { ++Depth; }
    ~DepthScope() { --Depth; }
  };
  /// Skips to the next 'value'/'ref' keyword or EOF.
  void synchronize() {
    while (!check(TokenKind::EndOfFile) && !checkIdent("value") &&
           !checkIdent("ref"))
      advance();
  }

  /// True when the current token starts a new block or definition,
  /// terminating a clause list.
  bool atBlockBoundary() const {
    return check(TokenKind::EndOfFile) || checkIdent("case") ||
           checkIdent("restrict") || checkIdent("assign") ||
           checkIdent("disallow") || checkIdent("ondecl") ||
           checkIdent("invariant") || checkIdent("value") ||
           checkIdent("ref");
  }

  void parseQualifierDef();
  bool parseTypePattern(TypePattern &Out);
  bool parseClassifier(Classifier &Out);
  bool parseClause(Clause &Out);
  bool parsePattern(ExprPattern &Out);
  bool parsePred(Pred &Out);
  bool parsePredAnd(Pred &Out);
  bool parsePredAtom(Pred &Out);
  bool parsePredTerm(Pred::Term &Out);
  bool parseInvPred(InvPred &Out);
  bool parseInvOr(InvPred &Out);
  bool parseInvAnd(InvPred &Out);
  bool parseInvAtom(InvPred &Out);
  bool parseInvTerm(InvTerm &Out);
  /// Parses a comparison operator; also accepts '=' as equality (the
  /// paper's invariants write `*P = value(L)`).
  bool parseCmpOp(BinaryOp &Out, bool AllowSingleEq);

  std::vector<Token> Tokens;
  size_t Pos = 0;
  QualifierSet &Set;
  DiagnosticEngine &Diags;
  bool Failed = false;
  static constexpr unsigned MaxNestingDepth = 200;
  unsigned Depth = 0;
  bool DepthErrorReported = false;
  static constexpr unsigned MaxParseErrors = 64;
  unsigned ErrorCount = 0;
};

} // namespace

bool QualParser::run() {
  while (!check(TokenKind::EndOfFile)) {
    if (checkIdent("value") || checkIdent("ref")) {
      parseQualifierDef();
    } else {
      error("expected 'value' or 'ref' qualifier definition");
      synchronize();
    }
  }
  return !Failed;
}

void QualParser::parseQualifierDef() {
  QualifierDef Def;
  Def.Loc = peek().Loc;
  Def.IsRef = checkIdent("ref");
  advance(); // 'value' or 'ref'
  if (!matchIdent("qualifier")) {
    error("expected 'qualifier'");
    synchronize();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected qualifier name");
    synchronize();
    return;
  }
  Def.Name = advance().Text;
  if (!expect(TokenKind::LParen, "after qualifier name") ||
      !parseTypePattern(Def.SubjectTy) ||
      !parseClassifier(Def.SubjectCls)) {
    synchronize();
    return;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected subject variable name");
    synchronize();
    return;
  }
  Def.SubjectVar = advance().Text;
  if (!expect(TokenKind::RParen, "to close qualifier signature")) {
    synchronize();
    return;
  }

  // Blocks, in any order.
  while (true) {
    if (matchIdent("case")) {
      if (!check(TokenKind::Identifier) || peek().Text != Def.SubjectVar)
        error("case block must scrutinize the subject variable '" +
              Def.SubjectVar + "'");
      else
        advance();
      if (!matchIdent("of"))
        error("expected 'of' after case subject");
      do {
        Clause C;
        if (!parseClause(C))
          break;
        Def.Cases.push_back(std::move(C));
      } while (match(TokenKind::Pipe));
      continue;
    }
    if (matchIdent("restrict")) {
      do {
        Clause C;
        if (!parseClause(C))
          break;
        Def.Restricts.push_back(std::move(C));
      } while (match(TokenKind::Pipe));
      continue;
    }
    if (matchIdent("assign")) {
      if (!check(TokenKind::Identifier) || peek().Text != Def.SubjectVar)
        error("assign block must name the subject variable '" +
              Def.SubjectVar + "'");
      else
        advance();
      do {
        Clause C;
        if (!parseClause(C))
          break;
        Def.Assigns.push_back(std::move(C));
      } while (match(TokenKind::Pipe));
      continue;
    }
    if (matchIdent("disallow")) {
      do {
        if (match(TokenKind::Amp)) {
          if (!check(TokenKind::Identifier) ||
              peek().Text != Def.SubjectVar)
            error("disallow '&' must apply to the subject variable");
          else
            advance();
          Def.DisallowAddrOf = true;
        } else if (check(TokenKind::Identifier) &&
                   peek().Text == Def.SubjectVar) {
          advance();
          Def.DisallowRead = true;
        } else {
          error("disallow clause must be the subject variable or its "
                "address");
          break;
        }
      } while (match(TokenKind::Pipe));
      continue;
    }
    if (matchIdent("ondecl")) {
      Def.OnDecl = true;
      continue;
    }
    if (matchIdent("invariant")) {
      InvPred Inv;
      if (parseInvPred(Inv))
        Def.Invariant = std::move(Inv);
      continue;
    }
    break;
  }
  Set.add(std::move(Def));
}

bool QualParser::parseTypePattern(TypePattern &Out) {
  if (matchIdent("int"))
    Out = TypePattern::intTy();
  else if (matchIdent("char"))
    Out = TypePattern::charTy();
  else if (matchIdent("T"))
    Out = TypePattern::any();
  else {
    error("expected type pattern ('T', 'int', or 'char')");
    return false;
  }
  while (match(TokenKind::Star))
    Out = TypePattern::pointerTo(std::move(Out));
  return true;
}

bool QualParser::parseClassifier(Classifier &Out) {
  if (matchIdent("Expr")) {
    Out = Classifier::Expr;
    return true;
  }
  if (matchIdent("Const")) {
    Out = Classifier::Const;
    return true;
  }
  if (matchIdent("LValue")) {
    Out = Classifier::LValue;
    return true;
  }
  if (matchIdent("Var")) {
    Out = Classifier::Var;
    return true;
  }
  error("expected classifier (Expr, Const, LValue, or Var)");
  return false;
}

bool QualParser::parseClause(Clause &Out) {
  Out.Loc = peek().Loc;
  while (matchIdent("decl")) {
    TypePattern Ty;
    Classifier Cls;
    if (!parseTypePattern(Ty) || !parseClassifier(Cls))
      return false;
    do {
      if (!check(TokenKind::Identifier)) {
        error("expected pattern variable name in decl");
        return false;
      }
      VarPatternDecl D;
      D.Loc = peek().Loc;
      D.Name = advance().Text;
      D.Ty = Ty;
      D.Cls = Cls;
      Out.Decls.push_back(std::move(D));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::Colon, "after decl list"))
      return false;
  }
  if (!parsePattern(Out.Pattern))
    return false;
  Out.Where = Pred::makeTrue();
  if (match(TokenKind::Comma)) {
    if (!matchIdent("where")) {
      error("expected 'where' after ',' in clause");
      return false;
    }
    if (!parsePred(Out.Where))
      return false;
  }
  return true;
}

bool QualParser::parsePattern(ExprPattern &Out) {
  Out.Loc = peek().Loc;
  if (match(TokenKind::Star)) {
    Out.K = ExprPattern::Kind::Deref;
    if (!check(TokenKind::Identifier)) {
      error("expected variable after '*' in pattern");
      return false;
    }
    Out.X = advance().Text;
    return true;
  }
  if (match(TokenKind::Amp)) {
    Out.K = ExprPattern::Kind::AddrOf;
    if (!check(TokenKind::Identifier)) {
      error("expected variable after '&' in pattern");
      return false;
    }
    Out.X = advance().Text;
    return true;
  }
  if (matchIdent("new")) {
    Out.K = ExprPattern::Kind::New;
    return true;
  }
  if (matchIdent("NULL")) {
    Out.K = ExprPattern::Kind::Null;
    return true;
  }
  if (check(TokenKind::Minus) || check(TokenKind::Bang) ||
      check(TokenKind::Tilde)) {
    UnaryOp Op = check(TokenKind::Minus)  ? UnaryOp::Neg
                 : check(TokenKind::Bang) ? UnaryOp::Not
                                          : UnaryOp::BitNot;
    advance();
    Out.K = ExprPattern::Kind::Unary;
    Out.Uop = Op;
    if (!check(TokenKind::Identifier)) {
      error("expected variable after unary operator in pattern");
      return false;
    }
    Out.X = advance().Text;
    return true;
  }
  if (!check(TokenKind::Identifier)) {
    error("expected pattern");
    return false;
  }
  Out.X = advance().Text;
  // Binary pattern?
  BinaryOp Bop;
  bool IsBinary = true;
  if (match(TokenKind::Plus))
    Bop = BinaryOp::Add;
  else if (match(TokenKind::Minus))
    Bop = BinaryOp::Sub;
  else if (match(TokenKind::Star))
    Bop = BinaryOp::Mul;
  else if (match(TokenKind::Slash))
    Bop = BinaryOp::Div;
  else if (match(TokenKind::Percent))
    Bop = BinaryOp::Rem;
  else if (match(TokenKind::EqEq))
    Bop = BinaryOp::Eq;
  else if (match(TokenKind::BangEq))
    Bop = BinaryOp::Ne;
  else if (match(TokenKind::Less))
    Bop = BinaryOp::Lt;
  else if (match(TokenKind::LessEq))
    Bop = BinaryOp::Le;
  else if (match(TokenKind::Greater))
    Bop = BinaryOp::Gt;
  else if (match(TokenKind::GreaterEq))
    Bop = BinaryOp::Ge;
  else
    IsBinary = false;
  if (!IsBinary) {
    Out.K = ExprPattern::Kind::Var;
    return true;
  }
  Out.K = ExprPattern::Kind::Binary;
  Out.Bop = Bop;
  if (!check(TokenKind::Identifier)) {
    error("expected variable after binary operator in pattern");
    return false;
  }
  Out.Y = advance().Text;
  return true;
}

bool QualParser::parsePred(Pred &Out) {
  if (!parsePredAnd(Out))
    return false;
  while (match(TokenKind::PipePipe)) {
    Pred RHS;
    if (!parsePredAnd(RHS))
      return false;
    Pred Combined;
    Combined.K = Pred::Kind::Or;
    Combined.Loc = Out.Loc;
    Combined.LHS = std::make_shared<Pred>(std::move(Out));
    Combined.RHS = std::make_shared<Pred>(std::move(RHS));
    Out = std::move(Combined);
  }
  return true;
}

bool QualParser::parsePredAnd(Pred &Out) {
  if (!parsePredAtom(Out))
    return false;
  while (match(TokenKind::AmpAmp)) {
    Pred RHS;
    if (!parsePredAtom(RHS))
      return false;
    Pred Combined;
    Combined.K = Pred::Kind::And;
    Combined.Loc = Out.Loc;
    Combined.LHS = std::make_shared<Pred>(std::move(Out));
    Combined.RHS = std::make_shared<Pred>(std::move(RHS));
    Out = std::move(Combined);
  }
  return true;
}

bool QualParser::parsePredAtom(Pred &Out) {
  if (!checkDepth())
    return false;
  DepthScope Scope(Depth);
  Out.Loc = peek().Loc;
  if (match(TokenKind::LParen)) {
    if (!parsePred(Out))
      return false;
    return expect(TokenKind::RParen, "to close predicate");
  }
  // Qualifier check: name '(' var ')'.
  if (check(TokenKind::Identifier) && peek(1).is(TokenKind::LParen)) {
    Out.K = Pred::Kind::QualCheck;
    Out.Qual = advance().Text;
    advance(); // '('
    if (!check(TokenKind::Identifier)) {
      error("expected variable inside qualifier check");
      return false;
    }
    Out.Var = advance().Text;
    return expect(TokenKind::RParen, "to close qualifier check");
  }
  // Comparison.
  Out.K = Pred::Kind::Compare;
  if (!parsePredTerm(Out.A))
    return false;
  if (!parseCmpOp(Out.CmpOp, /*AllowSingleEq=*/false))
    return false;
  return parsePredTerm(Out.B);
}

bool QualParser::parsePredTerm(Pred::Term &Out) {
  if (check(TokenKind::Identifier) && peek().isIdent("NULL")) {
    advance();
    Out.K = Pred::Term::Kind::Null;
    return true;
  }
  if (check(TokenKind::Identifier)) {
    Out.K = Pred::Term::Kind::Var;
    Out.Var = advance().Text;
    return true;
  }
  bool Negative = match(TokenKind::Minus);
  if (check(TokenKind::IntLiteral)) {
    Out.K = Pred::Term::Kind::Int;
    Out.Int = advance().IntValue;
    if (Negative)
      Out.Int = -Out.Int;
    return true;
  }
  error("expected predicate term (variable, integer, or NULL)");
  return false;
}

bool QualParser::parseCmpOp(BinaryOp &Out, bool AllowSingleEq) {
  if (match(TokenKind::EqEq))
    Out = BinaryOp::Eq;
  else if (AllowSingleEq && match(TokenKind::Eq))
    Out = BinaryOp::Eq;
  else if (match(TokenKind::BangEq))
    Out = BinaryOp::Ne;
  else if (match(TokenKind::Less))
    Out = BinaryOp::Lt;
  else if (match(TokenKind::LessEq))
    Out = BinaryOp::Le;
  else if (match(TokenKind::Greater))
    Out = BinaryOp::Gt;
  else if (match(TokenKind::GreaterEq))
    Out = BinaryOp::Ge;
  else {
    error("expected comparison operator");
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Invariants
//===----------------------------------------------------------------------===//

bool QualParser::parseInvPred(InvPred &Out) {
  if (!parseInvOr(Out))
    return false;
  if (match(TokenKind::FatArrow)) {
    InvPred RHS;
    if (!parseInvPred(RHS)) // Right-associative.
      return false;
    InvPred Combined;
    Combined.K = InvPred::Kind::Implies;
    Combined.Loc = Out.Loc;
    Combined.LHS = std::make_shared<InvPred>(std::move(Out));
    Combined.RHS = std::make_shared<InvPred>(std::move(RHS));
    Out = std::move(Combined);
  }
  return true;
}

bool QualParser::parseInvOr(InvPred &Out) {
  if (!parseInvAnd(Out))
    return false;
  while (match(TokenKind::PipePipe)) {
    InvPred RHS;
    if (!parseInvAnd(RHS))
      return false;
    InvPred Combined;
    Combined.K = InvPred::Kind::Or;
    Combined.Loc = Out.Loc;
    Combined.LHS = std::make_shared<InvPred>(std::move(Out));
    Combined.RHS = std::make_shared<InvPred>(std::move(RHS));
    Out = std::move(Combined);
  }
  return true;
}

bool QualParser::parseInvAnd(InvPred &Out) {
  if (!parseInvAtom(Out))
    return false;
  while (match(TokenKind::AmpAmp)) {
    InvPred RHS;
    if (!parseInvAtom(RHS))
      return false;
    InvPred Combined;
    Combined.K = InvPred::Kind::And;
    Combined.Loc = Out.Loc;
    Combined.LHS = std::make_shared<InvPred>(std::move(Out));
    Combined.RHS = std::make_shared<InvPred>(std::move(RHS));
    Out = std::move(Combined);
  }
  return true;
}

bool QualParser::parseInvAtom(InvPred &Out) {
  if (!checkDepth())
    return false;
  DepthScope Scope(Depth);
  Out.Loc = peek().Loc;
  if (matchIdent("forall")) {
    Out.K = InvPred::Kind::Forall;
    if (!parseTypePattern(Out.ForallTy))
      return false;
    if (!check(TokenKind::Identifier)) {
      error("expected quantified variable name");
      return false;
    }
    Out.ForallVar = advance().Text;
    if (!expect(TokenKind::Colon, "after quantified variable"))
      return false;
    InvPred Body;
    if (!parseInvPred(Body))
      return false;
    Out.Body = std::make_shared<InvPred>(std::move(Body));
    return true;
  }
  if (match(TokenKind::LParen)) {
    if (!parseInvPred(Out))
      return false;
    return expect(TokenKind::RParen, "to close invariant predicate");
  }
  if (checkIdent("isHeapLoc")) {
    advance();
    Out.K = InvPred::Kind::IsHeapLoc;
    if (!expect(TokenKind::LParen, "after isHeapLoc"))
      return false;
    if (!parseInvTerm(Out.A))
      return false;
    return expect(TokenKind::RParen, "to close isHeapLoc");
  }
  Out.K = InvPred::Kind::Compare;
  if (!parseInvTerm(Out.A))
    return false;
  if (!parseCmpOp(Out.CmpOp, /*AllowSingleEq=*/true))
    return false;
  return parseInvTerm(Out.B);
}

bool QualParser::parseInvTerm(InvTerm &Out) {
  if (checkIdent("value") && peek(1).is(TokenKind::LParen)) {
    advance();
    advance();
    Out.K = InvTerm::Kind::ValueOf;
    if (!check(TokenKind::Identifier)) {
      error("expected variable inside value(...)");
      return false;
    }
    Out.Var = advance().Text;
    return expect(TokenKind::RParen, "to close value(...)");
  }
  if (checkIdent("location") && peek(1).is(TokenKind::LParen)) {
    advance();
    advance();
    Out.K = InvTerm::Kind::LocationOf;
    if (!check(TokenKind::Identifier)) {
      error("expected variable inside location(...)");
      return false;
    }
    Out.Var = advance().Text;
    return expect(TokenKind::RParen, "to close location(...)");
  }
  if (match(TokenKind::Star)) {
    Out.K = InvTerm::Kind::Deref;
    if (!check(TokenKind::Identifier)) {
      error("expected quantified variable after '*'");
      return false;
    }
    Out.Var = advance().Text;
    return true;
  }
  if (checkIdent("NULL")) {
    advance();
    Out.K = InvTerm::Kind::Null;
    return true;
  }
  if (check(TokenKind::Identifier)) {
    Out.K = InvTerm::Kind::VarRef;
    Out.Var = advance().Text;
    return true;
  }
  bool Negative = match(TokenKind::Minus);
  if (check(TokenKind::IntLiteral)) {
    Out.K = InvTerm::Kind::Int;
    Out.Int = advance().IntValue;
    if (Negative)
      Out.Int = -Out.Int;
    return true;
  }
  error("expected invariant term");
  return false;
}

bool stq::qual::parseQualifiers(const std::string &Source, QualifierSet &Set,
                                DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  unsigned ErrorsBefore = Diags.errorCount();
  QualParser P(Lex.tokenize(), Set, Diags);
  bool Ok = P.run();
  return Ok && Diags.errorCount() == ErrorsBefore;
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

namespace {

class WellFormedChecker {
public:
  WellFormedChecker(const QualifierSet &Set, DiagnosticEngine &Diags)
      : Set(Set), Diags(Diags) {}

  bool run();

private:
  void error(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, "qualwf", Message);
  }

  void checkDef(const QualifierDef &Def);
  void checkClause(const QualifierDef &Def, const Clause &C,
                   const char *BlockName, bool SubjectInScope);
  /// Verifies \p Name is a declared pattern variable (or the subject, when
  /// in scope); returns its declaration or null for the subject.
  const VarPatternDecl *resolveVar(const QualifierDef &Def, const Clause &C,
                                   const std::string &Name,
                                   bool SubjectInScope, SourceLoc Loc,
                                   bool &Ok);
  void checkPred(const QualifierDef &Def, const Clause &C, const Pred &P,
                 bool SubjectInScope);
  void checkInv(const QualifierDef &Def, const InvPred &P,
                std::set<std::string> &Bound);
  void checkInvTerm(const QualifierDef &Def, const InvTerm &T,
                    const std::set<std::string> &Bound);

  const QualifierSet &Set;
  DiagnosticEngine &Diags;
};

} // namespace

bool WellFormedChecker::run() {
  unsigned ErrorsBefore = Diags.errorCount();
  std::set<std::string> Seen;
  for (const QualifierDef &Def : Set.all()) {
    if (!Seen.insert(Def.Name).second)
      error(Def.Loc, "duplicate qualifier '" + Def.Name + "'");
    checkDef(Def);
  }
  return Diags.errorCount() == ErrorsBefore;
}

void WellFormedChecker::checkDef(const QualifierDef &Def) {
  if (Def.isValue()) {
    if (Def.SubjectCls != Classifier::Expr)
      error(Def.Loc, "value qualifier '" + Def.Name +
                         "' must have an Expr subject");
    if (!Def.Assigns.empty() || Def.OnDecl || Def.DisallowRead ||
        Def.DisallowAddrOf)
      error(Def.Loc, "value qualifier '" + Def.Name +
                         "' may not use assign/disallow/ondecl blocks");
  } else {
    if (Def.SubjectCls != Classifier::LValue &&
        Def.SubjectCls != Classifier::Var)
      error(Def.Loc, "reference qualifier '" + Def.Name +
                         "' must have an LValue or Var subject");
    if (!Def.Cases.empty())
      error(Def.Loc, "reference qualifier '" + Def.Name +
                         "' may not use a case block");
  }

  for (const Clause &C : Def.Cases)
    checkClause(Def, C, "case", /*SubjectInScope=*/true);
  for (const Clause &C : Def.Restricts)
    checkClause(Def, C, "restrict", /*SubjectInScope=*/false);
  for (const Clause &C : Def.Assigns)
    checkClause(Def, C, "assign", /*SubjectInScope=*/false);

  if (Def.Invariant) {
    std::set<std::string> Bound;
    checkInv(Def, *Def.Invariant, Bound);
  }
}

const VarPatternDecl *WellFormedChecker::resolveVar(
    const QualifierDef &Def, const Clause &C, const std::string &Name,
    bool SubjectInScope, SourceLoc Loc, bool &Ok) {
  if (const VarPatternDecl *D = C.findDecl(Name))
    return D;
  if (SubjectInScope && Name == Def.SubjectVar)
    return nullptr; // The subject.
  error(Loc, "undeclared pattern variable '" + Name + "' in '" + Def.Name +
                 "'");
  Ok = false;
  return nullptr;
}

void WellFormedChecker::checkClause(const QualifierDef &Def, const Clause &C,
                                    const char *BlockName,
                                    bool SubjectInScope) {
  // Duplicate decls.
  std::set<std::string> Names;
  for (const VarPatternDecl &D : C.Decls) {
    if (!Names.insert(D.Name).second)
      error(D.Loc, "duplicate pattern variable '" + D.Name + "'");
    if (D.Name == Def.SubjectVar)
      error(D.Loc, "pattern variable '" + D.Name +
                       "' shadows the subject variable");
  }

  bool Ok = true;
  const ExprPattern &P = C.Pattern;
  switch (P.K) {
  case ExprPattern::Kind::New:
    if (std::string(BlockName) != "assign")
      error(P.Loc,
            "'new' may only be matched in assign blocks (calls are not "
            "expressions)");
    break;
  case ExprPattern::Kind::Null:
    if (std::string(BlockName) != "assign")
      error(P.Loc, "'NULL' pattern is only available in assign blocks");
    break;
  case ExprPattern::Kind::Var:
    resolveVar(Def, C, P.X, SubjectInScope, P.Loc, Ok);
    break;
  case ExprPattern::Kind::Deref:
  case ExprPattern::Kind::AddrOf:
  case ExprPattern::Kind::Unary: {
    const VarPatternDecl *D = resolveVar(Def, C, P.X, SubjectInScope, P.Loc,
                                         Ok);
    if (Ok && P.K == ExprPattern::Kind::Deref && D &&
        D->Ty.K != TypePattern::Kind::Pointer &&
        D->Ty.K != TypePattern::Kind::Any)
      error(P.Loc, "dereference pattern requires a pointer-typed variable");
    break;
  }
  case ExprPattern::Kind::Binary:
    resolveVar(Def, C, P.X, SubjectInScope, P.Loc, Ok);
    resolveVar(Def, C, P.Y, SubjectInScope, P.Loc, Ok);
    break;
  }

  checkPred(Def, C, C.Where, SubjectInScope);
}

void WellFormedChecker::checkPred(const QualifierDef &Def, const Clause &C,
                                  const Pred &P, bool SubjectInScope) {
  switch (P.K) {
  case Pred::Kind::True:
    return;
  case Pred::Kind::And:
  case Pred::Kind::Or:
    checkPred(Def, C, *P.LHS, SubjectInScope);
    checkPred(Def, C, *P.RHS, SubjectInScope);
    return;
  case Pred::Kind::QualCheck: {
    if (!Set.find(P.Qual))
      error(P.Loc, "qualifier check references unknown qualifier '" +
                       P.Qual + "'");
    bool Ok = true;
    resolveVar(Def, C, P.Var, SubjectInScope, P.Loc, Ok);
    return;
  }
  case Pred::Kind::Compare: {
    for (const Pred::Term *T : {&P.A, &P.B}) {
      if (T->K != Pred::Term::Kind::Var)
        continue;
      bool Ok = true;
      const VarPatternDecl *D =
          resolveVar(Def, C, T->Var, SubjectInScope, P.Loc, Ok);
      if (Ok && (!D || D->Cls != Classifier::Const))
        error(P.Loc, "comparison operand '" + T->Var +
                         "' must have classifier Const");
    }
    return;
  }
  }
}

void WellFormedChecker::checkInv(const QualifierDef &Def, const InvPred &P,
                                 std::set<std::string> &Bound) {
  switch (P.K) {
  case InvPred::Kind::Compare:
    checkInvTerm(Def, P.A, Bound);
    checkInvTerm(Def, P.B, Bound);
    return;
  case InvPred::Kind::IsHeapLoc:
    checkInvTerm(Def, P.A, Bound);
    return;
  case InvPred::Kind::And:
  case InvPred::Kind::Or:
  case InvPred::Kind::Implies:
    checkInv(Def, *P.LHS, Bound);
    checkInv(Def, *P.RHS, Bound);
    return;
  case InvPred::Kind::Forall: {
    if (!Def.IsRef)
      error(P.Loc,
            "quantified invariants are only supported for reference "
            "qualifiers");
    if (P.ForallTy.K != TypePattern::Kind::Pointer)
      error(P.Loc, "quantified variable must range over pointer locations");
    if (Bound.count(P.ForallVar) || P.ForallVar == Def.SubjectVar)
      error(P.Loc, "quantified variable '" + P.ForallVar +
                       "' shadows an existing binding");
    Bound.insert(P.ForallVar);
    checkInv(Def, *P.Body, Bound);
    Bound.erase(P.ForallVar);
    return;
  }
  }
}

void WellFormedChecker::checkInvTerm(const QualifierDef &Def, const InvTerm &T,
                                     const std::set<std::string> &Bound) {
  switch (T.K) {
  case InvTerm::Kind::ValueOf:
    if (T.Var != Def.SubjectVar)
      error(SourceLoc(), "value(...) must name the subject variable in '" +
                             Def.Name + "'");
    return;
  case InvTerm::Kind::LocationOf:
    if (T.Var != Def.SubjectVar)
      error(SourceLoc(),
            "location(...) must name the subject variable in '" + Def.Name +
                "'");
    if (!Def.IsRef)
      error(SourceLoc(),
            "location(...) is only meaningful for reference qualifiers");
    return;
  case InvTerm::Kind::Deref:
    if (!Bound.count(T.Var))
      error(SourceLoc(), "'*" + T.Var +
                             "' dereferences an unbound variable in '" +
                             Def.Name + "'");
    return;
  case InvTerm::Kind::VarRef:
    if (!Bound.count(T.Var))
      error(SourceLoc(), "unbound variable '" + T.Var + "' in invariant of '" +
                             Def.Name + "'");
    return;
  case InvTerm::Kind::Int:
  case InvTerm::Kind::Null:
    return;
  }
}

bool stq::qual::checkWellFormed(const QualifierSet &Set,
                                DiagnosticEngine &Diags) {
  WellFormedChecker C(Set, Diags);
  return C.run();
}
