//===- QualAST.h - Qualifier-definition language AST ------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of the paper's qualifier-definition language
/// (section 2): value and reference qualifiers with `case`, `restrict`,
/// `assign`, `disallow`, `ondecl`, and `invariant` blocks.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_QUAL_QUALAST_H
#define STQ_QUAL_QUALAST_H

#include "cminus/AST.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace stq::qual {

/// The classifier of a pattern variable (section 2.1): which kind of program
/// fragment it may bind to during typechecking.
enum class Classifier { Expr, Const, LValue, Var };

const char *classifierName(Classifier C);

/// A type in a qualifier signature or declaration list: `T`, `T*`, `int`,
/// `char`, etc. `T` is the paper's type variable and matches any type.
/// Matching ignores qualifiers at every level.
struct TypePattern {
  enum class Kind { Any, Int, Char, Pointer };

  Kind K = Kind::Any;
  /// Pointee pattern, for Kind::Pointer.
  std::shared_ptr<TypePattern> Pointee;

  static TypePattern any() { return TypePattern{Kind::Any, nullptr}; }
  static TypePattern intTy() { return TypePattern{Kind::Int, nullptr}; }
  static TypePattern charTy() { return TypePattern{Kind::Char, nullptr}; }
  static TypePattern pointerTo(TypePattern Sub) {
    return TypePattern{Kind::Pointer,
                       std::make_shared<TypePattern>(std::move(Sub))};
  }

  /// Does the concrete type \p Ty match this pattern (qualifiers ignored)?
  bool matches(const cminus::TypePtr &Ty) const;

  std::string str() const;
};

/// A declared pattern variable: `int Expr E1`.
struct VarPatternDecl {
  std::string Name;
  TypePattern Ty;
  Classifier Cls = Classifier::Expr;
  SourceLoc Loc;
};

/// A syntactic expression pattern (grammar in section 2.1.1):
///   P ::= X | *X | &X | new | NULL | uop X | X bop X
/// NULL appears as a right-hand-side pattern in assign blocks (figure 5).
struct ExprPattern {
  enum class Kind { Var, Deref, AddrOf, New, Null, Unary, Binary };

  Kind K = Kind::Var;
  /// First variable (X); unused for New/Null.
  std::string X;
  /// Second variable (for Binary).
  std::string Y;
  cminus::UnaryOp Uop = cminus::UnaryOp::Neg;
  cminus::BinaryOp Bop = cminus::BinaryOp::Add;
  SourceLoc Loc;

  std::string str() const;
};

/// A predicate over bound pattern variables: qualifier checks, comparisons
/// on constants, and conjunction/disjunction.
struct Pred {
  enum class Kind { True, And, Or, QualCheck, Compare };

  /// A comparison operand: a bound Const-classifier variable or a literal.
  struct Term {
    enum class Kind { Var, Int, Null };
    Kind K = Kind::Int;
    std::string Var;
    int64_t Int = 0;
  };

  Kind K = Kind::True;
  // And/Or.
  std::shared_ptr<Pred> LHS;
  std::shared_ptr<Pred> RHS;
  // QualCheck: Qual(VarName).
  std::string Qual;
  std::string Var;
  // Compare: A Op B.
  cminus::BinaryOp CmpOp = cminus::BinaryOp::Eq;
  Term A;
  Term B;
  SourceLoc Loc;

  static Pred makeTrue() { return Pred{}; }

  std::string str() const;
};

/// One clause of a case/restrict/assign block: optional declarations, a
/// pattern, and an optional `where` predicate.
struct Clause {
  std::vector<VarPatternDecl> Decls;
  ExprPattern Pattern;
  Pred Where; // Kind::True when absent.
  SourceLoc Loc;

  const VarPatternDecl *findDecl(const std::string &Name) const;
};

//===----------------------------------------------------------------------===//
// Invariants
//===----------------------------------------------------------------------===//

/// A term of the invariant language, interpreted in an arbitrary run-time
/// execution state rho (section 2.1.3 / 2.2.3).
struct InvTerm {
  enum class Kind {
    ValueOf,    ///< value(V): the value of expression/l-value V in rho.
    LocationOf, ///< location(V): the address of l-value V in rho.
    Deref,      ///< *P: contents of quantified location P in rho.
    VarRef,     ///< P: a forall-bound location variable.
    Int,        ///< integer literal.
    Null,       ///< NULL.
  };

  Kind K = Kind::Int;
  std::string Var;
  int64_t Int = 0;

  std::string str() const;
};

/// A predicate of the invariant language.
struct InvPred {
  enum class Kind { Compare, IsHeapLoc, And, Or, Implies, Forall };

  Kind K = Kind::Compare;
  // Compare: A Op B (Op in ==, !=, <, <=, >, >=).
  cminus::BinaryOp CmpOp = cminus::BinaryOp::Eq;
  InvTerm A;
  InvTerm B;
  // IsHeapLoc: isHeapLoc(A).
  // And/Or/Implies.
  std::shared_ptr<InvPred> LHS;
  std::shared_ptr<InvPred> RHS;
  // Forall: forall <Ty> <Var>: Body.
  TypePattern ForallTy;
  std::string ForallVar;
  std::shared_ptr<InvPred> Body;
  SourceLoc Loc;

  std::string str() const;
};

//===----------------------------------------------------------------------===//
// Qualifier definitions
//===----------------------------------------------------------------------===//

/// One user-defined qualifier with its type rules and intended invariant.
struct QualifierDef {
  std::string Name;
  /// False for value qualifiers, true for reference qualifiers.
  bool IsRef = false;

  /// Subject declaration, e.g. `(int Expr E)` or `(T* LValue L)`.
  std::string SubjectVar;
  TypePattern SubjectTy;
  Classifier SubjectCls = Classifier::Expr;
  SourceLoc Loc;

  /// `case` clauses: introduction rules (value qualifiers only).
  std::vector<Clause> Cases;
  /// `restrict` clauses: checks imposed on every matching program
  /// expression.
  std::vector<Clause> Restricts;
  /// `assign` clauses: allowed RHS forms for assignments to a qualified
  /// l-value (reference qualifiers only).
  std::vector<Clause> Assigns;
  /// `ondecl`: the qualifier may be assumed at the point of declaration.
  bool OnDecl = false;
  /// `disallow L`: the qualified l-value may not be referred to (used as a
  /// whole r-value).
  bool DisallowRead = false;
  /// `disallow &X`: the qualified l-value may not have its address taken.
  bool DisallowAddrOf = false;
  /// The intended run-time invariant, if declared. Flow qualifiers like
  /// tainted/untainted omit it.
  std::optional<InvPred> Invariant;

  bool isValue() const { return !IsRef; }
};

/// A set of loaded qualifier definitions; lookup by name.
class QualifierSet {
public:
  void add(QualifierDef Def);

  const QualifierDef *find(const std::string &Name) const;
  const std::vector<QualifierDef> &all() const { return Defs; }

  /// All qualifier names (for parser registration).
  std::vector<std::string> names() const;
  /// Names of reference qualifiers (for r-type stripping in Sema).
  std::vector<std::string> refNames() const;

private:
  std::vector<QualifierDef> Defs;
};

} // namespace stq::qual

#endif // STQ_QUAL_QUALAST_H
