//===- QualAST.cpp --------------------------------------------------------===//

#include "qual/QualAST.h"

#include "cminus/Type.h"

using namespace stq;
using namespace stq::qual;
using cminus::Type;
using cminus::TypePtr;

const char *stq::qual::classifierName(Classifier C) {
  switch (C) {
  case Classifier::Expr:
    return "Expr";
  case Classifier::Const:
    return "Const";
  case Classifier::LValue:
    return "LValue";
  case Classifier::Var:
    return "Var";
  }
  return "?";
}

bool TypePattern::matches(const TypePtr &Ty) const {
  TypePtr Bare = Type::withoutQuals(Ty);
  switch (K) {
  case Kind::Any:
    return true;
  case Kind::Int:
    return Bare->isInt();
  case Kind::Char:
    return Bare->isChar();
  case Kind::Pointer:
    return Bare->isPointer() && Pointee->matches(Bare->pointee());
  }
  return false;
}

std::string TypePattern::str() const {
  switch (K) {
  case Kind::Any:
    return "T";
  case Kind::Int:
    return "int";
  case Kind::Char:
    return "char";
  case Kind::Pointer:
    return Pointee->str() + "*";
  }
  return "?";
}

std::string ExprPattern::str() const {
  switch (K) {
  case Kind::Var:
    return X;
  case Kind::Deref:
    return "*" + X;
  case Kind::AddrOf:
    return "&" + X;
  case Kind::New:
    return "new";
  case Kind::Null:
    return "NULL";
  case Kind::Unary:
    return std::string(cminus::unaryOpSpelling(Uop)) + X;
  case Kind::Binary:
    return X + " " + cminus::binaryOpSpelling(Bop) + " " + Y;
  }
  return "?";
}

static std::string termStr(const Pred::Term &T) {
  switch (T.K) {
  case Pred::Term::Kind::Var:
    return T.Var;
  case Pred::Term::Kind::Int:
    return std::to_string(T.Int);
  case Pred::Term::Kind::Null:
    return "NULL";
  }
  return "?";
}

std::string Pred::str() const {
  switch (K) {
  case Kind::True:
    return "true";
  case Kind::And:
    return "(" + LHS->str() + " && " + RHS->str() + ")";
  case Kind::Or:
    return "(" + LHS->str() + " || " + RHS->str() + ")";
  case Kind::QualCheck:
    return Qual + "(" + Var + ")";
  case Kind::Compare:
    return termStr(A) + " " + cminus::binaryOpSpelling(CmpOp) + " " +
           termStr(B);
  }
  return "?";
}

const VarPatternDecl *Clause::findDecl(const std::string &Name) const {
  for (const VarPatternDecl &D : Decls)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

std::string InvTerm::str() const {
  switch (K) {
  case Kind::ValueOf:
    return "value(" + Var + ")";
  case Kind::LocationOf:
    return "location(" + Var + ")";
  case Kind::Deref:
    return "*" + Var;
  case Kind::VarRef:
    return Var;
  case Kind::Int:
    return std::to_string(Int);
  case Kind::Null:
    return "NULL";
  }
  return "?";
}

std::string InvPred::str() const {
  switch (K) {
  case Kind::Compare:
    return A.str() + " " + cminus::binaryOpSpelling(CmpOp) + " " + B.str();
  case Kind::IsHeapLoc:
    return "isHeapLoc(" + A.str() + ")";
  case Kind::And:
    return "(" + LHS->str() + " && " + RHS->str() + ")";
  case Kind::Or:
    return "(" + LHS->str() + " || " + RHS->str() + ")";
  case Kind::Implies:
    return "(" + LHS->str() + " => " + RHS->str() + ")";
  case Kind::Forall:
    return "forall " + ForallTy.str() + " " + ForallVar + ": " + Body->str();
  }
  return "?";
}

void QualifierSet::add(QualifierDef Def) { Defs.push_back(std::move(Def)); }

const QualifierDef *QualifierSet::find(const std::string &Name) const {
  for (const QualifierDef &D : Defs)
    if (D.Name == Name)
      return &D;
  return nullptr;
}

std::vector<std::string> QualifierSet::names() const {
  std::vector<std::string> Out;
  Out.reserve(Defs.size());
  for (const QualifierDef &D : Defs)
    Out.push_back(D.Name);
  return Out;
}

std::vector<std::string> QualifierSet::refNames() const {
  std::vector<std::string> Out;
  for (const QualifierDef &D : Defs)
    if (D.IsRef)
      Out.push_back(D.Name);
  return Out;
}
