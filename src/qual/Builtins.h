//===- Builtins.h - The paper's qualifier library ---------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qualifier definitions from the paper, written in the qualifier DSL:
/// pos, neg, nonzero (figures 1, 3), nonnull (figure 12), tainted/untainted
/// (figure 4, with the section 6.3 constants clause), unique (figure 5), and
/// unaliased (figure 7).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_QUAL_BUILTINS_H
#define STQ_QUAL_BUILTINS_H

#include "qual/QualAST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace stq::qual {

/// Returns the DSL source of the named builtin qualifier. Valid names: pos,
/// neg, nonzero, nonnull, tainted, untainted, unique, unaliased. Returns an
/// empty string for unknown names.
std::string builtinQualifierSource(const std::string &Name);

/// Names of all builtin qualifiers, in a stable order.
std::vector<std::string> builtinQualifierNames();

/// Parses and well-formedness-checks the named builtins into \p Set.
/// Returns true on success.
bool loadBuiltinQualifiers(const std::vector<std::string> &Names,
                           QualifierSet &Set, DiagnosticEngine &Diags);

/// Loads every builtin qualifier.
bool loadAllBuiltinQualifiers(QualifierSet &Set, DiagnosticEngine &Diags);

} // namespace stq::qual

#endif // STQ_QUAL_BUILTINS_H
