//===- Builtins.cpp -------------------------------------------------------===//

#include "qual/Builtins.h"

#include "qual/QualParser.h"

using namespace stq;
using namespace stq::qual;

namespace {

// Figure 1. A value qualifier for positive integers.
const char *PosSource = R"(
value qualifier pos(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  | decl int Expr E1, E2:
      E1 * E2, where pos(E1) && pos(E2)
  | decl int Expr E1:
      -E1, where neg(E1)
  invariant value(E) > 0
)";

// The neg qualifier is referenced by figure 1 but not shown in the paper;
// this is the symmetric definition (mutually recursive with pos).
const char *NegSource = R"(
value qualifier neg(int Expr E)
  case E of
    decl int Const C:
      C, where C < 0
  | decl int Expr E1:
      -E1, where pos(E1)
  | decl int Expr E1, E2:
      E1 * E2, where (pos(E1) && neg(E2)) || (neg(E1) && pos(E2))
  invariant value(E) < 0
)";

// A nonnegative-integer qualifier in the same style as figure 1; not in
// the paper but expressible and automatically provable in its framework
// (used by the quickstart example and the sum/product extension tests).
const char *NonnegSource = R"(
value qualifier nonneg(int Expr E)
  case E of
    decl int Const C:
      C, where C >= 0
  | decl int Expr E1, E2:
      E1 * E2, where nonneg(E1) && nonneg(E2)
  | decl int Expr E1, E2:
      E1 + E2, where nonneg(E1) && nonneg(E2)
  | decl int Expr E1:
      E1, where pos(E1)
  invariant value(E) >= 0
)";

// Figure 3. Nonzero integers, with the division restrict rule. The rule
// also covers `%`: the interpreter traps on a zero divisor for both
// operators, so leaving remainders unrestricted is unsound (found by
// stq-fuzz; see tests/corpus/rem_zero_divisor.cmm).
const char *NonzeroSource = R"(
value qualifier nonzero(int Expr E)
  case E of
    decl int Const C:
      C, where C != 0
  | decl int Expr E1:
      E1, where pos(E1)
  | decl int Expr E1, E2:
      E1 * E2, where nonzero(E1) && nonzero(E2)
  restrict
    decl int Expr E1, E2:
      E1 / E2, where nonzero(E2)
  | decl int Expr E1, E2:
      E1 % E2, where nonzero(E2)
  invariant value(E) != 0
)";

// Figure 12. Nonnull pointers; the restrict rule checks every dereference.
const char *NonnullSource = R"(
value qualifier nonnull(T* Expr E)
  case E of
    decl T LValue L:
      &L
  restrict
    decl T* Expr E1:
      *E1, where nonnull(E1)
  invariant value(E) != NULL
)";

// Figure 4, augmented with the section 6.3 clause making constants trusted.
// Flow qualifier: no invariant; soundness comes from subtyping alone.
const char *UntaintedSource = R"(
value qualifier untainted(T Expr E)
  case E of
    decl T Const C:
      C
)";

// Figure 4. Any expression may be considered tainted.
const char *TaintedSource = R"(
value qualifier tainted(T Expr E)
  case E of
    E
)";

// Figure 5. Unique pointers.
const char *UniqueSource = R"(
ref qualifier unique(T* LValue L)
  assign L
    NULL
  | new
  disallow L
  invariant value(L) == NULL ||
            (isHeapLoc(value(L)) &&
             forall T** P: *P == value(L) => P == location(L))
)";

// Figure 7. Unaliased variables.
const char *UnaliasedSource = R"(
ref qualifier unaliased(T Var X)
  ondecl
  disallow &X
  invariant forall T** P: *P != location(X)
)";

} // namespace

std::string stq::qual::builtinQualifierSource(const std::string &Name) {
  if (Name == "pos")
    return PosSource;
  if (Name == "neg")
    return NegSource;
  if (Name == "nonneg")
    return NonnegSource;
  if (Name == "nonzero")
    return NonzeroSource;
  if (Name == "nonnull")
    return NonnullSource;
  if (Name == "untainted")
    return UntaintedSource;
  if (Name == "tainted")
    return TaintedSource;
  if (Name == "unique")
    return UniqueSource;
  if (Name == "unaliased")
    return UnaliasedSource;
  return "";
}

std::vector<std::string> stq::qual::builtinQualifierNames() {
  return {"pos",     "neg",       "nonneg", "nonzero", "nonnull",
          "tainted", "untainted", "unique", "unaliased"};
}

bool stq::qual::loadBuiltinQualifiers(const std::vector<std::string> &Names,
                                      QualifierSet &Set,
                                      DiagnosticEngine &Diags) {
  for (const std::string &Name : Names) {
    std::string Source = builtinQualifierSource(Name);
    if (Source.empty()) {
      Diags.error(SourceLoc(), "qualparse",
                  "unknown builtin qualifier '" + Name + "'");
      return false;
    }
    if (!parseQualifiers(Source, Set, Diags))
      return false;
  }
  return checkWellFormed(Set, Diags);
}

bool stq::qual::loadAllBuiltinQualifiers(QualifierSet &Set,
                                         DiagnosticEngine &Diags) {
  return loadBuiltinQualifiers(builtinQualifierNames(), Set, Diags);
}
