//===- QualParser.h - Parser for qualifier definitions ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the qualifier-definition language of section 2 and checks
/// definitions for well-formedness (classifier constraints, variable
/// scoping, block applicability).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_QUAL_QUALPARSER_H
#define STQ_QUAL_QUALPARSER_H

#include "qual/QualAST.h"
#include "support/Diagnostics.h"

#include <string>

namespace stq::qual {

/// Parses zero or more qualifier definitions from \p Source into \p Set.
/// Parse errors use phase "qualparse". Returns true on success.
bool parseQualifiers(const std::string &Source, QualifierSet &Set,
                     DiagnosticEngine &Diags);

/// Checks every definition in \p Set for well-formedness: subject
/// classifiers match the qualifier kind, blocks are applicable, pattern and
/// predicate variables are in scope with compatible classifiers, qualifier
/// checks reference loaded qualifiers, and invariants use value/location and
/// quantified variables legally. Errors use phase "qualwf". Returns true if
/// all definitions are well formed.
bool checkWellFormed(const QualifierSet &Set, DiagnosticEngine &Diags);

} // namespace stq::qual

#endif // STQ_QUAL_QUALPARSER_H
