//===- Incremental.cpp ----------------------------------------------------===//

#include "checker/Incremental.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <set>

using namespace stq;
using namespace stq::checker;
using namespace stq::checker::incremental;

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

namespace {

// Kind tags keep the byte stream unambiguous across node categories. Values
// are arbitrary but fixed: changing them invalidates every stored verdict,
// which is safe (a cold re-check), never wrong.
enum : uint8_t {
  TagNull = 0xF0,
  TagPresent = 0xF1,
  TagType = 0xF2,
  TagLValue = 0xF3,
  TagExpr = 0xF4,
  TagStmt = 0xF5,
  TagSig = 0xF6,
  TagEnv = 0xF7,
  TagGlobals = 0xF8,
  TagFunction = 0xF9,
  TagCallees = 0xFA,
};

void hashLoc(Hasher &H, SourceLoc Loc) {
  H.u64(Loc.Line);
  H.u64(Loc.Col);
}

void hashType(Hasher &H, const cminus::TypePtr &Ty) {
  H.byte(TagType);
  if (!Ty) {
    H.byte(TagNull);
    return;
  }
  // str() prints the full structure including qualifier sets at every
  // level, so a qualifier edit anywhere in the type changes the hash.
  H.str(Ty->str());
}

void hashExpr(Hasher &H, const cminus::Expr *E,
              std::vector<std::string> &Callees);

void hashLValue(Hasher &H, const cminus::LValue *LV,
                std::vector<std::string> &Callees) {
  H.byte(TagLValue);
  if (!LV) {
    H.byte(TagNull);
    return;
  }
  H.byte(static_cast<uint8_t>(LV->K));
  hashLoc(H, LV->Loc);
  if (LV->isVar() && LV->Var) {
    H.str(LV->Var->Name);
    hashType(H, LV->Var->DeclaredTy);
  }
  if (LV->isMem())
    hashExpr(H, LV->Addr, Callees);
  H.u64(LV->Fields.size());
  for (const std::string &F : LV->Fields)
    H.str(F);
}

void hashExpr(Hasher &H, const cminus::Expr *E,
              std::vector<std::string> &Callees) {
  H.byte(TagExpr);
  if (!E) {
    H.byte(TagNull);
    return;
  }
  H.byte(static_cast<uint8_t>(E->getKind()));
  // Every SourceLoc is load-bearing: cached diagnostics embed line:col, so
  // a purely positional shift must miss the store.
  hashLoc(H, E->Loc);
  using cminus::Expr;
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
    H.i64(cast<cminus::IntConstExpr>(E)->Value);
    break;
  case Expr::Kind::StrConst:
    H.str(cast<cminus::StrConstExpr>(E)->Value);
    break;
  case Expr::Kind::NullConst:
    break;
  case Expr::Kind::LValRead:
    hashLValue(H, cast<cminus::LValReadExpr>(E)->LV, Callees);
    break;
  case Expr::Kind::AddrOf:
    hashLValue(H, cast<cminus::AddrOfExpr>(E)->LV, Callees);
    break;
  case Expr::Kind::Unary: {
    const auto *U = cast<cminus::UnaryExpr>(E);
    H.byte(static_cast<uint8_t>(U->Op));
    hashExpr(H, U->Sub, Callees);
    break;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<cminus::BinaryExpr>(E);
    H.byte(static_cast<uint8_t>(B->Op));
    hashExpr(H, B->LHS, Callees);
    hashExpr(H, B->RHS, Callees);
    break;
  }
  case Expr::Kind::Cast: {
    const auto *C = cast<cminus::CastExpr>(E);
    hashType(H, C->Target);
    hashExpr(H, C->Sub, Callees);
    break;
  }
  case Expr::Kind::Call: {
    const auto *C = cast<cminus::CallExpr>(E);
    H.str(C->CalleeName);
    H.byte(C->IsAlloc ? 1 : 0);
    H.u64(C->Args.size());
    for (const cminus::Expr *A : C->Args)
      hashExpr(H, A, Callees);
    Callees.push_back(C->CalleeName);
    break;
  }
  case Expr::Kind::SizeofType:
    hashType(H, cast<cminus::SizeofTypeExpr>(E)->Target);
    break;
  }
}

void hashStmt(Hasher &H, const cminus::Stmt *S,
              std::vector<std::string> &Callees) {
  H.byte(TagStmt);
  if (!S) {
    H.byte(TagNull);
    return;
  }
  H.byte(static_cast<uint8_t>(S->getKind()));
  hashLoc(H, S->Loc);
  using cminus::Stmt;
  switch (S->getKind()) {
  case Stmt::Kind::Block: {
    const auto *B = cast<cminus::BlockStmt>(S);
    H.u64(B->Stmts.size());
    for (const cminus::Stmt *Sub : B->Stmts)
      hashStmt(H, Sub, Callees);
    break;
  }
  case Stmt::Kind::Decl: {
    const cminus::VarDecl *V = cast<cminus::DeclStmt>(S)->Var;
    H.str(V->Name);
    hashType(H, V->DeclaredTy);
    hashLoc(H, V->Loc);
    H.byte((V->IsGlobal ? 2 : 0) | (V->IsParam ? 1 : 0));
    hashExpr(H, V->Init, Callees);
    break;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<cminus::AssignStmt>(S);
    hashLValue(H, A->LHS, Callees);
    hashExpr(H, A->RHS, Callees);
    break;
  }
  case Stmt::Kind::CallStmt:
    hashExpr(H, cast<cminus::CallStmt>(S)->Call, Callees);
    break;
  case Stmt::Kind::If: {
    const auto *I = cast<cminus::IfStmt>(S);
    hashExpr(H, I->Cond, Callees);
    hashStmt(H, I->Then, Callees);
    hashStmt(H, I->Else, Callees);
    break;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<cminus::WhileStmt>(S);
    hashExpr(H, W->Cond, Callees);
    hashStmt(H, W->Body, Callees);
    break;
  }
  case Stmt::Kind::For: {
    const auto *F = cast<cminus::ForStmt>(S);
    hashStmt(H, F->Init, Callees);
    hashExpr(H, F->Cond, Callees);
    hashStmt(H, F->Step, Callees);
    hashStmt(H, F->Body, Callees);
    break;
  }
  case Stmt::Kind::Return:
    hashExpr(H, cast<cminus::ReturnStmt>(S)->Value, Callees);
    break;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    break;
  }
}

/// The caller-visible surface of a function: name, return type, parameter
/// declared types (qualifiers included), variadicness. Parameter *names*
/// are deliberately excluded — they are body-local.
Hash128 hashSignature(const cminus::FuncDecl &Fn) {
  Hasher H;
  H.byte(TagSig);
  H.str(Fn.Name);
  hashType(H, Fn.RetTy);
  H.u64(Fn.Params.size());
  for (const cminus::VarDecl *P : Fn.Params)
    hashType(H, P->DeclaredTy);
  H.byte(Fn.Variadic ? 1 : 0);
  return H.get();
}

void hashClause(Hasher &H, const qual::Clause &C) {
  H.u64(C.Decls.size());
  for (const qual::VarPatternDecl &D : C.Decls) {
    H.str(D.Name);
    H.str(D.Ty.str());
    H.str(qual::classifierName(D.Cls));
  }
  H.str(C.Pattern.str());
  H.str(C.Where.str());
}

/// Everything a verdict depends on besides the work item's own body and
/// callees: qualifier definitions, checker options, struct layouts, and
/// global declarations. Folded into every item's hash, so an environment
/// edit naturally dirties the whole unit.
Hash128 hashEnv(const qual::QualifierSet &Quals, const CheckerOptions &Options,
                const cminus::Program &Prog) {
  Hasher H;
  H.byte(TagEnv);

  const auto &Defs = Quals.all();
  H.u64(Defs.size());
  for (const qual::QualifierDef &Q : Defs) {
    H.str(Q.Name);
    H.byte(Q.IsRef ? 1 : 0);
    H.str(Q.SubjectVar);
    H.str(Q.SubjectTy.str());
    H.str(qual::classifierName(Q.SubjectCls));
    for (const auto *Block : {&Q.Cases, &Q.Restricts, &Q.Assigns}) {
      H.u64(Block->size());
      for (const qual::Clause &C : *Block)
        hashClause(H, C);
    }
    H.byte((Q.OnDecl ? 4 : 0) | (Q.DisallowRead ? 2 : 0) |
           (Q.DisallowAddrOf ? 1 : 0));
    if (Q.Invariant)
      H.str(Q.Invariant->str());
    else
      H.byte(TagNull);
  }

  H.byte((Options.Memoize ? 4 : 0) | (Options.ElideProvableCastChecks ? 2 : 0) |
         (Options.FlowSensitiveNarrowing ? 1 : 0));

  H.u64(Prog.Structs.size());
  for (const cminus::StructDef *S : Prog.Structs) {
    H.str(S->Name);
    hashLoc(H, S->Loc);
    H.u64(S->Fields.size());
    for (const cminus::StructDef::Field &F : S->Fields) {
      H.str(F.Name);
      hashType(H, F.Ty);
    }
  }

  // Global names, declared types, and positions — any function may read
  // them. Initializer *bodies* only affect work item 0 and are hashed
  // there, not here.
  H.u64(Prog.Globals.size());
  for (const cminus::VarDecl *G : Prog.Globals) {
    H.str(G->Name);
    hashType(H, G->DeclaredTy);
    hashLoc(H, G->Loc);
  }
  return H.get();
}

/// Folds the signatures of \p Callees (sorted, deduplicated) into \p H.
/// Unknown externals (malloc, printf, ...) have no FuncDecl signature and
/// fold as name + marker.
void hashCallees(Hasher &H, std::vector<std::string> Callees,
                 const std::map<std::string, Hash128> &Sigs) {
  std::sort(Callees.begin(), Callees.end());
  Callees.erase(std::unique(Callees.begin(), Callees.end()), Callees.end());
  H.byte(TagCallees);
  H.u64(Callees.size());
  for (const std::string &Name : Callees) {
    H.str(Name);
    auto It = Sigs.find(Name);
    if (It != Sigs.end())
      H.hash(It->second);
    else
      H.byte(TagNull);
  }
}

CachedVerdict toVerdict(unsigned QualErrors, const CheckerStats &Stats,
                        size_t RuntimeChecks, size_t Failures,
                        const std::vector<Diagnostic> &Diags) {
  CachedVerdict V;
  V.QualErrors = QualErrors;
  V.Stats = Stats;
  V.RuntimeCheckCount = RuntimeChecks;
  V.FailureCount = Failures;
  V.Diags = Diags;
  return V;
}

void mergeVerdict(RecheckResult &Into, const CachedVerdict &V) {
  Into.QualErrors += V.QualErrors;
  CheckerStats &A = Into.Stats;
  const CheckerStats &B = V.Stats;
  A.DerefSites += B.DerefSites;
  A.RestrictChecks += B.RestrictChecks;
  A.RestrictFailures += B.RestrictFailures;
  A.AssignChecks += B.AssignChecks;
  A.AssignFailures += B.AssignFailures;
  A.RefAssignChecks += B.RefAssignChecks;
  A.RefAssignFailures += B.RefAssignFailures;
  A.DisallowFailures += B.DisallowFailures;
  A.CastsToValueQualified += B.CastsToValueQualified;
  A.CastsToRefQualified += B.CastsToRefQualified;
  A.ElidedCastChecks += B.ElidedCastChecks;
  A.HasQualQueries += B.HasQualQueries;
  A.MemoHits += B.MemoHits;
  A.FormatStringChecks += B.FormatStringChecks;
  Into.RuntimeCheckCount += V.RuntimeCheckCount;
  Into.FailureCount += V.FailureCount;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Engine::Engine(size_t Capacity) : Capacity(Capacity) {}

size_t Engine::entries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Order.size();
}

uint64_t Engine::evictions() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return TotalEvictions;
}

void Engine::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Order.clear();
  Index.clear();
  Snapshots.clear();
}

bool Engine::probe(const Hash128 &Key, CachedVerdict &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end())
    return false;
  Order.splice(Order.begin(), Order, It->second);
  Out = Order.front().Verdict;
  return true;
}

unsigned Engine::insert(const Hash128 &Key, CachedVerdict Verdict) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It != Index.end()) {
    // Same content, re-checked (e.g. a force-dirtied transitive caller):
    // refresh the entry in place.
    Order.splice(Order.begin(), Order, It->second);
    Order.front().Verdict = std::move(Verdict);
    return 0;
  }
  Order.push_front(Entry{Key, std::move(Verdict)});
  Index[Key] = Order.begin();
  unsigned Evicted = 0;
  while (Order.size() > Capacity) {
    Index.erase(Order.back().Key);
    Order.pop_back();
    ++Evicted;
  }
  TotalEvictions += Evicted;
  return Evicted;
}

RecheckResult Engine::recheck(const std::string &Unit, cminus::Program &Prog,
                              const qual::QualifierSet &Quals,
                              DiagnosticEngine &Diags, CheckerOptions Options,
                              unsigned Jobs, RecheckStats *StatsOut,
                              ThreadPool *Pool, const Hash128 *EnvSeed) {
  trace::Span Span("recheck");

  std::vector<cminus::FuncDecl *> Fns;
  for (cminus::FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      Fns.push_back(Fn);
  const size_t Units = Fns.size() + 1; // Work item 0: global initializers.

  RecheckStats Local;
  RecheckStats &S = StatsOut ? *StatsOut : Local;
  S = {};
  S.Units = static_cast<unsigned>(Units);
  S.Jobs = Jobs == 0 ? 1 : Jobs;

  // Runs keyed by assumption sets are not content-addressable: bypass the
  // store entirely (every item re-checks, nothing is cached).
  const bool Bypass =
      Options.AssumedCasts != nullptr || Options.AssumedVarQuals != nullptr;

  // Signature hashes for every declared function, prototypes included —
  // callers fold these, and prototype edits must dirty them too.
  std::map<std::string, Hash128> Sigs;
  for (const cminus::FuncDecl *Fn : Prog.Functions)
    Sigs[Fn->Name] = hashSignature(*Fn);

  Hash128 Env = hashEnv(Quals, Options, Prog);
  if (EnvSeed) {
    // The front end's seed (the TU's post-preprocess stream hash) re-keys
    // the whole unit: a header edit dirties every includer.
    Hasher H;
    H.hash(Env);
    H.hash(*EnvSeed);
    Env = H.get();
  }

  // Full content hash + direct-callee list per work item.
  std::vector<Hash128> Keys(Units);
  std::vector<std::vector<std::string>> Callees(Units);
  {
    Hasher H;
    H.hash(Env);
    H.byte(TagGlobals);
    H.u64(Prog.Globals.size());
    for (const cminus::VarDecl *G : Prog.Globals) {
      H.str(G->Name);
      hashExpr(H, G->Init, Callees[0]);
    }
    hashCallees(H, Callees[0], Sigs);
    Keys[0] = H.get();
  }
  for (size_t I = 1; I < Units; ++I) {
    const cminus::FuncDecl *Fn = Fns[I - 1];
    Hasher H;
    H.hash(Env);
    H.byte(TagFunction);
    H.hash(hashSignature(*Fn));
    hashLoc(H, Fn->Loc);
    // Parameter names and positions are body-visible (diagnostics mention
    // them) even though they are excluded from the caller-facing signature.
    for (const cminus::VarDecl *P : Fn->Params) {
      H.str(P->Name);
      hashLoc(H, P->Loc);
    }
    hashStmt(H, Fn->Body, Callees[I]);
    hashCallees(H, Callees[I], Sigs);
    Keys[I] = H.get();
  }

  // Invalidation: diff this unit's signature snapshot, then force-dirty
  // the transitive callers of every changed (or added/removed) signature.
  // Content hashing already misses the *direct* callers — the closure is
  // the contract for everyone further up the call graph.
  std::set<std::string> ChangedSigs;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    UnitSnapshot &Snap = Snapshots[Unit];
    for (const auto &[Name, Hash] : Sigs) {
      auto It = Snap.Signatures.find(Name);
      if (It == Snap.Signatures.end() || It->second != Hash)
        ChangedSigs.insert(Name);
    }
    for (const auto &[Name, Hash] : Snap.Signatures)
      if (!Sigs.count(Name))
        ChangedSigs.insert(Name);
    Snap.Signatures = Sigs;
  }
  std::set<std::string> ForcedDirty;
  if (!ChangedSigs.empty()) {
    std::map<std::string, std::vector<std::string>> CallersOf;
    for (size_t I = 1; I < Units; ++I)
      for (const std::string &Callee : Callees[I])
        CallersOf[Callee].push_back(Fns[I - 1]->Name);
    std::vector<std::string> Work(ChangedSigs.begin(), ChangedSigs.end());
    std::set<std::string> Seen(ChangedSigs);
    while (!Work.empty()) {
      std::string Name = std::move(Work.back());
      Work.pop_back();
      auto It = CallersOf.find(Name);
      if (It == CallersOf.end())
        continue;
      for (const std::string &Caller : It->second) {
        if (!Seen.insert(Caller).second)
          continue;
        ForcedDirty.insert(Caller);
        Work.push_back(Caller);
      }
    }
  }

  // Probe phase: serve what the store can, queue the rest.
  std::vector<CachedVerdict> Verdicts(Units);
  std::vector<size_t> Miss;
  for (size_t I = 0; I < Units; ++I) {
    if (!Bypass && I > 0 && ForcedDirty.count(Fns[I - 1]->Name)) {
      ++S.SignatureDirtied;
      Miss.push_back(I);
      continue;
    }
    if (!Bypass && probe(Keys[I], Verdicts[I])) {
      ++S.Hits;
      continue;
    }
    Miss.push_back(I);
  }
  S.Rechecked = static_cast<unsigned>(Miss.size());

  // Re-check the missed items on the shared pool, each into its own
  // DiagnosticEngine (exactly the Parallel.cpp sharding).
  struct MissRun {
    DiagnosticEngine Diags;
    CheckResult Result;
  };
  std::vector<MissRun> Runs(Miss.size());
  ThreadPool::PoolStats PoolStats;
  parallelFor(
      S.Jobs, Miss.size(),
      [&](size_t J) {
        const size_t I = Miss[J];
        QualChecker Checker(Prog, Quals, Runs[J].Diags, Options);
        Runs[J].Result =
            I == 0 ? Checker.runGlobals() : Checker.runFunction(Fns[I - 1]);
      },
      &PoolStats, Pool);
  S.Executed = PoolStats.Executed;
  S.Steals = PoolStats.Steals;

  for (size_t J = 0; J < Miss.size(); ++J) {
    CheckResult &R = Runs[J].Result;
    Verdicts[Miss[J]] =
        toVerdict(R.QualErrors, R.Stats, R.RuntimeChecks.size(),
                  R.Failures.size(), Runs[J].Diags.diagnostics());
    if (!Bypass)
      S.Evictions += insert(Keys[Miss[J]], Verdicts[Miss[J]]);
  }

  // Merge in work-item order: globals first, then functions as declared —
  // the same order the sequential checker reports in, so output is
  // byte-identical to a cold full check.
  RecheckResult Result;
  for (size_t I = 0; I < Units; ++I) {
    for (const Diagnostic &D : Verdicts[I].Diags)
      Diags.report(D);
    mergeVerdict(Result, Verdicts[I]);
  }
  return Result;
}
