//===- Inference.cpp ------------------------------------------------------===//

#include "checker/Inference.h"

#include "checker/ConstraintGraph.h"
#include "cminus/Lowering.h"

#include <vector>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;
InferenceOutcome stq::checker::inferQualifiers(Program &Prog,
                                               const qual::QualifierSet &Quals,
                                               InferenceOptions Options) {
  InferenceOutcome Out;
  // The shared unit collector (ConstraintGraph.h) merged in unit order
  // reproduces this engine's historical sequential edge and roster order.
  UnitFlows Flows = collectAllFlows(Prog);

  // Variables with at least one flow edge are inference subjects; a
  // variable nothing ever flows into keeps only its declared qualifiers.
  std::set<const VarDecl *> HasFlow;
  for (const FlowEdge &E : Flows.Edges)
    HasFlow.insert(E.Target);
  std::set<const VarDecl *> AddrTaken(Flows.AddrTaken.begin(),
                                      Flows.AddrTaken.end());

  // Optimistic start: every applicable value qualifier on every subject.
  // Address-taken variables are excluded: qualifiers are invariant below
  // pointers, so a fresh annotation would retype every `&v` use.
  std::map<const VarDecl *, std::set<std::string>> Assumed;
  for (const VarDecl *Var : Flows.Vars) {
    if (!HasFlow.count(Var) || AddrTaken.count(Var))
      continue;
    if (Options.LocalsOnly && Var->IsGlobal)
      continue;
    for (const qual::QualifierDef &Q : Quals.all()) {
      if (Q.IsRef || !Q.Invariant)
        continue; // Flow qualifiers are not useful to infer.
      if (Q.SubjectTy.matches(Var->DeclaredTy))
        Assumed[Var].insert(Q.Name);
    }
  }

  // Greatest fixpoint: drop a qualifier whenever some flow into the
  // variable cannot be given it under the current assumptions.
  DiagnosticEngine Scratch;
  for (unsigned Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    ++Out.Iterations;
    CheckerOptions CO;
    CO.AssumedVarQuals = &Assumed;
    QualChecker Checker(Prog, Quals, Scratch, CO);
    bool Changed = false;
    for (const FlowEdge &E : Flows.Edges) {
      auto Found = Assumed.find(E.Target);
      if (Found == Assumed.end() || Found->second.empty())
        continue;
      std::vector<std::string> Drop;
      for (const std::string &Q : Found->second)
        if (!Checker.hasQualifier(E.RHS, Q))
          Drop.push_back(Q);
      for (const std::string &Q : Drop) {
        Found->second.erase(Q);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Report only qualifiers not already declared.
  for (auto &[Var, Set] : Assumed) {
    std::set<std::string> Fresh;
    for (const std::string &Q : Set)
      if (!Var->DeclaredTy->hasQual(Q))
        Fresh.insert(Q);
    if (!Fresh.empty())
      Out.Inferred.emplace(Var, std::move(Fresh));
  }
  return Out;
}

void stq::checker::applyInference(Program &Prog,
                                  const InferenceOutcome &Outcome) {
  for (const auto &[Var, Quals] : Outcome.Inferred) {
    TypePtr Ty = Var->DeclaredTy;
    for (const std::string &Q : Quals)
      Ty = cminus::Type::withQual(Ty, Q);
    const_cast<VarDecl *>(Var)->DeclaredTy = Ty;
  }
  Prog.Ctx.resetComputedTypes();
}
