//===- Inference.cpp ------------------------------------------------------===//

#include "checker/Inference.h"

#include "cminus/Lowering.h"

#include <vector>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;

namespace {

/// One flow into a variable: an explicit assignment, an initializer, or a
/// call argument binding a parameter.
struct FlowEdge {
  const VarDecl *Target = nullptr;
  const Expr *RHS = nullptr;
};

/// Collects every flow edge and every variable in the program.
class FlowCollector {
public:
  explicit FlowCollector(const Program &Prog) {
    for (const VarDecl *G : Prog.Globals) {
      Vars.push_back(G);
      if (G->Init)
        Edges.push_back({G, G->Init});
    }
    for (const FuncDecl *Fn : Prog.Functions) {
      for (const VarDecl *P : Fn->Params)
        Vars.push_back(P);
      if (Fn->isDefinition())
        walkStmt(Fn->Body);
    }
  }

  std::vector<FlowEdge> Edges;
  std::vector<const VarDecl *> Vars;

private:
  void walkExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::Call:
      walkCall(cast<CallExpr>(E));
      return;
    case Expr::Kind::Unary:
      walkExpr(cast<UnaryExpr>(E)->Sub);
      return;
    case Expr::Kind::Binary:
      walkExpr(cast<BinaryExpr>(E)->LHS);
      walkExpr(cast<BinaryExpr>(E)->RHS);
      return;
    case Expr::Kind::Cast:
      walkExpr(cast<CastExpr>(E)->Sub);
      return;
    case Expr::Kind::LValRead:
      if (cast<LValReadExpr>(E)->LV->isMem())
        walkExpr(cast<LValReadExpr>(E)->LV->Addr);
      return;
    case Expr::Kind::AddrOf:
      if (cast<AddrOfExpr>(E)->LV->isMem())
        walkExpr(cast<AddrOfExpr>(E)->LV->Addr);
      return;
    default:
      return;
    }
  }

  void walkCall(const CallExpr *Call) {
    for (const Expr *Arg : Call->Args)
      walkExpr(Arg);
    if (!Call->Callee)
      return;
    for (size_t I = 0;
         I < Call->Args.size() && I < Call->Callee->Params.size(); ++I)
      Edges.push_back({Call->Callee->Params[I], Call->Args[I]});
  }

  void walkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
        walkStmt(Sub);
      return;
    case Stmt::Kind::Decl: {
      const VarDecl *Var = cast<DeclStmt>(S)->Var;
      Vars.push_back(Var);
      if (Var->Init) {
        Edges.push_back({Var, Var->Init});
        walkExpr(Var->Init);
      }
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      if (Assign->LHS->isBareVar())
        Edges.push_back({Assign->LHS->Var, Assign->RHS});
      else if (Assign->LHS->isMem())
        walkExpr(Assign->LHS->Addr);
      walkExpr(Assign->RHS);
      return;
    }
    case Stmt::Kind::CallStmt:
      walkCall(cast<CallStmt>(S)->Call);
      return;
    case Stmt::Kind::If:
      walkExpr(cast<IfStmt>(S)->Cond);
      walkStmt(cast<IfStmt>(S)->Then);
      walkStmt(cast<IfStmt>(S)->Else);
      return;
    case Stmt::Kind::While:
      walkExpr(cast<WhileStmt>(S)->Cond);
      walkStmt(cast<WhileStmt>(S)->Body);
      return;
    case Stmt::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      walkStmt(For->Init);
      if (For->Cond)
        walkExpr(For->Cond);
      walkStmt(For->Step);
      walkStmt(For->Body);
      return;
    }
    case Stmt::Kind::Return:
      walkExpr(cast<ReturnStmt>(S)->Value);
      return;
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return;
    }
  }
};

} // namespace

InferenceOutcome stq::checker::inferQualifiers(Program &Prog,
                                               const qual::QualifierSet &Quals,
                                               InferenceOptions Options) {
  InferenceOutcome Out;
  FlowCollector Flows(Prog);

  // Variables with at least one flow edge are inference subjects; a
  // variable nothing ever flows into keeps only its declared qualifiers.
  std::set<const VarDecl *> HasFlow;
  for (const FlowEdge &E : Flows.Edges)
    HasFlow.insert(E.Target);

  // Optimistic start: every applicable value qualifier on every subject.
  std::map<const VarDecl *, std::set<std::string>> Assumed;
  for (const VarDecl *Var : Flows.Vars) {
    if (!HasFlow.count(Var))
      continue;
    if (Options.LocalsOnly && Var->IsGlobal)
      continue;
    for (const qual::QualifierDef &Q : Quals.all()) {
      if (Q.IsRef || !Q.Invariant)
        continue; // Flow qualifiers are not useful to infer.
      if (Q.SubjectTy.matches(Var->DeclaredTy))
        Assumed[Var].insert(Q.Name);
    }
  }

  // Greatest fixpoint: drop a qualifier whenever some flow into the
  // variable cannot be given it under the current assumptions.
  DiagnosticEngine Scratch;
  for (unsigned Iter = 0; Iter < Options.MaxIterations; ++Iter) {
    ++Out.Iterations;
    CheckerOptions CO;
    CO.AssumedVarQuals = &Assumed;
    QualChecker Checker(Prog, Quals, Scratch, CO);
    bool Changed = false;
    for (const FlowEdge &E : Flows.Edges) {
      auto Found = Assumed.find(E.Target);
      if (Found == Assumed.end() || Found->second.empty())
        continue;
      std::vector<std::string> Drop;
      for (const std::string &Q : Found->second)
        if (!Checker.hasQualifier(E.RHS, Q))
          Drop.push_back(Q);
      for (const std::string &Q : Drop) {
        Found->second.erase(Q);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  // Report only qualifiers not already declared.
  for (auto &[Var, Set] : Assumed) {
    std::set<std::string> Fresh;
    for (const std::string &Q : Set)
      if (!Var->DeclaredTy->hasQual(Q))
        Fresh.insert(Q);
    if (!Fresh.empty())
      Out.Inferred.emplace(Var, std::move(Fresh));
  }
  return Out;
}

void stq::checker::applyInference(Program &Prog,
                                  const InferenceOutcome &Outcome) {
  for (const auto &[Var, Quals] : Outcome.Inferred) {
    TypePtr Ty = Var->DeclaredTy;
    for (const std::string &Q : Quals)
      Ty = cminus::Type::withQual(Ty, Q);
    const_cast<VarDecl *>(Var)->DeclaredTy = Ty;
  }
  Prog.Ctx.resetComputedTypes();
}
