//===- Inference.h - Value-qualifier inference ------------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Qualifier inference, the paper's section 8 future-work item "support
/// for qualifier inference to decrease the annotation burden."
///
/// The engine computes, for every variable, the largest set of value
/// qualifiers consistent with every assignment to it (a greatest-fixpoint
/// iteration: start optimistic, remove a qualifier whenever some
/// assignment's right-hand side cannot be given it under the current
/// assumptions). Inferred qualifiers are exactly those the programmer
/// could have written by hand and had accepted by the extensible
/// typechecker, so inference changes no judgments - it only discovers
/// annotations.
///
/// Like the paper's checker, inference is flow-insensitive and inherits
/// the documented use-before-initialization caveat (section 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_INFERENCE_H
#define STQ_CHECKER_INFERENCE_H

#include "checker/Checker.h"

#include <map>
#include <set>
#include <string>

namespace stq::checker {

struct InferenceOptions {
  /// Only infer for locals and parameters (globals are API surface and
  /// usually deserve explicit annotations).
  bool LocalsOnly = false;
  /// Iteration safety bound.
  unsigned MaxIterations = 64;
};

struct InferenceOutcome {
  /// Newly inferred qualifiers per variable (declared ones excluded).
  std::map<const cminus::VarDecl *, std::set<std::string>> Inferred;
  unsigned Iterations = 0;
  /// Total inferred (variable, qualifier) pairs.
  unsigned totalInferred() const {
    unsigned N = 0;
    for (const auto &[Var, Quals] : Inferred)
      N += static_cast<unsigned>(Quals.size());
    return N;
  }
};

/// Infers value-qualifier annotations for \p Prog (which must be
/// Sema-checked and lowered). Does not mutate the program; callers may
/// apply `Inferred` to declared types themselves.
InferenceOutcome inferQualifiers(cminus::Program &Prog,
                                 const qual::QualifierSet &Quals,
                                 InferenceOptions Options = {});

/// Applies an inference outcome to the program's declared types and
/// resets computed types (callers re-run Sema afterwards).
void applyInference(cminus::Program &Prog, const InferenceOutcome &Outcome);

} // namespace stq::checker

#endif // STQ_CHECKER_INFERENCE_H
