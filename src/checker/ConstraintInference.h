//===- ConstraintInference.h - Whole-program inference ----------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constraint-based whole-program qualifier inference, the scaled-up
/// successor of the sequential greatest-fixpoint engine in Inference.h
/// (retained as the differential reference). CQUAL-style in structure
/// (Foster et al., PLDI 1999; reimplemented for two-point lattices in
/// src/cqual): per-unit constraint generation fans out on the ThreadPool,
/// a qualifier-variable graph is solved by round-based worklist
/// propagation, and the resulting annotation set is *minimized* by
/// prover-discharged implication: when suggested qualifier P provably
/// implies qualifier Q — Q's invariant follows from P's, and Q carries a
/// derivation clause `E1, where P(E1)`-style so the checker re-derives Q
/// at every use site — Q is demoted from the suggestion to its provenance
/// trail. Implication queries run on the incremental prover engine and
/// memoize through the shared ProverCache.
///
/// Suggestions are keyed and ordered by (unit, function, variable name,
/// source location), never by AST pointer, so reports are byte-stable
/// across runs and `--jobs` values.
///
/// Soundness of minimization: the full inferred set is the greatest
/// fixpoint, so every assignment into an annotated variable re-checks; a
/// demoted qualifier removes assignment obligations while each use site
/// still derives it through the implying qualifier's clause. Applying the
/// minimal suggested set therefore re-checks clean.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_CONSTRAINTINFERENCE_H
#define STQ_CHECKER_CONSTRAINTINFERENCE_H

#include "checker/Checker.h"
#include "checker/ConstraintGraph.h"
#include "prover/Prover.h"
#include "prover/ProverCache.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace stq::checker {

enum class InferenceEngine {
  Fixpoint,    ///< The sequential reference engine (Inference.h).
  Constraints, ///< The sharded constraint-graph engine (this file).
};

enum class InferenceScope {
  Program,    ///< Infer for globals, parameters, and locals.
  LocalsOnly, ///< Skip globals (API surface deserves explicit annotations).
};

/// Stable lowercase names, used by the CLI/RPC option surface and the
/// stq-inference-v1 schema.
const char *engineName(InferenceEngine E);
const char *scopeName(InferenceScope S);
bool parseEngineName(const std::string &Name, InferenceEngine &Out);
bool parseScopeName(const std::string &Name, InferenceScope &Out);

struct ConstraintInferenceOptions {
  InferenceScope Scope = InferenceScope::Program;
  /// Worker count for constraint generation and the graph solve.
  unsigned Jobs = 1;
  /// Shared long-lived pool (the stqd daemon's); null spawns per-solve.
  ThreadPool *Pool = nullptr;
  /// Prover-discharged suggestion minimization (on by default; the full
  /// inferred set is always retained in the report's provenance).
  bool ProverRefinement = true;
  prover::ProverOptions Prover;
  /// Shared prover cache for implication queries; may be null.
  prover::ProverCache *Cache = nullptr;
  /// Keep at most this many suggestion entries in the report (0 =
  /// unlimited). A truncated report is for human consumption only;
  /// apply-mode always applies the complete minimal set, because a
  /// partial application is not guaranteed to re-check clean.
  unsigned MaxSuggestions = 0;
  /// Base checker options for constraint evaluation.
  CheckerOptions Checker;
};

/// One qualifier attached to a suggestion, with its provenance.
struct SuggestedQual {
  std::string Qual;
  /// "solver" for minimal-set members, "implied:<P>" for qualifiers
  /// demoted by a prover-discharged implication from suggested P, and
  /// "fixpoint" for the reference engine's report.
  std::string Provenance;
  bool Implied = false;
};

/// All newly inferred qualifiers for one variable, keyed deterministically.
struct InferenceSuggestion {
  /// Generation unit: 0 for globals, 1+i for function i.
  unsigned Unit = 0;
  /// Enclosing function name; empty for globals.
  std::string Function;
  std::string Var;
  /// "global", "parameter", or "local".
  std::string Kind;
  SourceLoc Loc;
  /// Sorted by qualifier name; minimal-set members plus demoted ones.
  std::vector<SuggestedQual> Quals;
  /// The declaration, for applyReport; not part of the ordering key.
  const cminus::VarDecl *Decl = nullptr;
};

struct InferenceStats {
  /// Wall-clock seconds inside the parallel graph solve alone (excludes
  /// generation and suggestion minimization) — the quantity the solve
  /// benchmark holds to its jobs-scaling acceptance criterion.
  double SolveSeconds = 0;
  unsigned Units = 0;       ///< Constraint-generation units.
  unsigned Atoms = 0;       ///< Seeded candidate atoms.
  unsigned Constraints = 0; ///< Flow constraints.
  unsigned SolveRounds = 0; ///< Worklist rounds (fixpoint: iterations).
  uint64_t Evaluations = 0; ///< (constraint, qualifier) evaluations.
  unsigned Dropped = 0;     ///< Atoms refuted by the solve.
  unsigned Variables = 0;   ///< Variables with at least one inferred qual.
  unsigned Suggested = 0;   ///< Minimal-set (variable, qualifier) pairs.
  unsigned Implied = 0;     ///< Pairs demoted by prover refinement.
  unsigned ProverQueries = 0;   ///< Implication goals discharged.
  unsigned ProverCacheHits = 0; ///< Of which answered by the shared cache.
  unsigned Truncated = 0;   ///< Suggestion entries dropped by the budget.
};

/// The first-class inference result: deterministic suggestions plus solver
/// statistics, shared by both engines.
struct InferenceReport {
  InferenceEngine Engine = InferenceEngine::Constraints;
  std::vector<InferenceSuggestion> Suggestions;
  InferenceStats Stats;

  /// Minimal-set (variable, qualifier) pairs in the report.
  unsigned totalSuggested() const;
  /// All inferred pairs (minimal plus demoted) — the full greatest
  /// fixpoint, which the fixpoint-containment oracle compares against.
  unsigned totalInferred() const;
};

/// Runs the sharded constraint engine over \p Prog (Sema-checked and
/// lowered). Does not mutate the program.
InferenceReport inferWithConstraints(cminus::Program &Prog,
                                     const qual::QualifierSet &Quals,
                                     const ConstraintInferenceOptions &Options);

/// Runs the sequential reference engine (Inference.h) and adapts its
/// outcome into the same deterministic report shape (no minimization;
/// every qualifier's provenance is "fixpoint").
InferenceReport fixpointReport(cminus::Program &Prog,
                               const qual::QualifierSet &Quals,
                               const ConstraintInferenceOptions &Options);

/// Applies every suggestion's minimal set to the declared types and resets
/// computed types; callers re-run Sema (or re-parse the printed source).
void applyReport(cminus::Program &Prog, const InferenceReport &Report);

/// Strips every inferable qualifier (value qualifiers with invariants)
/// from all declared variable types — the fuzz oracle's annotation-removal
/// step. Returns the number of (variable, qualifier) pairs removed.
unsigned stripInferableQualifiers(cminus::Program &Prog,
                                  const qual::QualifierSet &Quals);

/// A Top-annotated value reaching a Bottom-annotated position.
struct TaintFinding {
  SourceLoc Loc;
  std::string Description;
};

/// Two-point-lattice taint propagation over the engine's own flow edges
/// (assignments, initializers, call arguments, returns): sources are
/// \p Top-annotated declarations, sinks are \p Bottom-annotated ones.
/// The differential tests hold its clean/not-clean verdict to
/// cqual::runInference on the taint examples.
std::vector<TaintFinding> checkTaintFlows(const cminus::Program &Prog,
                                          const std::string &Top = "tainted",
                                          const std::string &Bottom =
                                              "untainted");

} // namespace stq::checker

#endif // STQ_CHECKER_CONSTRAINTINFERENCE_H
