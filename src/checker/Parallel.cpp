//===- Parallel.cpp -------------------------------------------------------===//

#include "checker/Parallel.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"

using namespace stq;
using namespace stq::checker;

namespace {

/// Accumulates \p From into \p Into: counters add, record lists append.
void mergeResult(CheckResult &Into, CheckResult &From) {
  Into.QualErrors += From.QualErrors;

  CheckerStats &A = Into.Stats;
  const CheckerStats &B = From.Stats;
  A.DerefSites += B.DerefSites;
  A.RestrictChecks += B.RestrictChecks;
  A.RestrictFailures += B.RestrictFailures;
  A.AssignChecks += B.AssignChecks;
  A.AssignFailures += B.AssignFailures;
  A.RefAssignChecks += B.RefAssignChecks;
  A.RefAssignFailures += B.RefAssignFailures;
  A.DisallowFailures += B.DisallowFailures;
  A.CastsToValueQualified += B.CastsToValueQualified;
  A.CastsToRefQualified += B.CastsToRefQualified;
  A.ElidedCastChecks += B.ElidedCastChecks;
  A.HasQualQueries += B.HasQualQueries;
  A.MemoHits += B.MemoHits;
  A.FormatStringChecks += B.FormatStringChecks;

  Into.RuntimeChecks.insert(Into.RuntimeChecks.end(),
                            std::make_move_iterator(From.RuntimeChecks.begin()),
                            std::make_move_iterator(From.RuntimeChecks.end()));
  Into.Failures.insert(Into.Failures.end(),
                       std::make_move_iterator(From.Failures.begin()),
                       std::make_move_iterator(From.Failures.end()));
}

} // namespace

CheckResult stq::checker::checkProgramParallel(cminus::Program &Prog,
                                               const qual::QualifierSet &Quals,
                                               DiagnosticEngine &Diags,
                                               CheckerOptions Options,
                                               unsigned Jobs,
                                               ParallelStats *StatsOut,
                                               ThreadPool *Pool) {
  trace::Span Span("qualcheck");
  std::vector<cminus::FuncDecl *> Fns;
  for (cminus::FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      Fns.push_back(Fn);
  const size_t Units = Fns.size() + 1; // Unit 0 is the global initializers.

  if (StatsOut) {
    *StatsOut = {};
    StatsOut->Units = static_cast<unsigned>(Units);
    StatsOut->Jobs = Jobs == 0 ? 1 : Jobs;
  }

  if (Jobs <= 1) {
    // The sequential baseline: one checker, reporting straight into Diags.
    QualChecker Checker(Prog, Quals, Diags, Options);
    CheckResult Result = Checker.run();
    if (StatsOut)
      StatsOut->Executed = Units;
    return Result;
  }

  struct UnitRun {
    DiagnosticEngine Diags;
    CheckResult Result;
  };
  std::vector<UnitRun> Runs(Units);
  ThreadPool::PoolStats PoolStats;
  parallelFor(Jobs, Units, [&](size_t I) {
    QualChecker Checker(Prog, Quals, Runs[I].Diags, Options);
    Runs[I].Result =
        I == 0 ? Checker.runGlobals() : Checker.runFunction(Fns[I - 1]);
  }, &PoolStats, Pool);

  // Merge in unit order: globals first, then functions as declared. This
  // reproduces the sequential checker's diagnostic order exactly, so any
  // job count produces byte-identical output.
  CheckResult Merged;
  for (UnitRun &Run : Runs) {
    for (const Diagnostic &D : Run.Diags.diagnostics())
      Diags.report(D);
    mergeResult(Merged, Run.Result);
  }
  if (StatsOut) {
    StatsOut->Executed = PoolStats.Executed;
    StatsOut->Steals = PoolStats.Steals;
  }
  return Merged;
}

CheckResult stq::checker::checkSourceParallel(
    const std::string &Source, const qual::QualifierSet &Quals,
    DiagnosticEngine &Diags, std::unique_ptr<cminus::Program> &ProgOut,
    CheckerOptions Options, unsigned Jobs, ParallelStats *StatsOut) {
  ProgOut = cminus::parseProgram(Source, Quals.names(), Diags);
  CheckResult Empty;
  if (Diags.hasErrors())
    return Empty;
  if (!cminus::runSema(*ProgOut, Quals.refNames(), Diags))
    return Empty;
  if (!cminus::lowerProgram(*ProgOut, Diags))
    return Empty;
  if (!cminus::verifyLoweredProgram(*ProgOut, Diags))
    return Empty;
  return checkProgramParallel(*ProgOut, Quals, Diags, Options, Jobs,
                              StatsOut);
}
