//===- Incremental.h - Function-granular incremental re-checking -*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental re-check layer over the sharded checker (Parallel.h).
/// The paper's section 6 pitch is interactive-speed checking; this layer
/// makes warm re-checks after an edit proportional to the edit, not the
/// unit, while staying byte-identical to a cold full check.
///
/// A unit (one translation unit fed to `recheck`) is split into the same
/// work items as the parallel checker: the global initializers (work item
/// 0) plus one item per function definition. Every item gets a 128-bit
/// content hash covering
///
///   * the qualifier environment (every loaded qualifier definition,
///     checker options, struct layouts, global declared types),
///   * the item's own body (every statement, expression, l-value, declared
///     type, constant, and crucially every SourceLoc, because cached
///     diagnostics embed line:col positions), and
///   * the signatures of its direct callees (name, return type, parameter
///     declared types, variadicness — qualifier changes included, since
///     `Type::str()` prints qualifier sets).
///
/// Verdicts (counters + diagnostics, by value — never AST pointers, which
/// dangle across parses) live in an LRU-bounded store keyed by the full
/// content hash. A probe that hits replays the cached diagnostics; a miss
/// runs the real checker for just that item. Items are merged in program
/// order, so output is byte-identical to `checkProgramParallel` at any job
/// count.
///
/// Content hashing alone dirties only the *direct* callers of a changed
/// signature (the callee signature is folded into the caller's hash). The
/// engine additionally snapshots per-unit signature hashes and, when a
/// signature changes, walks the reverse call graph to force-dirty the
/// changed function's *transitive* callers — the invalidation contract the
/// edit-replay harness pins down.
///
/// The engine is shared across requests by stqd (one per process) and is
/// safe for concurrent `recheck` calls: store and snapshot accesses are
/// mutex-guarded; the checking itself runs unlocked on the shared pool.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_INCREMENTAL_H
#define STQ_CHECKER_INCREMENTAL_H

#include "checker/Checker.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace stq {
class ThreadPool;
}

namespace stq::checker::incremental {

/// A 128-bit content hash: two independent 64-bit FNV-style streams with
/// different multipliers, so a collision requires defeating both at once.
/// 64 bits alone is too little for a long-lived store that must never
/// silently serve the wrong verdict.
struct Hash128 {
  uint64_t A = 0xcbf29ce484222325ULL;
  uint64_t B = 0x9e3779b97f4a7c15ULL;

  bool operator==(const Hash128 &O) const { return A == O.A && B == O.B; }
  bool operator!=(const Hash128 &O) const { return !(*this == O); }
  bool operator<(const Hash128 &O) const {
    return A != O.A ? A < O.A : B < O.B;
  }
};

/// Accumulates bytes into a Hash128.
class Hasher {
public:
  void byte(uint8_t X) {
    H.A = (H.A ^ X) * 0x100000001b3ULL;
    H.B = (H.B ^ X) * 0xff51afd7ed558ccdULL;
  }
  void u64(uint64_t X) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(X >> (I * 8)));
  }
  void i64(int64_t X) { u64(static_cast<uint64_t>(X)); }
  /// Length-prefixed, so "ab"+"c" never collides with "a"+"bc".
  void str(const std::string &S) {
    u64(S.size());
    for (char C : S)
      byte(static_cast<uint8_t>(C));
  }
  /// Folds another hash (e.g. a callee signature) into this stream.
  void hash(const Hash128 &O) {
    u64(O.A);
    u64(O.B);
  }

  Hash128 get() const { return H; }

private:
  Hash128 H;
};

/// One cached work-item verdict. Counters and diagnostics by value;
/// RuntimeChecks/Failures are reduced to counts because their elements
/// hold AST pointers that would dangle across parses.
struct CachedVerdict {
  unsigned QualErrors = 0;
  CheckerStats Stats;
  uint64_t RuntimeCheckCount = 0;
  uint64_t FailureCount = 0;
  std::vector<Diagnostic> Diags;
};

/// Result of one incremental re-check: the same shape execCheck consumes,
/// minus the AST-pointer record lists (counts instead).
struct RecheckResult {
  unsigned QualErrors = 0;
  CheckerStats Stats;
  uint64_t RuntimeCheckCount = 0;
  uint64_t FailureCount = 0;

  bool ok() const { return QualErrors == 0; }
};

/// Counters describing one recheck() call; Session publishes these as the
/// incremental.* metrics (docs/OBSERVABILITY.md).
struct RecheckStats {
  /// Work items in the unit (functions + 1 for globals).
  unsigned Units = 0;
  /// Items served from the verdict store.
  unsigned Hits = 0;
  /// Items actually re-checked (misses + forced-dirty).
  unsigned Rechecked = 0;
  /// Items force-dirtied as transitive callers of a changed signature
  /// (these are counted in Rechecked too).
  unsigned SignatureDirtied = 0;
  /// Store evictions caused by this call.
  unsigned Evictions = 0;
  /// Scheduling facts, mirroring ParallelStats.
  unsigned Jobs = 1;
  size_t Executed = 0;
  size_t Steals = 0;
};

/// The long-lived incremental engine: verdict store + per-unit signature
/// snapshots. One per process in stqd; Session creates a private one when
/// no shared engine is wired in.
class Engine {
public:
  /// \p Capacity bounds the verdict store (LRU eviction past it). 0 means
  /// "cache nothing" — every item re-checks, verdicts stay correct.
  explicit Engine(size_t Capacity = DefaultCapacity);

  /// Re-checks \p Prog under \p Quals, reusing stored verdicts where the
  /// content hash matches and the invalidation policy allows. Diagnostics
  /// land in \p Diags in program order — byte-identical to a cold
  /// checkProgramParallel run at any \p Jobs. \p Unit names the snapshot
  /// used for signature-change invalidation (the server passes the
  /// client's unit name; one-shot callers use the default "").
  ///
  /// When Options carry AssumedCasts/AssumedVarQuals (annotation/inference
  /// drivers), the store is bypassed entirely: those runs are not keyed by
  /// program content alone.
  ///
  /// \p EnvSeed, when non-null, is folded into every work item's content
  /// hash. The multi-TU front end passes the TU's post-preprocess token
  /// stream hash here, so editing a header re-keys (and therefore
  /// re-checks) every translation unit that includes it — even when the
  /// edit does not change the lowered AST of a particular function.
  RecheckResult recheck(const std::string &Unit, cminus::Program &Prog,
                        const qual::QualifierSet &Quals,
                        DiagnosticEngine &Diags, CheckerOptions Options,
                        unsigned Jobs, RecheckStats *StatsOut = nullptr,
                        ThreadPool *Pool = nullptr,
                        const Hash128 *EnvSeed = nullptr);

  /// Current verdict-store size / lifetime eviction count, for gauges.
  size_t entries() const;
  uint64_t evictions() const;
  /// Drops every stored verdict and snapshot (tests).
  void clear();

  static constexpr size_t DefaultCapacity = 4096;

private:
  struct Entry {
    Hash128 Key;
    CachedVerdict Verdict;
  };
  /// Signature hashes by function name, per unit, from the previous
  /// recheck of that unit.
  struct UnitSnapshot {
    std::map<std::string, Hash128> Signatures;
  };

  /// Probe under Mu: returns true and copies the verdict out on a hit
  /// (also refreshes LRU order).
  bool probe(const Hash128 &Key, CachedVerdict &Out);
  /// Insert under Mu (overwrites an existing key), evicting past capacity.
  /// Returns the number of evictions performed.
  unsigned insert(const Hash128 &Key, CachedVerdict Verdict);

  const size_t Capacity;

  mutable std::mutex Mu;
  /// LRU order: front = most recent.
  std::list<Entry> Order;
  std::map<Hash128, std::list<Entry>::iterator> Index;
  std::map<std::string, UnitSnapshot> Snapshots;
  uint64_t TotalEvictions = 0;
};

} // namespace stq::checker::incremental

#endif // STQ_CHECKER_INCREMENTAL_H
