//===- ConstraintInference.cpp --------------------------------------------===//

#include "checker/ConstraintInference.h"

#include "checker/Inference.h"
#include "cminus/Lowering.h"
#include "prover/Formula.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <tuple>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;
using namespace stq::qual;

//===----------------------------------------------------------------------===//
// Names
//===----------------------------------------------------------------------===//

const char *stq::checker::engineName(InferenceEngine E) {
  switch (E) {
  case InferenceEngine::Fixpoint:
    return "fixpoint";
  case InferenceEngine::Constraints:
    return "constraints";
  }
  return "constraints";
}

const char *stq::checker::scopeName(InferenceScope S) {
  switch (S) {
  case InferenceScope::Program:
    return "program";
  case InferenceScope::LocalsOnly:
    return "locals";
  }
  return "program";
}

bool stq::checker::parseEngineName(const std::string &Name,
                                   InferenceEngine &Out) {
  if (Name == "fixpoint") {
    Out = InferenceEngine::Fixpoint;
    return true;
  }
  if (Name == "constraints") {
    Out = InferenceEngine::Constraints;
    return true;
  }
  return false;
}

bool stq::checker::parseScopeName(const std::string &Name,
                                  InferenceScope &Out) {
  if (Name == "program") {
    Out = InferenceScope::Program;
    return true;
  }
  if (Name == "locals") {
    Out = InferenceScope::LocalsOnly;
    return true;
  }
  return false;
}

unsigned InferenceReport::totalSuggested() const {
  unsigned N = 0;
  for (const InferenceSuggestion &S : Suggestions)
    for (const SuggestedQual &Q : S.Quals)
      if (!Q.Implied)
        ++N;
  return N;
}

unsigned InferenceReport::totalInferred() const {
  unsigned N = 0;
  for (const InferenceSuggestion &S : Suggestions)
    N += static_cast<unsigned>(S.Quals.size());
  return N;
}

//===----------------------------------------------------------------------===//
// Variable provenance (unit / function / kind), for deterministic keys
//===----------------------------------------------------------------------===//

namespace {

struct VarInfo {
  unsigned Unit = 0;
  std::string Function;
  const char *Kind = "global";
};

std::map<const VarDecl *, VarInfo> buildVarInfo(const Program &Prog) {
  std::map<const VarDecl *, VarInfo> Info;
  for (const VarDecl *G : Prog.Globals)
    Info[G] = {0, "", "global"};
  for (unsigned I = 0; I < Prog.Functions.size(); ++I) {
    const FuncDecl *Fn = Prog.Functions[I];
    UnitFlows Unit;
    collectUnitFlows(Prog, I + 1, Unit);
    for (const VarDecl *V : Unit.Vars)
      Info[V] = {I + 1, Fn->Name, V->IsParam ? "parameter" : "local"};
  }
  return Info;
}

bool suggestionKeyLess(const InferenceSuggestion &A,
                       const InferenceSuggestion &B) {
  return std::tie(A.Unit, A.Function, A.Var, A.Loc.Line, A.Loc.Col) <
         std::tie(B.Unit, B.Function, B.Var, B.Loc.Line, B.Loc.Col);
}

//===----------------------------------------------------------------------===//
// Prover-discharged implication between value qualifiers
//===----------------------------------------------------------------------===//

/// Translates a *simple* value invariant — Compare/And/Or/Implies over
/// value(E), integer literals, and NULL — with value(E) mapped to \p V.
/// Returns nullptr for anything touching state (Deref, LocationOf,
/// IsHeapLoc, Forall, quantified variables): those qualifiers are outside
/// the pos/nonzero refinement class.
prover::FormulaPtr translateSimpleInv(const InvPred &Inv,
                                      prover::TermArena &A,
                                      prover::TermId V) {
  using prover::FormulaPtr;
  auto TermOf = [&](const InvTerm &T) -> std::optional<prover::TermId> {
    switch (T.K) {
    case InvTerm::Kind::ValueOf:
      return V;
    case InvTerm::Kind::Int:
      return A.intConst(T.Int);
    case InvTerm::Kind::Null:
      return A.nullTerm();
    default:
      return std::nullopt;
    }
  };
  switch (Inv.K) {
  case InvPred::Kind::Compare: {
    auto L = TermOf(Inv.A), R = TermOf(Inv.B);
    if (!L || !R)
      return nullptr;
    switch (Inv.CmpOp) {
    case BinaryOp::Eq:
      return prover::fEq(*L, *R);
    case BinaryOp::Ne:
      return prover::fNe(*L, *R);
    case BinaryOp::Lt:
      return prover::fLt(*L, *R);
    case BinaryOp::Le:
      return prover::fLe(*L, *R);
    case BinaryOp::Gt:
      return prover::fGt(*L, *R);
    case BinaryOp::Ge:
      return prover::fGe(*L, *R);
    default:
      return nullptr;
    }
  }
  case InvPred::Kind::And: {
    FormulaPtr L = translateSimpleInv(*Inv.LHS, A, V);
    FormulaPtr R = translateSimpleInv(*Inv.RHS, A, V);
    return L && R ? prover::fAnd({L, R}) : nullptr;
  }
  case InvPred::Kind::Or: {
    FormulaPtr L = translateSimpleInv(*Inv.LHS, A, V);
    FormulaPtr R = translateSimpleInv(*Inv.RHS, A, V);
    return L && R ? prover::fOr({L, R}) : nullptr;
  }
  case InvPred::Kind::Implies: {
    FormulaPtr L = translateSimpleInv(*Inv.LHS, A, V);
    FormulaPtr R = translateSimpleInv(*Inv.RHS, A, V);
    return L && R ? prover::fImplies(L, R) : nullptr;
  }
  case InvPred::Kind::IsHeapLoc:
  case InvPred::Kind::Forall:
    return nullptr;
  }
  return nullptr;
}

/// Does \p Q carry a case clause `X, where P(X)` — i.e. the checker can
/// re-derive Q for any expression already known to satisfy \p P? This is
/// the syntactic half of "P implies Q": without it, demoting Q from an
/// annotation would lose derivability at use sites.
bool hasDerivationClause(const QualifierDef &Q, const std::string &P) {
  for (const Clause &C : Q.Cases)
    if (C.Pattern.K == ExprPattern::Kind::Var &&
        C.Where.K == Pred::Kind::QualCheck && C.Where.Qual == P &&
        C.Where.Var == C.Pattern.X)
      return true;
  return false;
}

/// Discharges implication queries between value-qualifier invariants on
/// the incremental prover, memoizing through the shared ProverCache.
class ImplicationOracle {
public:
  ImplicationOracle(const QualifierSet &Quals,
                    const ConstraintInferenceOptions &Options,
                    InferenceStats &Stats)
      : Quals(Quals), Options(Options), Stats(Stats) {}

  /// True iff \p P strictly entitles dropping the annotation \p Q: Q has a
  /// derivation clause from P and the prover shows P's invariant implies
  /// Q's for an arbitrary value.
  bool implies(const std::string &P, const std::string &Q) {
    auto Key = std::make_pair(P, Q);
    auto Found = Memo.find(Key);
    if (Found != Memo.end())
      return Found->second;
    bool Result = compute(P, Q);
    Memo.emplace(Key, Result);
    return Result;
  }

private:
  bool compute(const std::string &PName, const std::string &QName) {
    const QualifierDef *P = Quals.find(PName);
    const QualifierDef *Q = Quals.find(QName);
    if (!P || !Q || !P->Invariant || !Q->Invariant)
      return false;
    if (!hasDerivationClause(*Q, PName))
      return false;

    prover::Prover Session(Options.Prover);
    prover::TermId V = Session.freshConst("iv");
    prover::FormulaPtr Hyp =
        translateSimpleInv(*P->Invariant, Session.arena(), V);
    prover::FormulaPtr Goal =
        translateSimpleInv(*Q->Invariant, Session.arena(), V);
    if (!Hyp || !Goal)
      return false; // Outside the simple value-invariant class.
    Session.addHypothesis(Hyp);

    ++Stats.ProverQueries;
    std::string CacheKey;
    if (Options.Cache) {
      CacheKey = prover::canonicalTaskKey(Session.arena(), Session.inputs(),
                                          Goal);
      if (auto Hit = Options.Cache->lookup(CacheKey)) {
        ++Stats.ProverCacheHits;
        return Hit->Result == prover::ProofResult::Proved;
      }
    }
    prover::ProofResult R = Session.prove(Goal);
    if (Options.Cache)
      Options.Cache->insert(CacheKey, R, Session.stats());
    return R == prover::ProofResult::Proved;
  }

  const QualifierSet &Quals;
  const ConstraintInferenceOptions &Options;
  InferenceStats &Stats;
  std::map<std::pair<std::string, std::string>, bool> Memo;
};

/// Shared by both engines: re-keys a solved assumption map into the
/// deterministic report shape, runs prover minimization (constraint engine
/// only), and applies the suggestion budget.
void buildSuggestions(const Program &Prog, const QualifierSet &Quals,
                      const ConstraintInferenceOptions &Options,
                      const std::map<const VarDecl *, std::set<std::string>>
                          &InferredByVar,
                      bool Minimize, const char *DefaultProvenance,
                      InferenceReport &Report) {
  std::map<const VarDecl *, VarInfo> Info = buildVarInfo(Prog);

  std::unique_ptr<ImplicationOracle> Oracle;
  if (Minimize && Options.ProverRefinement)
    Oracle = std::make_unique<ImplicationOracle>(Quals, Options, Report.Stats);

  for (const auto &[Var, Set] : InferredByVar) {
    // Only qualifiers not already declared are suggestions.
    std::set<std::string> Fresh;
    for (const std::string &Q : Set)
      if (!Var->DeclaredTy->hasQual(Q))
        Fresh.insert(Q);
    if (Fresh.empty())
      continue;

    InferenceSuggestion S;
    auto FoundInfo = Info.find(Var);
    if (FoundInfo != Info.end()) {
      S.Unit = FoundInfo->second.Unit;
      S.Function = FoundInfo->second.Function;
      S.Kind = FoundInfo->second.Kind;
    } else {
      S.Kind = Var->IsGlobal ? "global" : (Var->IsParam ? "parameter"
                                                        : "local");
    }
    S.Var = Var->Name;
    S.Loc = Var->Loc;
    S.Decl = Var;

    // Demoters are the fresh set plus the qualifiers already declared on
    // the variable: a declared P implying Q makes suggesting Q pure noise,
    // and counting it keeps apply idempotent (re-inferring an annotated
    // program suggests nothing new).
    std::set<std::string> Declared;
    for (const std::string &Q : Var->DeclaredTy->quals())
      Declared.insert(Q);
    std::set<std::string> Demoters = Fresh;
    Demoters.insert(Declared.begin(), Declared.end());

    for (const std::string &Q : Fresh) {
      SuggestedQual SQ;
      SQ.Qual = Q;
      SQ.Provenance = DefaultProvenance;
      if (Oracle) {
        // Q is demoted when some other inferred qualifier P strictly
        // implies it (or implies it mutually and wins the lexicographic
        // tie). The implication is pairwise, but demotions compose: a
        // demoted P still derives Q at check time through the clause
        // chain, so Q need not be re-promoted when P is demoted too.
        for (const std::string &P : Demoters) {
          if (P == Q || !Oracle->implies(P, Q))
            continue;
          // A mutual implication inside the fresh set is an equivalence
          // class: keep the lexicographically smallest member. A declared
          // demoter always wins — it stays on the type regardless.
          if (!Declared.count(P) && Oracle->implies(Q, P) && P >= Q)
            continue;
          SQ.Implied = true;
          SQ.Provenance = "implied:" + P;
          break; // Demoters is sorted: the first P is the smallest.
        }
      }
      S.Quals.push_back(std::move(SQ));
    }
    Report.Suggestions.push_back(std::move(S));
  }

  std::sort(Report.Suggestions.begin(), Report.Suggestions.end(),
            suggestionKeyLess);

  if (Options.MaxSuggestions > 0 &&
      Report.Suggestions.size() > Options.MaxSuggestions) {
    Report.Stats.Truncated = static_cast<unsigned>(Report.Suggestions.size() -
                                                   Options.MaxSuggestions);
    Report.Suggestions.resize(Options.MaxSuggestions);
  }

  Report.Stats.Variables = static_cast<unsigned>(Report.Suggestions.size());
  for (const InferenceSuggestion &S : Report.Suggestions)
    for (const SuggestedQual &Q : S.Quals)
      ++(Q.Implied ? Report.Stats.Implied : Report.Stats.Suggested);
}

} // namespace

//===----------------------------------------------------------------------===//
// The constraint engine
//===----------------------------------------------------------------------===//

InferenceReport stq::checker::inferWithConstraints(
    Program &Prog, const QualifierSet &Quals,
    const ConstraintInferenceOptions &Options) {
  InferenceReport Report;
  Report.Engine = InferenceEngine::Constraints;

  // Constraint generation, fanned out per unit and merged in unit order —
  // the exact edge order the sequential reference collector produces.
  unsigned Units = flowUnitCount(Prog);
  Report.Stats.Units = Units;
  std::vector<UnitFlows> PerUnit(Units);
  parallelFor(
      Options.Jobs, Units,
      [&](size_t U) {
        collectUnitFlows(Prog, static_cast<unsigned>(U), PerUnit[U]);
      },
      nullptr, Options.Pool);

  ConstraintGraph Graph;
  std::set<const VarDecl *> HasFlow;
  std::set<const VarDecl *> AddrTaken;
  for (const UnitFlows &Unit : PerUnit) {
    for (const FlowEdge &E : Unit.Edges)
      HasFlow.insert(E.Target);
    AddrTaken.insert(Unit.AddrTaken.begin(), Unit.AddrTaken.end());
  }

  // Optimistic seeding: every applicable value qualifier on every variable
  // something flows into (identical to the reference engine's seeding).
  // Address-taken variables are excluded: qualifiers are invariant below
  // pointers, so a fresh annotation would retype every `&v` use.
  for (const UnitFlows &Unit : PerUnit) {
    for (const VarDecl *Var : Unit.Vars) {
      if (!HasFlow.count(Var) || AddrTaken.count(Var))
        continue;
      if (Options.Scope == InferenceScope::LocalsOnly && Var->IsGlobal)
        continue;
      for (const QualifierDef &Q : Quals.all()) {
        if (Q.IsRef || !Q.Invariant)
          continue; // Flow qualifiers are not useful to infer.
        if (Q.SubjectTy.matches(Var->DeclaredTy))
          Graph.addCandidate(Var, Q.Name);
      }
    }
  }
  for (const UnitFlows &Unit : PerUnit)
    for (const FlowEdge &E : Unit.Edges)
      Graph.addConstraint(E.Target, E.RHS);

  // Each worker chunk evaluates through its own QualChecker (own memo),
  // all reading the round's frozen assumption snapshot.
  CheckerOptions BaseCO = Options.Checker;
  ConstraintGraph::EvaluatorFactory Factory =
      [&Prog, &Quals, BaseCO](const ConstraintGraph::Assumptions &Assumed)
      -> ConstraintGraph::Evaluator {
    auto Diags = std::make_shared<DiagnosticEngine>();
    CheckerOptions CO = BaseCO;
    CO.AssumedVarQuals = &Assumed;
    auto Checker = std::make_shared<QualChecker>(Prog, Quals, *Diags, CO);
    return [Diags, Checker](const ConstraintGraph::Constraint &C,
                            const std::string &Q) {
      return Checker->hasQualifier(C.RHS, Q);
    };
  };

  auto SolveStart = std::chrono::steady_clock::now();
  ConstraintGraphStats SolveStats =
      Graph.solve(Factory, Options.Jobs, Options.Pool);
  Report.Stats.SolveSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    SolveStart)
          .count();
  Report.Stats.Atoms = SolveStats.Atoms;
  Report.Stats.Constraints = SolveStats.Constraints;
  Report.Stats.SolveRounds = SolveStats.SolveRounds;
  Report.Stats.Evaluations = SolveStats.Evaluations;
  Report.Stats.Dropped = SolveStats.Dropped;

  buildSuggestions(Prog, Quals, Options, Graph.assumptions(),
                   /*Minimize=*/true, "solver", Report);
  return Report;
}

//===----------------------------------------------------------------------===//
// The reference engine, adapted into the report shape
//===----------------------------------------------------------------------===//

InferenceReport stq::checker::fixpointReport(
    Program &Prog, const QualifierSet &Quals,
    const ConstraintInferenceOptions &Options) {
  InferenceReport Report;
  Report.Engine = InferenceEngine::Fixpoint;
  Report.Stats.Units = flowUnitCount(Prog);

  InferenceOptions Ref;
  Ref.LocalsOnly = Options.Scope == InferenceScope::LocalsOnly;
  InferenceOutcome Outcome = inferQualifiers(Prog, Quals, Ref);
  Report.Stats.SolveRounds = Outcome.Iterations;

  buildSuggestions(Prog, Quals, Options, Outcome.Inferred,
                   /*Minimize=*/false, "fixpoint", Report);
  return Report;
}

//===----------------------------------------------------------------------===//
// Apply / strip
//===----------------------------------------------------------------------===//

void stq::checker::applyReport(Program &Prog, const InferenceReport &Report) {
  for (const InferenceSuggestion &S : Report.Suggestions) {
    if (!S.Decl)
      continue;
    TypePtr Ty = S.Decl->DeclaredTy;
    for (const SuggestedQual &Q : S.Quals)
      if (!Q.Implied)
        Ty = Type::withQual(Ty, Q.Qual);
    const_cast<VarDecl *>(S.Decl)->DeclaredTy = Ty;
  }
  Prog.Ctx.resetComputedTypes();
}

unsigned stq::checker::stripInferableQualifiers(Program &Prog,
                                                const QualifierSet &Quals) {
  std::vector<std::string> Inferable;
  for (const QualifierDef &Q : Quals.all())
    if (!Q.IsRef && Q.Invariant)
      Inferable.push_back(Q.Name);
  std::set<std::string> InferableSet(Inferable.begin(), Inferable.end());

  unsigned Stripped = 0;
  UnitFlows All = collectAllFlows(Prog);
  for (const VarDecl *Var : All.Vars) {
    unsigned Present = 0;
    for (const std::string &Q : Var->DeclaredTy->quals())
      if (InferableSet.count(Q))
        ++Present;
    if (!Present)
      continue;
    Stripped += Present;
    const_cast<VarDecl *>(Var)->DeclaredTy =
        Type::withoutQualsIn(Var->DeclaredTy, Inferable);
  }
  Prog.Ctx.resetComputedTypes();
  return Stripped;
}

//===----------------------------------------------------------------------===//
// Two-point taint lattice (differential vs src/cqual)
//===----------------------------------------------------------------------===//

namespace {

bool anyLevelHasQual(TypePtr Ty, const std::string &Q) {
  while (Ty) {
    if (Ty->hasQual(Q))
      return true;
    TypePtr Bare = Type::withoutQuals(Ty);
    if (!Bare->isPointer())
      return false;
    Ty = Bare->pointee();
  }
  return false;
}

struct TaintState {
  const std::string &Top;
  const std::string &Bottom;
  std::set<const VarDecl *> TaintedVars;
  std::set<const FuncDecl *> TaintedReturns;

  bool exprTainted(const Expr *E) const {
    if (!E)
      return false;
    switch (E->getKind()) {
    case Expr::Kind::IntConst:
    case Expr::Kind::StrConst:
    case Expr::Kind::NullConst:
    case Expr::Kind::SizeofType:
      return false; // Constants carry no taint (matching src/cqual).
    case Expr::Kind::LValRead: {
      const LValue *LV = cast<LValReadExpr>(E)->LV;
      return LV->isVar() ? TaintedVars.count(LV->Var) != 0
                         : exprTainted(LV->Addr);
    }
    case Expr::Kind::AddrOf: {
      const LValue *LV = cast<AddrOfExpr>(E)->LV;
      return LV->isVar() ? TaintedVars.count(LV->Var) != 0
                         : exprTainted(LV->Addr);
    }
    case Expr::Kind::Unary:
      return exprTainted(cast<UnaryExpr>(E)->Sub);
    case Expr::Kind::Binary:
      return exprTainted(cast<BinaryExpr>(E)->LHS) ||
             exprTainted(cast<BinaryExpr>(E)->RHS);
    case Expr::Kind::Cast: {
      const auto *C = cast<CastExpr>(E);
      // An annotated cast is an assertion/assumption boundary, as in
      // src/cqual: the annotation is trusted downstream.
      if (anyLevelHasQual(C->Target, Top))
        return true;
      if (anyLevelHasQual(C->Target, Bottom))
        return false;
      return exprTainted(C->Sub);
    }
    case Expr::Kind::Call: {
      const auto *Call = cast<CallExpr>(E);
      if (Call->Callee)
        return TaintedReturns.count(Call->Callee) != 0;
      return E->Ty && anyLevelHasQual(E->Ty, Top);
    }
    }
    return false;
  }
};

} // namespace

std::vector<TaintFinding> stq::checker::checkTaintFlows(
    const Program &Prog, const std::string &Top, const std::string &Bottom) {
  UnitFlows Flows = collectAllFlows(Prog);
  TaintState State{Top, Bottom, {}, {}};

  // Sources: Top-annotated declarations and return types.
  for (const VarDecl *Var : Flows.Vars)
    if (anyLevelHasQual(Var->DeclaredTy, Top))
      State.TaintedVars.insert(Var);
  for (const FuncDecl *Fn : Prog.Functions)
    if (anyLevelHasQual(Fn->RetTy, Top))
      State.TaintedReturns.insert(Fn);

  // Propagate to a fixpoint over assignment/call/return flows.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const FlowEdge &E : Flows.Edges)
      if (!State.TaintedVars.count(E.Target) && State.exprTainted(E.RHS)) {
        State.TaintedVars.insert(E.Target);
        Changed = true;
      }
    for (const ReturnFlow &R : Flows.Returns)
      if (!State.TaintedReturns.count(R.Fn) && State.exprTainted(R.Value)) {
        State.TaintedReturns.insert(R.Fn);
        Changed = true;
      }
  }

  // Violations: taint reaching a Bottom-annotated position.
  std::vector<TaintFinding> Findings;
  for (const FlowEdge &E : Flows.Edges)
    if (anyLevelHasQual(E.Target->DeclaredTy, Bottom) &&
        State.exprTainted(E.RHS))
      Findings.push_back({E.RHS->Loc, Top + " data flows into " + Bottom +
                                          "-annotated '" + E.Target->Name +
                                          "'"});
  for (const ReturnFlow &R : Flows.Returns)
    if (anyLevelHasQual(R.Fn->RetTy, Bottom) && State.exprTainted(R.Value))
      Findings.push_back({R.Value->Loc, Top + " data flows into " + Bottom +
                                            "-annotated return of '" +
                                            R.Fn->Name + "'"});
  return Findings;
}
