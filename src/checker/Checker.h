//===- Checker.h - The extensible qualifier typechecker ---------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extensible typechecker of section 3. Given a lowered C-minus program
/// and a set of qualifier definitions, it:
///
///  * validates every explicit and implicit assignment (declarations,
///    assignments, call arguments, returns) against the value-qualifier
///    subtype relation, using user-defined `case` clauses to derive
///    qualified types for expressions;
///  * enforces `restrict` clauses on every matching program fragment;
///  * enforces `assign` and `disallow` rules for reference qualifiers,
///    stripping reference qualifiers from r-types;
///  * records the run-time checks needed for casts to value-qualified types
///    (section 2.1.3); casts involving reference qualifiers stay unchecked.
///
/// Qualifier errors are reported as warnings (phase "qualcheck"), matching
/// the paper's CIL implementation where compilation continues.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_CHECKER_H
#define STQ_CHECKER_CHECKER_H

#include "cminus/AST.h"
#include "qual/QualAST.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace stq::checker {

struct CheckerOptions {
  /// Memoize hasQualifier queries (ablation knob; see DESIGN.md).
  bool Memoize = true;
  /// Skip run-time checks for casts whose qualifiers are statically
  /// derivable from the operand.
  bool ElideProvableCastChecks = true;
  /// Expressions (by Expr::Id) assumed to carry the given qualifiers, as
  /// if a cast had been inserted. Used by the annotation driver to model
  /// the paper's manually inserted casts without AST surgery.
  const std::map<unsigned, std::vector<std::string>> *AssumedCasts = nullptr;
  /// Tentative qualifier sets per variable, consulted for bare-variable
  /// reads. Used by the inference engine's greatest-fixpoint iteration
  /// (section 8 future work).
  const std::map<const cminus::VarDecl *, std::set<std::string>>
      *AssumedVarQuals = nullptr;
  /// The paper's section 8 future work, implemented as an opt-in
  /// extension: a branch condition that dynamically verifies a value
  /// qualifier's invariant (e.g. `p != NULL` for nonnull, `x > 0` for
  /// pos) narrows the qualifier onto the tested variable inside the
  /// guarded branch. Narrowing is suppressed for variables assigned
  /// anywhere in the branch (conservative kill).
  bool FlowSensitiveNarrowing = false;
};

/// One structured qualifier failure, for tools (the annotation driver)
/// that need more than a diagnostic string.
struct QualFailure {
  enum class Kind { Restrict, Assign, RefAssign, Disallow };

  Kind K = Kind::Assign;
  std::string Qual;
  SourceLoc Loc;
  /// The expression that could not be given the qualifier (the restrict
  /// clause's bound operand, or the assignment's RHS). May be null.
  const cminus::Expr *Offending = nullptr;
  /// The assignment target variable, when the target is a bare variable or
  /// a declaration. Null otherwise.
  const cminus::VarDecl *TargetVar = nullptr;
};

/// A run-time check required for one cast to a value-qualified type.
struct RuntimeCastCheck {
  const cminus::CastExpr *Cast = nullptr;
  /// Value qualifiers whose invariants must be tested dynamically.
  std::vector<std::string> Quals;
};

/// Counters describing one checking run; these feed the paper's experiment
/// tables directly.
struct CheckerStats {
  /// Dereference sites visited (every Mem l-value); Table 1's
  /// "dereferences" row when nonnull's restrict clause is loaded.
  unsigned DerefSites = 0;
  /// restrict-clause checks performed and failed.
  unsigned RestrictChecks = 0;
  unsigned RestrictFailures = 0;
  /// Explicit+implicit assignment checks against qualified targets.
  unsigned AssignChecks = 0;
  unsigned AssignFailures = 0;
  /// assign-block validations for reference-qualified targets.
  unsigned RefAssignChecks = 0;
  unsigned RefAssignFailures = 0;
  /// disallow-rule violations.
  unsigned DisallowFailures = 0;
  /// Casts whose target carries value qualifiers / reference qualifiers.
  unsigned CastsToValueQualified = 0;
  unsigned CastsToRefQualified = 0;
  /// Run-time checks that were elided because the qualifier was statically
  /// derivable from the cast operand.
  unsigned ElidedCastChecks = 0;
  /// hasQualifier queries answered (including memo hits).
  unsigned HasQualQueries = 0;
  unsigned MemoHits = 0;
  /// printf-style calls whose format parameter is untainted-qualified.
  unsigned FormatStringChecks = 0;
};

/// Result of running the extensible typechecker.
struct CheckResult {
  /// Number of qualifier errors (reported as warnings in Diags).
  unsigned QualErrors = 0;
  CheckerStats Stats;
  std::vector<RuntimeCastCheck> RuntimeChecks;
  std::vector<QualFailure> Failures;

  bool ok() const { return QualErrors == 0; }
};

/// The extensible typechecker. One instance per (program, qualifier set)
/// pair; `run` may be called once.
class QualChecker {
public:
  QualChecker(cminus::Program &Prog, const qual::QualifierSet &Quals,
              DiagnosticEngine &Diags, CheckerOptions Options = {});

  /// Performs qualifier checking over the whole program.
  CheckResult run();

  /// Shard entry points for the parallel pipeline (Parallel.h). A unit is
  /// either the global initializers or one function definition; run() is
  /// runGlobals() followed by runFunction() on every definition. The
  /// checker never mutates the program, so distinct instances may check
  /// distinct units of one program concurrently.
  CheckResult runGlobals();
  CheckResult runFunction(cminus::FuncDecl *Fn);

  /// Can \p E be given qualifier \p Q? Uses the declared/static type and the
  /// qualifier's case clauses (recursively). Public so tests, the
  /// annotation driver, and the CQUAL baseline can query it.
  bool hasQualifier(const cminus::Expr *E, const qual::QualifierDef *Q);
  bool hasQualifier(const cminus::Expr *E, const std::string &QualName);

private:
  /// One bound pattern variable: an expression or an l-value fragment.
  struct Binding {
    const cminus::Expr *E = nullptr;
    const cminus::LValue *LV = nullptr;
  };
  using Bindings = std::map<std::string, Binding>;

  void warn(SourceLoc Loc, const std::string &Message);

  // Traversal.
  void checkFunction(cminus::FuncDecl *Fn);
  void checkStmt(cminus::Stmt *S);
  /// Scans a pure expression: restrict clauses, disallow rules, cast
  /// recording. \p InMemAddr is true when the expression (transitively via
  /// +/-) forms the address of a dereference, where reading a
  /// disallow-read l-value is permitted.
  void scanExpr(const cminus::Expr *E, bool InMemAddr);
  /// \p GrantDerefExemption controls whether reading a disallow-read
  /// l-value inside this l-value's address computation is permitted. True
  /// for reads and writes (dereferencing consumes the pointer); false
  /// under address-of, where the pointer's value escapes (e.g. `&*p`).
  void scanLValue(const cminus::LValue *LV, bool IsWrite,
                  bool GrantDerefExemption = true);
  void scanCall(const cminus::CallExpr *Call);

  /// Validates RHS (which may be a direct call) flowing into an l-value or
  /// declaration of type \p DstTy. Handles value-qualifier subtyping and
  /// reference-qualifier assign rules. \p TargetVar is the destination
  /// variable when the target is a bare variable (for failure records).
  void checkAssignmentTo(const cminus::TypePtr &DstTy, const cminus::Expr *RHS,
                         SourceLoc Loc, const std::string &What,
                         const cminus::VarDecl *TargetVar = nullptr);
  /// Value-qualifier half of an assignment check.
  void checkValueQualFlow(const cminus::TypePtr &DstTy,
                          const cminus::Expr *RHS, SourceLoc Loc,
                          const std::string &What,
                          const cminus::VarDecl *TargetVar);
  /// Reference-qualifier half: RHS must satisfy some assign clause of \p Q,
  /// or be an unchecked cast to a Q-qualified type.
  void checkRefAssign(const qual::QualifierDef *Q, const cminus::Expr *RHS,
                      SourceLoc Loc, const std::string &What,
                      const cminus::VarDecl *TargetVar);

  // Pattern matching.
  /// Matches a case-clause pattern against expression \p E.
  bool matchExprPattern(const qual::Clause &C, const qual::QualifierDef *Q,
                        const cminus::Expr *E, Bindings &Out);
  /// Matches an assign-clause pattern against RHS \p E (NULL/new allowed).
  bool matchAssignPattern(const qual::Clause &C, const cminus::Expr *E,
                          Bindings &Out);
  /// Binds variable \p Name to \p E, checking classifier and type pattern.
  bool bindVar(const qual::Clause &C, const qual::QualifierDef *Q,
               const std::string &Name, const cminus::Expr *E, Bindings &Out);
  bool bindLValue(const qual::Clause &C, const std::string &Name,
                  const cminus::LValue *LV, Bindings &Out);
  /// Evaluates a where-predicate under \p B.
  bool evalPred(const qual::Pred &P, const Bindings &B);

  // Restrict / disallow.
  void applyRestrictsToDeref(const cminus::LValue *LV);
  void applyRestrictsToExpr(const cminus::Expr *E);
  void runRestrictClause(const qual::QualifierDef *Q, const qual::Clause &C,
                         Bindings &B, SourceLoc Loc,
                         const std::string &SiteDesc);
  /// Reference qualifiers with DisallowRead/DisallowAddrOf present on
  /// \p Ty; returns their definitions.
  std::vector<const qual::QualifierDef *>
  refQualsOn(const cminus::TypePtr &Ty) const;

  void recordCast(const cminus::CastExpr *Cast);

  // Flow-sensitive narrowing (CheckerOptions::FlowSensitiveNarrowing).
  /// Qualifier narrowings implied by \p Cond when it evaluates true
  /// (\p Sense true) or false (\p Sense false): pairs of (variable,
  /// qualifier name).
  void narrowingsFrom(const cminus::Expr *Cond, bool Sense,
                      std::vector<std::pair<const cminus::VarDecl *,
                                            std::string>> &Out);
  /// Does the integer comparison `v Op C` (true branch) imply qualifier
  /// \p Q's invariant?
  bool comparisonImpliesInvariant(const qual::QualifierDef *Q,
                                  cminus::BinaryOp Op, bool IsNull,
                                  int64_t C);
  /// Runs \p Body with the given narrowings active (suppressing those
  /// whose variable is assigned within \p Body).
  void checkNarrowed(cminus::Stmt *Body,
                     const std::vector<std::pair<const cminus::VarDecl *,
                                                 std::string>> &Narrowings);
  static void collectAssignedVars(const cminus::Stmt *S,
                                  std::set<const cminus::VarDecl *> &Out);

  cminus::Program &Prog;
  const qual::QualifierSet &Quals;
  DiagnosticEngine &Diags;
  CheckerOptions Options;
  CheckResult Result;
  cminus::FuncDecl *CurrentFn = nullptr;

  // hasQualifier machinery.
  using QueryKey = std::pair<unsigned, const qual::QualifierDef *>;
  std::map<QueryKey, bool> Memo;
  std::set<QueryKey> InProgress;
  /// True while the current derivation has consulted an in-progress query;
  /// such results are not memoized (they are valid only in context).
  bool TouchedInProgress = false;
  /// Casts already recorded (a cast expression is scanned once).
  std::set<const cminus::CastExpr *> RecordedCasts;
  /// Active flow-sensitive narrowings: variable -> qualifier names.
  std::map<const cminus::VarDecl *, std::set<std::string>> Narrowed;
};

/// Convenience entry point: runs the full front end (parse, sema, lower,
/// verify) with \p Quals registered, then the qualifier checker. Returns the
/// parsed program through \p ProgOut (may be null on parse failure).
CheckResult checkSource(const std::string &Source,
                        const qual::QualifierSet &Quals,
                        DiagnosticEngine &Diags,
                        std::unique_ptr<cminus::Program> &ProgOut,
                        CheckerOptions Options = {});

} // namespace stq::checker

#endif // STQ_CHECKER_CHECKER_H
