//===- ConstraintGraph.cpp ------------------------------------------------===//

#include "checker/ConstraintGraph.h"

#include "cminus/Lowering.h"

#include <algorithm>
#include <cassert>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;

//===----------------------------------------------------------------------===//
// Unit-sharded flow collection
//===----------------------------------------------------------------------===//

namespace {

/// Collects flow edges, the variable roster, and return flows for one unit.
class UnitCollector {
public:
  UnitCollector(UnitFlows &Out, const FuncDecl *Fn) : Out(Out), Fn(Fn) {}

  void walkExpr(const Expr *E) {
    if (!E)
      return;
    switch (E->getKind()) {
    case Expr::Kind::Call:
      walkCall(cast<CallExpr>(E));
      return;
    case Expr::Kind::Unary:
      walkExpr(cast<UnaryExpr>(E)->Sub);
      return;
    case Expr::Kind::Binary:
      walkExpr(cast<BinaryExpr>(E)->LHS);
      walkExpr(cast<BinaryExpr>(E)->RHS);
      return;
    case Expr::Kind::Cast:
      walkExpr(cast<CastExpr>(E)->Sub);
      return;
    case Expr::Kind::LValRead:
      if (cast<LValReadExpr>(E)->LV->isMem())
        walkExpr(cast<LValReadExpr>(E)->LV->Addr);
      return;
    case Expr::Kind::AddrOf: {
      const LValue *LV = cast<AddrOfExpr>(E)->LV;
      if (LV->isVar())
        Out.AddrTaken.push_back(LV->Var);
      else
        walkExpr(LV->Addr);
      return;
    }
    default:
      return;
    }
  }

  void walkCall(const CallExpr *Call) {
    for (const Expr *Arg : Call->Args)
      walkExpr(Arg);
    if (!Call->Callee)
      return;
    for (size_t I = 0;
         I < Call->Args.size() && I < Call->Callee->Params.size(); ++I)
      Out.Edges.push_back({Call->Callee->Params[I], Call->Args[I]});
  }

  void walkStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
        walkStmt(Sub);
      return;
    case Stmt::Kind::Decl: {
      const VarDecl *Var = cast<DeclStmt>(S)->Var;
      Out.Vars.push_back(Var);
      if (Var->Init) {
        Out.Edges.push_back({Var, Var->Init});
        walkExpr(Var->Init);
      }
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      if (Assign->LHS->isBareVar())
        Out.Edges.push_back({Assign->LHS->Var, Assign->RHS});
      else if (Assign->LHS->isMem())
        walkExpr(Assign->LHS->Addr);
      walkExpr(Assign->RHS);
      return;
    }
    case Stmt::Kind::CallStmt:
      walkCall(cast<CallStmt>(S)->Call);
      return;
    case Stmt::Kind::If:
      walkExpr(cast<IfStmt>(S)->Cond);
      walkStmt(cast<IfStmt>(S)->Then);
      walkStmt(cast<IfStmt>(S)->Else);
      return;
    case Stmt::Kind::While:
      walkExpr(cast<WhileStmt>(S)->Cond);
      walkStmt(cast<WhileStmt>(S)->Body);
      return;
    case Stmt::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      walkStmt(For->Init);
      if (For->Cond)
        walkExpr(For->Cond);
      walkStmt(For->Step);
      walkStmt(For->Body);
      return;
    }
    case Stmt::Kind::Return: {
      const auto *Ret = cast<ReturnStmt>(S);
      walkExpr(Ret->Value);
      if (Ret->Value && Fn)
        Out.Returns.push_back({Fn, Ret->Value});
      return;
    }
    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
      return;
    }
  }

private:
  UnitFlows &Out;
  const FuncDecl *Fn;
};

/// Appends every variable whose address is taken inside \p E (used for
/// global initializers, whose nested expressions are otherwise not
/// walked).
void scanAddrTaken(const Expr *E, std::vector<const VarDecl *> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::AddrOf: {
    const LValue *LV = cast<AddrOfExpr>(E)->LV;
    if (LV->isVar())
      Out.push_back(LV->Var);
    else
      scanAddrTaken(LV->Addr, Out);
    return;
  }
  case Expr::Kind::LValRead:
    if (cast<LValReadExpr>(E)->LV->isMem())
      scanAddrTaken(cast<LValReadExpr>(E)->LV->Addr, Out);
    return;
  case Expr::Kind::Unary:
    scanAddrTaken(cast<UnaryExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Binary:
    scanAddrTaken(cast<BinaryExpr>(E)->LHS, Out);
    scanAddrTaken(cast<BinaryExpr>(E)->RHS, Out);
    return;
  case Expr::Kind::Cast:
    scanAddrTaken(cast<CastExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Call:
    for (const Expr *Arg : cast<CallExpr>(E)->Args)
      scanAddrTaken(Arg, Out);
    return;
  default:
    return;
  }
}

} // namespace

unsigned stq::checker::flowUnitCount(const Program &Prog) {
  return 1 + static_cast<unsigned>(Prog.Functions.size());
}

void stq::checker::collectUnitFlows(const Program &Prog, unsigned Unit,
                                    UnitFlows &Out) {
  if (Unit == 0) {
    // Global initializers contribute their direct edge only (no nested
    // call-argument edges), matching the sequential reference collector.
    for (const VarDecl *G : Prog.Globals) {
      Out.Vars.push_back(G);
      if (G->Init) {
        Out.Edges.push_back({G, G->Init});
        scanAddrTaken(G->Init, Out.AddrTaken);
      }
    }
    return;
  }
  assert(Unit - 1 < Prog.Functions.size() && "unit out of range");
  const FuncDecl *Fn = Prog.Functions[Unit - 1];
  for (const VarDecl *P : Fn->Params)
    Out.Vars.push_back(P);
  if (Fn->isDefinition()) {
    UnitCollector C(Out, Fn);
    C.walkStmt(Fn->Body);
  }
}

UnitFlows stq::checker::collectAllFlows(const Program &Prog) {
  UnitFlows All;
  for (unsigned U = 0, N = flowUnitCount(Prog); U < N; ++U) {
    UnitFlows Unit;
    collectUnitFlows(Prog, U, Unit);
    All.Edges.insert(All.Edges.end(), Unit.Edges.begin(), Unit.Edges.end());
    All.Vars.insert(All.Vars.end(), Unit.Vars.begin(), Unit.Vars.end());
    All.Returns.insert(All.Returns.end(), Unit.Returns.begin(),
                       Unit.Returns.end());
    All.AddrTaken.insert(All.AddrTaken.end(), Unit.AddrTaken.begin(),
                         Unit.AddrTaken.end());
  }
  return All;
}

void stq::checker::collectReadVars(const Expr *E,
                                   std::vector<const VarDecl *> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::LValRead: {
    const LValue *LV = cast<LValReadExpr>(E)->LV;
    if (LV->isVar())
      Out.push_back(LV->Var);
    else
      collectReadVars(LV->Addr, Out);
    return;
  }
  case Expr::Kind::AddrOf: {
    const LValue *LV = cast<AddrOfExpr>(E)->LV;
    if (LV->isVar())
      Out.push_back(LV->Var);
    else
      collectReadVars(LV->Addr, Out);
    return;
  }
  case Expr::Kind::Unary:
    collectReadVars(cast<UnaryExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Binary:
    collectReadVars(cast<BinaryExpr>(E)->LHS, Out);
    collectReadVars(cast<BinaryExpr>(E)->RHS, Out);
    return;
  case Expr::Kind::Cast:
    collectReadVars(cast<CastExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Call:
    for (const Expr *Arg : cast<CallExpr>(E)->Args)
      collectReadVars(Arg, Out);
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Round-based parallel worklist solve
//===----------------------------------------------------------------------===//

void ConstraintGraph::addConstraint(const VarDecl *Target, const Expr *RHS) {
  unsigned Id = static_cast<unsigned>(Constraints.size());
  Constraints.push_back({Target, RHS});
  std::vector<const VarDecl *> Reads;
  collectReadVars(RHS, Reads);
  std::sort(Reads.begin(), Reads.end());
  Reads.erase(std::unique(Reads.begin(), Reads.end()), Reads.end());
  for (const VarDecl *V : Reads)
    Dependents[V].push_back(Id);
}

ConstraintGraphStats ConstraintGraph::solve(const EvaluatorFactory &MakeEval,
                                            unsigned Jobs, ThreadPool *Pool) {
  ConstraintGraphStats Stats;
  for (const auto &[Var, Quals] : Assumed)
    Stats.Atoms += static_cast<unsigned>(Quals.size());
  Stats.Constraints = static_cast<unsigned>(Constraints.size());
  if (Jobs == 0)
    Jobs = 1;

  // Every constraint starts queued.
  std::vector<unsigned> Worklist(Constraints.size());
  for (unsigned I = 0; I < Worklist.size(); ++I)
    Worklist[I] = I;
  std::vector<char> Queued(Constraints.size(), 1);

  while (!Worklist.empty()) {
    ++Stats.SolveRounds;

    // Partition the round's worklist into contiguous chunks; each chunk
    // gets its own evaluator (own QualChecker memo) and a preassigned
    // result slot, so the merged drop list is chunk-order deterministic
    // (and the drop *set* is Jobs-independent: assumptions are frozen).
    size_t Chunks =
        Jobs <= 1 ? 1
                  : std::min(Worklist.size(), static_cast<size_t>(Jobs) * 4);
    size_t PerChunk = (Worklist.size() + Chunks - 1) / Chunks;
    std::vector<std::vector<std::pair<const VarDecl *, std::string>>> Drops(
        Chunks);
    std::vector<uint64_t> Evals(Chunks, 0);

    parallelFor(
        Jobs, Chunks,
        [&](size_t C) {
          Evaluator Eval = MakeEval(Assumed);
          size_t Begin = C * PerChunk;
          size_t End = std::min(Begin + PerChunk, Worklist.size());
          for (size_t I = Begin; I < End; ++I) {
            const Constraint &Cn = Constraints[Worklist[I]];
            auto Found = Assumed.find(Cn.Target);
            if (Found == Assumed.end() || Found->second.empty())
              continue;
            for (const std::string &Q : Found->second) {
              ++Evals[C];
              if (!Eval(Cn, Q))
                Drops[C].push_back({Cn.Target, Q});
            }
          }
        },
        nullptr, Pool);

    for (uint64_t N : Evals)
      Stats.Evaluations += N;

    // Barrier: apply the round's drops and queue dependents.
    std::fill(Queued.begin(), Queued.end(), 0);
    bool AnyDropped = false;
    for (const auto &Chunk : Drops) {
      for (const auto &[Var, Q] : Chunk) {
        auto Found = Assumed.find(Var);
        if (Found == Assumed.end() || !Found->second.erase(Q))
          continue; // Another constraint already dropped it this round.
        ++Stats.Dropped;
        AnyDropped = true;
        auto Deps = Dependents.find(Var);
        if (Deps == Dependents.end())
          continue;
        for (unsigned Id : Deps->second)
          Queued[Id] = 1;
      }
    }
    if (!AnyDropped)
      break;
    Worklist.clear();
    for (unsigned I = 0; I < Queued.size(); ++I)
      if (Queued[I])
        Worklist.push_back(I);
  }
  return Stats;
}
