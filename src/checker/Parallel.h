//===- Parallel.h - Sharded parallel qualifier checking ---------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel checking pipeline (`stqc check --jobs N`). The program is
/// split into units — the global initializers plus one unit per function
/// definition — and the units are checked by independent QualChecker
/// instances on a work-stealing pool. The checker only reads the lowered
/// AST, so units share the program without synchronization; each unit
/// collects diagnostics into a private engine.
///
/// Determinism: unit results are merged in program order (globals first,
/// then functions as declared), which reproduces the sequential checker's
/// diagnostic and runtime-check order exactly. `--jobs N` must be
/// byte-identical to `--jobs 1`; the differential test enforces this.
///
/// The only observable difference from a single sequential QualChecker is
/// the memoization counters: the hasQualifier memo is per-instance, so a
/// sharded run re-derives queries a sequential run would have memo-hit
/// across function boundaries. Stats.MemoHits may therefore differ;
/// diagnostics and failures may not.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_PARALLEL_H
#define STQ_CHECKER_PARALLEL_H

#include "checker/Checker.h"

namespace stq {
class ThreadPool;
}

namespace stq::checker {

/// Counters describing one parallel checking run.
struct ParallelStats {
  /// Shardable units: 1 (globals) + function definitions.
  unsigned Units = 0;
  /// Worker threads used.
  unsigned Jobs = 0;
  /// Tasks executed / stolen on the pool (0 stolen when Jobs <= 1).
  uint64_t Executed = 0;
  uint64_t Steals = 0;
};

/// Checks \p Prog with \p Jobs workers. Jobs <= 1 runs the plain
/// sequential checker on \p Diags; otherwise units run concurrently and
/// their diagnostics are merged into \p Diags in program order. When
/// \p Pool is given, units fan out on it (as a task group) instead of a
/// per-call pool, so concurrent callers share workers.
CheckResult checkProgramParallel(cminus::Program &Prog,
                                 const qual::QualifierSet &Quals,
                                 DiagnosticEngine &Diags,
                                 CheckerOptions Options = {},
                                 unsigned Jobs = 1,
                                 ParallelStats *StatsOut = nullptr,
                                 ThreadPool *Pool = nullptr);

/// Convenience entry point mirroring checkSource: full front end, then
/// parallel checking.
CheckResult checkSourceParallel(const std::string &Source,
                                const qual::QualifierSet &Quals,
                                DiagnosticEngine &Diags,
                                std::unique_ptr<cminus::Program> &ProgOut,
                                CheckerOptions Options = {},
                                unsigned Jobs = 1,
                                ParallelStats *StatsOut = nullptr);

} // namespace stq::checker

#endif // STQ_CHECKER_PARALLEL_H
