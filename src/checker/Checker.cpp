//===- Checker.cpp --------------------------------------------------------===//

#include "checker/Checker.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Printer.h"
#include "cminus/Sema.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;
using qual::Classifier;
using qual::Clause;
using qual::ExprPattern;
using qual::Pred;
using qual::QualifierDef;

QualChecker::QualChecker(Program &Prog, const qual::QualifierSet &Quals,
                         DiagnosticEngine &Diags, CheckerOptions Options)
    : Prog(Prog), Quals(Quals), Diags(Diags), Options(Options) {}

void QualChecker::warn(SourceLoc Loc, const std::string &Message) {
  // The paper's implementation reports qualifier errors as warnings and
  // lets compilation continue.
  Diags.warning(Loc, "qualcheck", Message);
  ++Result.QualErrors;
}

//===----------------------------------------------------------------------===//
// hasQualifier
//===----------------------------------------------------------------------===//

bool QualChecker::hasQualifier(const Expr *E, const std::string &QualName) {
  return hasQualifier(E, Quals.find(QualName));
}

bool QualChecker::hasQualifier(const Expr *E, const QualifierDef *Q) {
  ++Result.Stats.HasQualQueries;
  if (!Q || !E->Ty)
    return false;
  if (Options.AssumedCasts) {
    auto Assumed = Options.AssumedCasts->find(E->Id);
    if (Assumed != Options.AssumedCasts->end())
      for (const std::string &Name : Assumed->second)
        if (Name == Q->Name)
          return true;
  }
  if (Options.AssumedVarQuals) {
    if (const auto *Read = dyn_cast<LValReadExpr>(E)) {
      if (Read->LV->isBareVar()) {
        auto Found = Options.AssumedVarQuals->find(Read->LV->Var);
        if (Found != Options.AssumedVarQuals->end() &&
            Found->second.count(Q->Name))
          return true;
      }
    }
  }
  // Flow-sensitive narrowing: the guarding condition verified the
  // invariant for this variable. Pointer arithmetic keeps the narrowed
  // qualifier (the logical memory model: p+i has p's type).
  if (Options.FlowSensitiveNarrowing && !Narrowed.empty()) {
    const Expr *Root = E;
    while (true) {
      if (const auto *Bin = dyn_cast<BinaryExpr>(Root)) {
        if ((Bin->Op == BinaryOp::Add || Bin->Op == BinaryOp::Sub) &&
            Bin->LHS->Ty && Bin->LHS->Ty->isPointer()) {
          Root = Bin->LHS;
          continue;
        }
        if (Bin->Op == BinaryOp::Add && Bin->RHS->Ty &&
            Bin->RHS->Ty->isPointer()) {
          Root = Bin->RHS;
          continue;
        }
      }
      break;
    }
    if (const auto *Read = dyn_cast<LValReadExpr>(Root)) {
      if (Read->LV->isBareVar()) {
        auto Found = Narrowed.find(Read->LV->Var);
        if (Found != Narrowed.end() && Found->second.count(Q->Name))
          return true;
      }
    }
  }
  // Declared/static types carry value qualifiers directly (variable
  // declarations, function returns, casts, pointer arithmetic under the
  // logical memory model).
  if (E->Ty->hasQual(Q->Name))
    return true;
  if (Q->IsRef)
    return false; // Reference qualifiers never attach to r-types.
  if (!Q->SubjectTy.matches(E->Ty))
    return false;
  if (Q->Cases.empty())
    return false;

  QueryKey Key(E->Id, Q);
  if (Options.Memoize) {
    auto Found = Memo.find(Key);
    if (Found != Memo.end()) {
      ++Result.Stats.MemoHits;
      return Found->second;
    }
  }
  if (InProgress.count(Key)) {
    // A derivation may not depend on itself (least fixpoint).
    TouchedInProgress = true;
    return false;
  }

  InProgress.insert(Key);
  bool SavedTouched = TouchedInProgress;
  TouchedInProgress = false;

  bool Derivable = false;
  for (const Clause &C : Q->Cases) {
    Bindings B;
    if (matchExprPattern(C, Q, E, B) && evalPred(C.Where, B)) {
      Derivable = true;
      break;
    }
  }

  InProgress.erase(Key);
  // Results that consulted an in-progress query hold only in this
  // derivation context; do not cache them.
  if (Options.Memoize && !TouchedInProgress)
    Memo.emplace(Key, Derivable);
  TouchedInProgress = TouchedInProgress || SavedTouched;
  return Derivable;
}

//===----------------------------------------------------------------------===//
// Pattern matching
//===----------------------------------------------------------------------===//

bool QualChecker::bindVar(const Clause &C, const QualifierDef *Q,
                          const std::string &Name, const Expr *E,
                          Bindings &Out) {
  (void)Q;
  if (Out.count(Name))
    return Out[Name].E == E; // Nonlinear patterns require the same node.
  const qual::VarPatternDecl *D = C.findDecl(Name);
  if (!D) {
    // The subject variable binds to anything of the subject's kind; its
    // type was checked before matching began.
    Out[Name] = Binding{E, nullptr};
    return true;
  }
  switch (D->Cls) {
  case Classifier::Expr:
    break;
  case Classifier::Const:
    if (!isa<IntConstExpr>(E) && !isa<StrConstExpr>(E) &&
        !isa<NullConstExpr>(E))
      return false;
    break;
  case Classifier::LValue:
    if (!isa<LValReadExpr>(E))
      return false;
    break;
  case Classifier::Var:
    if (const auto *Read = dyn_cast<LValReadExpr>(E)) {
      if (!Read->LV->isBareVar())
        return false;
    } else {
      return false;
    }
    break;
  }
  if (E->Ty && !D->Ty.matches(E->Ty))
    return false;
  Out[Name] = Binding{E, nullptr};
  return true;
}

bool QualChecker::bindLValue(const Clause &C, const std::string &Name,
                             const LValue *LV, Bindings &Out) {
  if (Out.count(Name))
    return Out[Name].LV == LV;
  const qual::VarPatternDecl *D = C.findDecl(Name);
  if (!D)
    return false;
  if (D->Cls == Classifier::Var && !LV->isBareVar())
    return false;
  if (D->Cls != Classifier::Var && D->Cls != Classifier::LValue)
    return false;
  if (LV->Ty && !D->Ty.matches(LV->Ty))
    return false;
  Out[Name] = Binding{nullptr, LV};
  return true;
}

bool QualChecker::matchExprPattern(const Clause &C, const QualifierDef *Q,
                                   const Expr *E, Bindings &Out) {
  const ExprPattern &P = C.Pattern;
  // Bind the subject first so `case E of E` (tainted) matches anything.
  if (Q)
    Out[Q->SubjectVar] = Binding{E, nullptr};
  switch (P.K) {
  case ExprPattern::Kind::Var:
    return bindVar(C, Q, P.X, E, Out);
  case ExprPattern::Kind::Deref: {
    const auto *Read = dyn_cast<LValReadExpr>(E);
    if (!Read || !Read->LV->isMem() || !Read->LV->Fields.empty())
      return false;
    return bindVar(C, Q, P.X, Read->LV->Addr, Out);
  }
  case ExprPattern::Kind::AddrOf: {
    const auto *Addr = dyn_cast<AddrOfExpr>(E);
    if (!Addr)
      return false;
    return bindLValue(C, P.X, Addr->LV, Out);
  }
  case ExprPattern::Kind::Unary: {
    const auto *Un = dyn_cast<UnaryExpr>(E);
    if (!Un || Un->Op != P.Uop)
      return false;
    return bindVar(C, Q, P.X, Un->Sub, Out);
  }
  case ExprPattern::Kind::Binary: {
    const auto *Bin = dyn_cast<BinaryExpr>(E);
    if (!Bin || Bin->Op != P.Bop)
      return false;
    return bindVar(C, Q, P.X, Bin->LHS, Out) &&
           bindVar(C, Q, P.Y, Bin->RHS, Out);
  }
  case ExprPattern::Kind::New:
  case ExprPattern::Kind::Null:
    return false; // Only meaningful in assign blocks.
  }
  return false;
}

bool QualChecker::matchAssignPattern(const Clause &C, const Expr *E,
                                     Bindings &Out) {
  switch (C.Pattern.K) {
  case ExprPattern::Kind::Null:
    return isa<NullConstExpr>(E);
  case ExprPattern::Kind::New: {
    const CallExpr *Call = getDirectCall(E);
    return Call && Call->IsAlloc;
  }
  default:
    // The subject (the assigned l-value) is not an expression binding here.
    return matchExprPattern(C, /*Q=*/nullptr, E, Out);
  }
}

namespace {

/// A comparison operand value: an integer or NULL.
struct TermValue {
  bool IsNull = false;
  int64_t Int = 0;
  bool Valid = false;
};

} // namespace

bool QualChecker::evalPred(const Pred &P, const Bindings &B) {
  switch (P.K) {
  case Pred::Kind::True:
    return true;
  case Pred::Kind::And:
    return evalPred(*P.LHS, B) && evalPred(*P.RHS, B);
  case Pred::Kind::Or:
    return evalPred(*P.LHS, B) || evalPred(*P.RHS, B);
  case Pred::Kind::QualCheck: {
    auto Found = B.find(P.Var);
    if (Found == B.end() || !Found->second.E)
      return false;
    return hasQualifier(Found->second.E, P.Qual);
  }
  case Pred::Kind::Compare: {
    auto Eval = [&](const Pred::Term &T) -> TermValue {
      TermValue V;
      switch (T.K) {
      case Pred::Term::Kind::Int:
        V.Int = T.Int;
        V.Valid = true;
        return V;
      case Pred::Term::Kind::Null:
        V.IsNull = true;
        V.Valid = true;
        return V;
      case Pred::Term::Kind::Var: {
        auto Found = B.find(T.Var);
        if (Found == B.end() || !Found->second.E)
          return V;
        if (const auto *IC = dyn_cast<IntConstExpr>(Found->second.E)) {
          V.Int = IC->Value;
          V.Valid = true;
        } else if (isa<NullConstExpr>(Found->second.E)) {
          V.IsNull = true;
          V.Valid = true;
        }
        return V;
      }
      }
      return V;
    };
    TermValue A = Eval(P.A), Bv = Eval(P.B);
    if (!A.Valid || !Bv.Valid)
      return false;
    if (A.IsNull || Bv.IsNull) {
      bool BothNull = A.IsNull && Bv.IsNull;
      if (P.CmpOp == BinaryOp::Eq)
        return BothNull;
      if (P.CmpOp == BinaryOp::Ne)
        return !BothNull;
      return false;
    }
    switch (P.CmpOp) {
    case BinaryOp::Eq:
      return A.Int == Bv.Int;
    case BinaryOp::Ne:
      return A.Int != Bv.Int;
    case BinaryOp::Lt:
      return A.Int < Bv.Int;
    case BinaryOp::Le:
      return A.Int <= Bv.Int;
    case BinaryOp::Gt:
      return A.Int > Bv.Int;
    case BinaryOp::Ge:
      return A.Int >= Bv.Int;
    default:
      return false;
    }
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Assignments
//===----------------------------------------------------------------------===//

std::vector<const QualifierDef *>
QualChecker::refQualsOn(const TypePtr &Ty) const {
  std::vector<const QualifierDef *> Out;
  for (const std::string &Name : Ty->quals())
    if (const QualifierDef *Q = Quals.find(Name))
      if (Q->IsRef)
        Out.push_back(Q);
  return Out;
}

void QualChecker::checkAssignmentTo(const TypePtr &DstTy, const Expr *RHS,
                                    SourceLoc Loc, const std::string &What,
                                    const VarDecl *TargetVar) {
  for (const QualifierDef *Q : refQualsOn(DstTy))
    checkRefAssign(Q, RHS, Loc, What, TargetVar);
  checkValueQualFlow(DstTy, RHS, Loc, What, TargetVar);
}

void QualChecker::checkValueQualFlow(const TypePtr &DstTy, const Expr *RHS,
                                     SourceLoc Loc, const std::string &What,
                                     const VarDecl *TargetVar) {
  TypePtr RHSTy = RHS->Ty;
  // Nested qualifier sets must agree exactly: there is no subtyping under
  // pointers (section 2.1.2). NULL and void* conversions are exempt.
  if (!isa<NullConstExpr>(RHS) && RHSTy && RHSTy->isPointer() &&
      DstTy->isPointer() && !RHSTy->pointee()->isVoid() &&
      !DstTy->pointee()->isVoid() &&
      !Type::equals(RHSTy->pointee(), DstTy->pointee())) {
    warn(Loc, "qualifier mismatch below pointer type in " + What +
                  ": cannot use '" + RHSTy->str() + "' as '" + DstTy->str() +
                  "' (no subtyping under pointers)");
    return;
  }
  for (const std::string &Name : DstTy->quals()) {
    const QualifierDef *Q = Quals.find(Name);
    if (!Q || Q->IsRef)
      continue;
    ++Result.Stats.AssignChecks;
    if (!hasQualifier(RHS, Q)) {
      ++Result.Stats.AssignFailures;
      Result.Failures.push_back(
          {QualFailure::Kind::Assign, Name, Loc, RHS, TargetVar});
      warn(Loc, "cannot derive qualifier '" + Name + "' for '" +
                    printExpr(RHS) + "' in " + What);
    }
  }
}

void QualChecker::checkRefAssign(const QualifierDef *Q, const Expr *RHS,
                                 SourceLoc Loc, const std::string &What,
                                 const VarDecl *TargetVar) {
  ++Result.Stats.RefAssignChecks;
  // A cast to a Q-qualified type is an unchecked escape hatch, as with
  // traditional C casts (section 2.2.3: reference-qualifier casts are not
  // instrumented).
  if (const auto *Cast_ = dyn_cast<CastExpr>(RHS))
    if (Cast_->Target->hasQual(Q->Name))
      return;
  // Without an assign block, assignments are unrestricted (e.g. unaliased:
  // the qualifier is a property of the address only).
  if (Q->Assigns.empty())
    return;
  for (const Clause &C : Q->Assigns) {
    Bindings B;
    if (matchAssignPattern(C, RHS, B) && evalPred(C.Where, B))
      return;
  }
  ++Result.Stats.RefAssignFailures;
  Result.Failures.push_back(
      {QualFailure::Kind::RefAssign, Q->Name, Loc, RHS, TargetVar});
  warn(Loc, "assignment to '" + Q->Name + "' l-value in " + What +
                " does not match any assign rule of '" + Q->Name +
                "' (rhs: " + printExpr(RHS) + ")");
}

//===----------------------------------------------------------------------===//
// Restrict clauses
//===----------------------------------------------------------------------===//

void QualChecker::runRestrictClause(const QualifierDef *Q, const Clause &C,
                                    Bindings &B, SourceLoc Loc,
                                    const std::string &SiteDesc) {
  ++Result.Stats.RestrictChecks;
  if (evalPred(C.Where, B))
    return;
  ++Result.Stats.RestrictFailures;
  const Expr *Offending = nullptr;
  auto Bound = B.find(C.Pattern.X);
  if (Bound != B.end())
    Offending = Bound->second.E;
  Result.Failures.push_back(
      {QualFailure::Kind::Restrict, Q->Name, Loc, Offending, nullptr});
  warn(Loc, "restrict rule of qualifier '" + Q->Name + "' violated at " +
                SiteDesc + " (requires " + C.Where.str() + ")");
}

void QualChecker::applyRestrictsToDeref(const LValue *LV) {
  ++Result.Stats.DerefSites;
  for (const QualifierDef &Q : Quals.all()) {
    for (const Clause &C : Q.Restricts) {
      if (C.Pattern.K != ExprPattern::Kind::Deref)
        continue;
      Bindings B;
      if (!bindVar(C, /*Q=*/nullptr, C.Pattern.X, LV->Addr, B))
        continue;
      runRestrictClause(&Q, C, B, LV->Loc,
                        "dereference of '" + printExpr(LV->Addr) + "'");
    }
  }
}

void QualChecker::applyRestrictsToExpr(const Expr *E) {
  for (const QualifierDef &Q : Quals.all()) {
    for (const Clause &C : Q.Restricts) {
      if (C.Pattern.K == ExprPattern::Kind::Deref)
        continue; // Handled at dereference sites.
      Bindings B;
      if (!matchExprPattern(C, /*Q=*/nullptr, E, B))
        continue;
      runRestrictClause(&Q, C, B, E->Loc, "'" + printExpr(E) + "'");
    }
  }
}

//===----------------------------------------------------------------------===//
// Casts
//===----------------------------------------------------------------------===//

void QualChecker::recordCast(const CastExpr *Cast) {
  if (!RecordedCasts.insert(Cast).second)
    return;
  std::vector<std::string> ValueQuals;
  bool HasRefQual = false;
  for (const std::string &Name : Cast->Target->quals()) {
    const QualifierDef *Q = Quals.find(Name);
    if (!Q)
      continue;
    if (Q->IsRef) {
      HasRefQual = true;
      continue;
    }
    ValueQuals.push_back(Name);
  }
  if (HasRefQual)
    ++Result.Stats.CastsToRefQualified;
  if (ValueQuals.empty())
    return;
  ++Result.Stats.CastsToValueQualified;

  RuntimeCastCheck Check;
  Check.Cast = Cast;
  for (const std::string &Name : ValueQuals) {
    if (Options.ElideProvableCastChecks &&
        hasQualifier(Cast->Sub, Quals.find(Name))) {
      ++Result.Stats.ElidedCastChecks;
      continue;
    }
    Check.Quals.push_back(Name);
  }
  if (!Check.Quals.empty())
    Result.RuntimeChecks.push_back(std::move(Check));
}

//===----------------------------------------------------------------------===//
// Traversal
//===----------------------------------------------------------------------===//

void QualChecker::scanLValue(const LValue *LV, bool IsWrite,
                             bool GrantDerefExemption) {
  (void)IsWrite;
  if (LV->isMem()) {
    applyRestrictsToDeref(LV);
    scanExpr(LV->Addr, /*InMemAddr=*/GrantDerefExemption);
  }
}

void QualChecker::scanExpr(const Expr *E, bool InMemAddr) {
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    break;
  case Expr::Kind::LValRead: {
    const auto *Read = cast<LValReadExpr>(E);
    if (!InMemAddr && Read->LV->Ty) {
      for (const QualifierDef *Q : refQualsOn(Read->LV->Ty)) {
        if (Q->DisallowRead) {
          ++Result.Stats.DisallowFailures;
          Result.Failures.push_back({QualFailure::Kind::Disallow, Q->Name,
                                     E->Loc, E,
                                     Read->LV->isBareVar() ? Read->LV->Var
                                                           : nullptr});
          warn(E->Loc, "'" + printLValue(Read->LV) + "' has qualifier '" +
                           Q->Name +
                           "' and may not be referred to (disallow rule)");
        }
      }
    }
    scanLValue(Read->LV, /*IsWrite=*/false);
    break;
  }
  case Expr::Kind::AddrOf: {
    const auto *Addr = cast<AddrOfExpr>(E);
    if (Addr->LV->Ty) {
      for (const QualifierDef *Q : refQualsOn(Addr->LV->Ty)) {
        if (Q->DisallowAddrOf) {
          ++Result.Stats.DisallowFailures;
          Result.Failures.push_back({QualFailure::Kind::Disallow, Q->Name,
                                     E->Loc, E,
                                     Addr->LV->isBareVar() ? Addr->LV->Var
                                                           : nullptr});
          warn(E->Loc, "cannot take the address of '" +
                           printLValue(Addr->LV) + "': qualifier '" +
                           Q->Name + "' disallows it");
        }
      }
    }
    // Under '&' the deref exemption is revoked: &*p reproduces p's value,
    // which a disallow-read qualifier forbids.
    scanLValue(Addr->LV, /*IsWrite=*/false, /*GrantDerefExemption=*/false);
    break;
  }
  case Expr::Kind::Unary:
    scanExpr(cast<UnaryExpr>(E)->Sub, false);
    break;
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    // Pointer arithmetic forms part of a dereference address; reading a
    // disallow-read l-value is still permitted there.
    bool Propagate = InMemAddr && (Bin->Op == BinaryOp::Add ||
                                   Bin->Op == BinaryOp::Sub);
    scanExpr(Bin->LHS, Propagate);
    scanExpr(Bin->RHS, Propagate);
    break;
  }
  case Expr::Kind::Cast: {
    const auto *Cast_ = cast<CastExpr>(E);
    recordCast(Cast_);
    scanExpr(Cast_->Sub, InMemAddr);
    break;
  }
  case Expr::Kind::Call:
    // Calls appear only in direct-instruction positions; they are scanned
    // by scanCall.
    assert(false && "call in pure-expression position during scan");
    break;
  }
  applyRestrictsToExpr(E);
}

void QualChecker::scanCall(const CallExpr *Call) {
  for (const Expr *Arg : Call->Args)
    scanExpr(Arg, false);
  const FuncDecl *Callee = Call->Callee;
  if (!Callee)
    return;
  if (Callee->Variadic && !Callee->Params.empty() &&
      Callee->Params[0]->DeclaredTy->hasQual("untainted"))
    ++Result.Stats.FormatStringChecks;
  for (size_t I = 0; I < Call->Args.size() && I < Callee->Params.size(); ++I)
    checkAssignmentTo(Callee->Params[I]->DeclaredTy, Call->Args[I],
                      Call->Args[I]->Loc,
                      "argument " + std::to_string(I + 1) + " of call to '" +
                          Callee->Name + "'",
                      Callee->Params[I]);
}

void QualChecker::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->Stmts)
      checkStmt(Sub);
    return;
  case Stmt::Kind::Decl: {
    VarDecl *Var = cast<DeclStmt>(S)->Var;
    if (!Var->Init)
      return;
    if (const CallExpr *Call = getDirectCall(Var->Init)) {
      scanCall(Call);
      if (const auto *Cast_ = dyn_cast<CastExpr>(Var->Init))
        recordCast(Cast_);
    } else {
      scanExpr(Var->Init, false);
    }
    checkAssignmentTo(Var->DeclaredTy, Var->Init, Var->Loc,
                      "initialization of '" + Var->Name + "'", Var);
    return;
  }
  case Stmt::Kind::Assign: {
    auto *Assign = cast<AssignStmt>(S);
    scanLValue(Assign->LHS, /*IsWrite=*/true);
    if (const CallExpr *Call = getDirectCall(Assign->RHS)) {
      scanCall(Call);
      if (const auto *Cast_ = dyn_cast<CastExpr>(Assign->RHS))
        recordCast(Cast_);
    } else {
      scanExpr(Assign->RHS, false);
    }
    if (Assign->LHS->Ty)
      checkAssignmentTo(Assign->LHS->Ty, Assign->RHS, Assign->Loc,
                        "assignment to '" + printLValue(Assign->LHS) + "'",
                        Assign->LHS->isBareVar() ? Assign->LHS->Var
                                                 : nullptr);
    return;
  }
  case Stmt::Kind::CallStmt:
    scanCall(cast<CallStmt>(S)->Call);
    return;
  case Stmt::Kind::If: {
    auto *If = cast<IfStmt>(S);
    scanExpr(If->Cond, false);
    if (Options.FlowSensitiveNarrowing) {
      std::vector<std::pair<const VarDecl *, std::string>> ThenNar, ElseNar;
      narrowingsFrom(If->Cond, /*Sense=*/true, ThenNar);
      narrowingsFrom(If->Cond, /*Sense=*/false, ElseNar);
      checkNarrowed(If->Then, ThenNar);
      checkNarrowed(If->Else, ElseNar);
      return;
    }
    checkStmt(If->Then);
    checkStmt(If->Else);
    return;
  }
  case Stmt::Kind::While: {
    auto *While = cast<WhileStmt>(S);
    scanExpr(While->Cond, false);
    if (Options.FlowSensitiveNarrowing) {
      std::vector<std::pair<const VarDecl *, std::string>> BodyNar;
      narrowingsFrom(While->Cond, /*Sense=*/true, BodyNar);
      checkNarrowed(While->Body, BodyNar);
      return;
    }
    checkStmt(While->Body);
    return;
  }
  case Stmt::Kind::For: {
    auto *For = cast<ForStmt>(S);
    checkStmt(For->Init);
    if (For->Cond)
      scanExpr(For->Cond, false);
    checkStmt(For->Step);
    if (Options.FlowSensitiveNarrowing && For->Cond) {
      std::vector<std::pair<const VarDecl *, std::string>> BodyNar;
      narrowingsFrom(For->Cond, /*Sense=*/true, BodyNar);
      // The step runs inside the loop too; treat it as part of the body
      // for the conservative kill.
      checkNarrowed(For->Body, BodyNar);
      return;
    }
    checkStmt(For->Body);
    return;
  }
  case Stmt::Kind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (!Ret->Value)
      return;
    scanExpr(Ret->Value, false);
    assert(CurrentFn && "return outside function");
    if (!CurrentFn->RetTy->isVoid())
      checkAssignmentTo(CurrentFn->RetTy, Ret->Value, Ret->Loc,
                        "return from '" + CurrentFn->Name + "'");
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Flow-sensitive narrowing (section 8 future work, opt-in)
//===----------------------------------------------------------------------===//

bool QualChecker::comparisonImpliesInvariant(const QualifierDef *Q,
                                             BinaryOp Op, bool IsNull,
                                             int64_t C) {
  if (!Q || Q->IsRef || !Q->Invariant)
    return false;
  const qual::InvPred &Inv = *Q->Invariant;
  if (Inv.K != qual::InvPred::Kind::Compare ||
      Inv.A.K != qual::InvTerm::Kind::ValueOf)
    return false;
  // Invariant compares the value against NULL.
  if (Inv.B.K == qual::InvTerm::Kind::Null)
    return IsNull && Inv.CmpOp == BinaryOp::Ne && Op == BinaryOp::Ne;
  if (Inv.B.K != qual::InvTerm::Kind::Int || IsNull)
    return false;
  int64_t T = Inv.B.Int;
  // The condition constrains the variable to a range; does the range lie
  // within the invariant's?
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0; // Inclusive integer bounds.
  switch (Op) {
  case BinaryOp::Eq:
    HasLo = HasHi = true;
    Lo = Hi = C;
    break;
  case BinaryOp::Gt:
    HasLo = true;
    Lo = C + 1;
    break;
  case BinaryOp::Ge:
    HasLo = true;
    Lo = C;
    break;
  case BinaryOp::Lt:
    HasHi = true;
    Hi = C - 1;
    break;
  case BinaryOp::Le:
    HasHi = true;
    Hi = C;
    break;
  case BinaryOp::Ne:
    // v != C only implies v != T when C == T.
    return Inv.CmpOp == BinaryOp::Ne && C == T;
  default:
    return false;
  }
  switch (Inv.CmpOp) {
  case BinaryOp::Gt:
    return HasLo && Lo > T;
  case BinaryOp::Ge:
    return HasLo && Lo >= T;
  case BinaryOp::Lt:
    return HasHi && Hi < T;
  case BinaryOp::Le:
    return HasHi && Hi <= T;
  case BinaryOp::Ne:
    return (HasLo && Lo > T) || (HasHi && Hi < T);
  case BinaryOp::Eq:
    return HasLo && HasHi && Lo == Hi && Lo == T;
  default:
    return false;
  }
}

void QualChecker::narrowingsFrom(
    const Expr *Cond, bool Sense,
    std::vector<std::pair<const VarDecl *, std::string>> &Out) {
  if (!Cond)
    return;
  switch (Cond->getKind()) {
  case Expr::Kind::Unary: {
    const auto *Un = cast<UnaryExpr>(Cond);
    if (Un->Op == UnaryOp::Not)
      narrowingsFrom(Un->Sub, !Sense, Out);
    return;
  }
  case Expr::Kind::LValRead: {
    // Truthiness of a pointer: `if (p)` means p != NULL.
    const auto *Read = cast<LValReadExpr>(Cond);
    if (!Sense || !Read->LV->isBareVar() || !Cond->Ty ||
        !Cond->Ty->isPointer())
      return;
    for (const QualifierDef &Q : Quals.all())
      if (comparisonImpliesInvariant(&Q, BinaryOp::Ne, /*IsNull=*/true, 0))
        Out.emplace_back(Read->LV->Var, Q.Name);
    return;
  }
  case Expr::Kind::Binary:
    break;
  default:
    return;
  }

  const auto *Bin = cast<BinaryExpr>(Cond);
  if (Bin->Op == BinaryOp::LAnd) {
    // The true branch of a && b gives both; the false branch neither.
    if (Sense) {
      narrowingsFrom(Bin->LHS, true, Out);
      narrowingsFrom(Bin->RHS, true, Out);
    }
    return;
  }
  if (Bin->Op == BinaryOp::LOr) {
    // The false branch of a || b gives the negation of both.
    if (!Sense) {
      narrowingsFrom(Bin->LHS, false, Out);
      narrowingsFrom(Bin->RHS, false, Out);
    }
    return;
  }

  // A comparison between a bare variable and a constant.
  const Expr *VarSide = nullptr;
  const Expr *ConstSide = nullptr;
  BinaryOp Op = Bin->Op;
  auto IsConst = [](const Expr *E) {
    return isa<IntConstExpr>(E) || isa<NullConstExpr>(E);
  };
  auto IsBareRead = [](const Expr *E) {
    const auto *Read = dyn_cast<LValReadExpr>(E);
    return Read && Read->LV->isBareVar();
  };
  if (IsBareRead(Bin->LHS) && IsConst(Bin->RHS)) {
    VarSide = Bin->LHS;
    ConstSide = Bin->RHS;
  } else if (IsBareRead(Bin->RHS) && IsConst(Bin->LHS)) {
    VarSide = Bin->RHS;
    ConstSide = Bin->LHS;
    // Mirror the comparison: C op v becomes v op' C.
    switch (Op) {
    case BinaryOp::Lt:
      Op = BinaryOp::Gt;
      break;
    case BinaryOp::Le:
      Op = BinaryOp::Ge;
      break;
    case BinaryOp::Gt:
      Op = BinaryOp::Lt;
      break;
    case BinaryOp::Ge:
      Op = BinaryOp::Le;
      break;
    default:
      break;
    }
  } else {
    return;
  }
  if (!Sense) {
    switch (Op) {
    case BinaryOp::Eq:
      Op = BinaryOp::Ne;
      break;
    case BinaryOp::Ne:
      Op = BinaryOp::Eq;
      break;
    case BinaryOp::Lt:
      Op = BinaryOp::Ge;
      break;
    case BinaryOp::Le:
      Op = BinaryOp::Gt;
      break;
    case BinaryOp::Gt:
      Op = BinaryOp::Le;
      break;
    case BinaryOp::Ge:
      Op = BinaryOp::Lt;
      break;
    default:
      return;
    }
  }
  bool IsNull = isa<NullConstExpr>(ConstSide);
  int64_t C = IsNull ? 0 : cast<IntConstExpr>(ConstSide)->Value;
  const VarDecl *Var = cast<LValReadExpr>(VarSide)->LV->Var;
  for (const QualifierDef &Q : Quals.all())
    if (comparisonImpliesInvariant(&Q, Op, IsNull, C))
      Out.emplace_back(Var, Q.Name);
}

namespace {

/// Collects variables possibly modified by an expression's evaluation
/// context: address-taken bare variables (which a callee could write).
void collectKilledInExpr(const Expr *E, std::set<const VarDecl *> &Out) {
  if (!E)
    return;
  switch (E->getKind()) {
  case Expr::Kind::AddrOf: {
    const auto *Addr = cast<AddrOfExpr>(E);
    if (Addr->LV->isBareVar())
      Out.insert(Addr->LV->Var);
    if (Addr->LV->isMem())
      collectKilledInExpr(Addr->LV->Addr, Out);
    return;
  }
  case Expr::Kind::LValRead:
    if (cast<LValReadExpr>(E)->LV->isMem())
      collectKilledInExpr(cast<LValReadExpr>(E)->LV->Addr, Out);
    return;
  case Expr::Kind::Unary:
    collectKilledInExpr(cast<UnaryExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Binary:
    collectKilledInExpr(cast<BinaryExpr>(E)->LHS, Out);
    collectKilledInExpr(cast<BinaryExpr>(E)->RHS, Out);
    return;
  case Expr::Kind::Cast:
    collectKilledInExpr(cast<CastExpr>(E)->Sub, Out);
    return;
  case Expr::Kind::Call:
    for (const Expr *Arg : cast<CallExpr>(E)->Args)
      collectKilledInExpr(Arg, Out);
    return;
  default:
    return;
  }
}

} // namespace

void QualChecker::collectAssignedVars(const Stmt *S,
                                      std::set<const VarDecl *> &Out) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
      collectAssignedVars(Sub, Out);
    return;
  case Stmt::Kind::Decl:
    if (const Expr *Init = cast<DeclStmt>(S)->Var->Init)
      collectKilledInExpr(Init, Out);
    return;
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    if (Assign->LHS->isBareVar())
      Out.insert(Assign->LHS->Var);
    else if (Assign->LHS->isMem())
      collectKilledInExpr(Assign->LHS->Addr, Out);
    collectKilledInExpr(Assign->RHS, Out);
    return;
  }
  case Stmt::Kind::CallStmt:
    collectKilledInExpr(cast<CallStmt>(S)->Call, Out);
    return;
  case Stmt::Kind::If:
    collectKilledInExpr(cast<IfStmt>(S)->Cond, Out);
    collectAssignedVars(cast<IfStmt>(S)->Then, Out);
    collectAssignedVars(cast<IfStmt>(S)->Else, Out);
    return;
  case Stmt::Kind::While:
    collectKilledInExpr(cast<WhileStmt>(S)->Cond, Out);
    collectAssignedVars(cast<WhileStmt>(S)->Body, Out);
    return;
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    collectAssignedVars(For->Init, Out);
    if (For->Cond)
      collectKilledInExpr(For->Cond, Out);
    collectAssignedVars(For->Step, Out);
    collectAssignedVars(For->Body, Out);
    return;
  }
  case Stmt::Kind::Return:
    if (const Expr *V = cast<ReturnStmt>(S)->Value)
      collectKilledInExpr(V, Out);
    return;
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void QualChecker::checkNarrowed(
    Stmt *Body,
    const std::vector<std::pair<const VarDecl *, std::string>> &Narrowings) {
  if (!Body)
    return;
  if (Narrowings.empty()) {
    checkStmt(Body);
    return;
  }
  std::set<const VarDecl *> Killed;
  collectAssignedVars(Body, Killed);
  std::map<const VarDecl *, std::set<std::string>> Saved = Narrowed;
  for (const auto &[Var, Qual] : Narrowings)
    if (!Killed.count(Var))
      Narrowed[Var].insert(Qual);
  checkStmt(Body);
  Narrowed = std::move(Saved);
}


void QualChecker::checkFunction(FuncDecl *Fn) {
  trace::Span S("check.unit",
                trace::Tracer::enabled() ? Fn->Name : std::string());
  CurrentFn = Fn;
  checkStmt(Fn->Body);
  CurrentFn = nullptr;
}

CheckResult QualChecker::runGlobals() {
  trace::Span S("check.unit", trace::Tracer::enabled() ? "<globals>"
                                                       : std::string());
  for (VarDecl *G : Prog.Globals) {
    if (!G->Init)
      continue;
    scanExpr(G->Init, false);
    checkAssignmentTo(G->DeclaredTy, G->Init, G->Loc,
                      "initialization of global '" + G->Name + "'", G);
  }
  return Result;
}

CheckResult QualChecker::runFunction(cminus::FuncDecl *Fn) {
  checkFunction(Fn);
  return Result;
}

CheckResult QualChecker::run() {
  runGlobals();
  for (FuncDecl *Fn : Prog.Functions)
    if (Fn->isDefinition())
      checkFunction(Fn);
  return Result;
}

//===----------------------------------------------------------------------===//
// Convenience pipeline
//===----------------------------------------------------------------------===//

CheckResult stq::checker::checkSource(const std::string &Source,
                                      const qual::QualifierSet &Quals,
                                      DiagnosticEngine &Diags,
                                      std::unique_ptr<Program> &ProgOut,
                                      CheckerOptions Options) {
  ProgOut = parseProgram(Source, Quals.names(), Diags);
  CheckResult Empty;
  if (Diags.hasErrors())
    return Empty;
  if (!runSema(*ProgOut, Quals.refNames(), Diags))
    return Empty;
  if (!lowerProgram(*ProgOut, Diags))
    return Empty;
  if (!verifyLoweredProgram(*ProgOut, Diags))
    return Empty;
  QualChecker Checker(*ProgOut, Quals, Diags, Options);
  return Checker.run();
}
