//===- ConstraintGraph.h - Qualifier-variable constraint graph --*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program qualifier constraint graph: one atom per (variable,
/// candidate qualifier) pair, one constraint per flow into a variable, and
/// a round-based parallel worklist solve.
///
/// Construction is shardable: `collectUnitFlows` produces the flow edges of
/// one unit (unit 0 is the globals; unit 1+i is function i, parameters plus
/// body) so generation fans out on the ThreadPool, and merging the units in
/// index order reproduces the exact edge order a sequential walk yields.
///
/// The solve is a Jacobi-style greatest-fixpoint iteration: each round
/// evaluates every queued constraint against a *frozen* snapshot of the
/// current assumptions, applies the resulting qualifier drops between
/// rounds, and re-queues only constraints depending on a dropped variable.
/// Because rounds are barriers over frozen state, the drop set per round —
/// and therefore the final fixpoint, the round count, and the evaluation
/// count — is identical at every `--jobs` value. (The sequential reference
/// engine in Inference.cpp is Gauss-Seidel over the same edges; both
/// converge to the same greatest fixpoint since the drop operator is
/// monotone.)
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CHECKER_CONSTRAINTGRAPH_H
#define STQ_CHECKER_CONSTRAINTGRAPH_H

#include "cminus/AST.h"
#include "support/ThreadPool.h"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stq::checker {

/// One flow into a variable: an explicit assignment, an initializer, or a
/// call argument binding a parameter.
struct FlowEdge {
  const cminus::VarDecl *Target = nullptr;
  const cminus::Expr *RHS = nullptr;
};

/// A `return e;` flow into a function's return type (not consumed by the
/// value-qualifier solve, which infers variable annotations only; the
/// two-point taint differential uses it).
struct ReturnFlow {
  const cminus::FuncDecl *Fn = nullptr;
  const cminus::Expr *Value = nullptr;
};

/// Flow edges and variable roster of one shardable generation unit.
struct UnitFlows {
  std::vector<FlowEdge> Edges;
  std::vector<const cminus::VarDecl *> Vars;
  std::vector<ReturnFlow> Returns;
  /// Variables whose address is taken somewhere in the unit. Qualifiers
  /// are invariant below pointers, so inferring a new qualifier on an
  /// address-taken variable would retype every `&v` and break re-checking;
  /// both engines exclude these from seeding.
  std::vector<const cminus::VarDecl *> AddrTaken;
};

/// Number of generation units: 1 (globals) + one per function.
unsigned flowUnitCount(const cminus::Program &Prog);

/// Collects unit \p Unit's flows. Unit 0: global roster + initializer
/// edges. Unit 1+i: function i's parameter roster, plus local roster,
/// assignment/initializer/call-argument edges and return flows when it is
/// a definition. Call-argument edges may target another unit's parameters.
void collectUnitFlows(const cminus::Program &Prog, unsigned Unit,
                      UnitFlows &Out);

/// Collects every unit sequentially and merges in unit order (the
/// sequential reference engine's view of the program).
UnitFlows collectAllFlows(const cminus::Program &Prog);

/// Appends every variable read anywhere inside \p E (the conservative
/// dependency set of a constraint on its right-hand side).
void collectReadVars(const cminus::Expr *E,
                     std::vector<const cminus::VarDecl *> &Out);

struct ConstraintGraphStats {
  unsigned Atoms = 0;       ///< Seeded (variable, qualifier) candidates.
  unsigned Constraints = 0; ///< Flow constraints in the graph.
  unsigned SolveRounds = 0; ///< Jacobi rounds until the worklist drained.
  uint64_t Evaluations = 0; ///< (constraint, qualifier) checks performed.
  unsigned Dropped = 0;     ///< Atoms refuted during the solve.
};

/// The constraint graph proper: candidate atoms, flow constraints, and the
/// parallel worklist solve. The graph does not know how to evaluate a
/// constraint — the caller supplies an evaluator (a QualChecker wrapper)
/// so the graph stays independent of checker internals.
class ConstraintGraph {
public:
  /// Candidate assumptions, in the exact shape CheckerOptions::
  /// AssumedVarQuals consumes.
  using Assumptions = std::map<const cminus::VarDecl *, std::set<std::string>>;

  struct Constraint {
    const cminus::VarDecl *Target = nullptr;
    const cminus::Expr *RHS = nullptr;
  };

  /// Answers "can this constraint's right-hand side be given qualifier
  /// \p Qual under the frozen assumptions the evaluator was built with?".
  using Evaluator =
      std::function<bool(const Constraint &, const std::string &Qual)>;
  /// Builds one evaluator per worker chunk per round; the argument is the
  /// frozen assumption snapshot (stable for the evaluator's lifetime).
  using EvaluatorFactory = std::function<Evaluator(const Assumptions &)>;

  /// Seeds the optimistic candidate atom (Var, Qual).
  void addCandidate(const cminus::VarDecl *Var, const std::string &Qual) {
    Assumed[Var].insert(Qual);
  }

  /// Adds a constraint \p Target <- \p RHS whose evaluation depends on the
  /// variables read inside RHS (computed conservatively here).
  void addConstraint(const cminus::VarDecl *Target, const cminus::Expr *RHS);

  const Assumptions &assumptions() const { return Assumed; }
  const std::vector<Constraint> &constraints() const { return Constraints; }

  /// Runs the round-based worklist solve; on return `assumptions()` holds
  /// the greatest fixpoint. Deterministic at any \p Jobs value. \p Pool,
  /// when non-null, is a shared long-lived pool (the stqd daemon's).
  ConstraintGraphStats solve(const EvaluatorFactory &MakeEvaluator,
                             unsigned Jobs, ThreadPool *Pool = nullptr);

private:
  Assumptions Assumed;
  std::vector<Constraint> Constraints;
  /// Variable -> indices of constraints whose evaluation reads it.
  std::map<const cminus::VarDecl *, std::vector<unsigned>> Dependents;
};

} // namespace stq::checker

#endif // STQ_CHECKER_CONSTRAINTGRAPH_H
