//===- AnnotationDriver.cpp -----------------------------------------------===//

#include "workloads/AnnotationDriver.h"

#include "checker/Checker.h"
#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "qual/Builtins.h"

#include <chrono>
#include <functional>
#include <map>
#include <set>

using namespace stq;
using namespace stq::workloads;
using namespace stq::cminus;
using checker::CheckerOptions;
using checker::CheckResult;
using checker::QualChecker;
using checker::QualFailure;

namespace {

/// What an offending expression can be annotated at: a variable's declared
/// type or a struct field's type.
struct AnnotTarget {
  enum class Kind { None, Var, Field };
  Kind K = Kind::None;
  VarDecl *Var = nullptr;
  StructDef *Def = nullptr;
  std::string Field;

  bool valid() const { return K != Kind::None; }
  bool operator<(const AnnotTarget &O) const {
    return std::tie(K, Var, Def, Field) < std::tie(O.K, O.Var, O.Def,
                                                   O.Field);
  }
};

/// Resolves the struct definition owning the last field of \p LV.
StructDef *structOfLastField(const Program &Prog, const LValue *LV) {
  TypePtr Cur;
  if (LV->isVar())
    Cur = LV->Var->DeclaredTy;
  else if (LV->Addr->Ty && Type::withoutQuals(LV->Addr->Ty)->isPointer())
    Cur = Type::withoutQuals(LV->Addr->Ty)->pointee();
  if (!Cur)
    return nullptr;
  StructDef *Def = nullptr;
  for (size_t I = 0; I < LV->Fields.size(); ++I) {
    TypePtr Bare = Type::withoutQuals(Cur);
    if (!Bare->isStruct())
      return nullptr;
    Def = Prog.findStruct(Bare->structName());
    if (!Def)
      return nullptr;
    const StructDef::Field *F = Def->findField(LV->Fields[I]);
    if (!F)
      return nullptr;
    Cur = F->Ty;
  }
  return Def;
}

/// Walks pointer arithmetic and casts to the annotatable root of \p E.
AnnotTarget rootOf(const Program &Prog, const Expr *E) {
  AnnotTarget None;
  if (!E)
    return None;
  switch (E->getKind()) {
  case Expr::Kind::LValRead: {
    const LValue *LV = cast<LValReadExpr>(E)->LV;
    if (LV->isBareVar())
      return {AnnotTarget::Kind::Var, LV->Var, nullptr, ""};
    if (!LV->Fields.empty()) {
      StructDef *Def = structOfLastField(Prog, LV);
      if (Def)
        return {AnnotTarget::Kind::Field, nullptr, Def, LV->Fields.back()};
    }
    return None;
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    if (Bin->Op != BinaryOp::Add && Bin->Op != BinaryOp::Sub)
      return None;
    if (Bin->LHS->Ty && Bin->LHS->Ty->isPointer())
      return rootOf(Prog, Bin->LHS);
    if (Bin->RHS->Ty && Bin->RHS->Ty->isPointer())
      return rootOf(Prog, Bin->RHS);
    return None;
  }
  case Expr::Kind::Cast:
    return rootOf(Prog, cast<CastExpr>(E)->Sub);
  default:
    return None;
  }
}

/// Collects targets that are ever assigned NULL (not annotatable with
/// nonnull) and targets whose every assignment is a string literal
/// (annotatable with untainted).
class TargetFacts {
public:
  TargetFacts(const Program &Prog) : Prog(Prog) {
    for (const VarDecl *G : Prog.Globals)
      if (G->Init)
        record(targetOfVar(G), G->Init);
    for (const FuncDecl *Fn : Prog.Functions)
      if (Fn->isDefinition())
        walk(Fn->Body);
  }

  bool assignedNull(const AnnotTarget &T) const {
    return NullAssigned.count(T) != 0;
  }
  bool literalOnly(const AnnotTarget &T) const {
    // Requires at least one (literal) assignment: targets never assigned
    // in the program carry external data of unknown provenance.
    return LiteralAssigned.count(T) != 0 &&
           NonLiteralAssigned.count(T) == 0;
  }

private:
  static AnnotTarget targetOfVar(const VarDecl *Var) {
    return {AnnotTarget::Kind::Var, const_cast<VarDecl *>(Var), nullptr,
            ""};
  }

  void record(AnnotTarget T, const Expr *RHS) {
    if (!T.valid())
      return;
    if (isa<NullConstExpr>(RHS))
      NullAssigned.insert(T);
    if (isa<StrConstExpr>(RHS))
      LiteralAssigned.insert(T);
    else
      NonLiteralAssigned.insert(T);
  }

  AnnotTarget targetOfLValue(const LValue *LV) {
    if (LV->isBareVar())
      return targetOfVar(LV->Var);
    if (!LV->Fields.empty()) {
      StructDef *Def = structOfLastField(Prog, LV);
      if (Def)
        return {AnnotTarget::Kind::Field, nullptr, Def, LV->Fields.back()};
    }
    return {};
  }

  void walk(const Stmt *S) {
    if (!S)
      return;
    switch (S->getKind()) {
    case Stmt::Kind::Block:
      for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
        walk(Sub);
      return;
    case Stmt::Kind::Decl: {
      const VarDecl *Var = cast<DeclStmt>(S)->Var;
      if (Var->Init)
        record(targetOfVar(Var), Var->Init);
      return;
    }
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      record(targetOfLValue(Assign->LHS), Assign->RHS);
      return;
    }
    case Stmt::Kind::If:
      walk(cast<IfStmt>(S)->Then);
      walk(cast<IfStmt>(S)->Else);
      return;
    case Stmt::Kind::While:
      walk(cast<WhileStmt>(S)->Body);
      return;
    case Stmt::Kind::For: {
      const auto *For = cast<ForStmt>(S);
      walk(For->Init);
      walk(For->Step);
      walk(For->Body);
      return;
    }
    default:
      return;
    }
  }

  const Program &Prog;
  std::set<AnnotTarget> NullAssigned;
  std::set<AnnotTarget> LiteralAssigned;
  std::set<AnnotTarget> NonLiteralAssigned;
};

/// Applies the qualifier to a target's declared type.
void annotate(const AnnotTarget &T, const std::string &Qual) {
  if (T.K == AnnotTarget::Kind::Var) {
    T.Var->DeclaredTy = Type::withQual(T.Var->DeclaredTy, Qual);
    return;
  }
  for (StructDef::Field &F : T.Def->Fields)
    if (F.Name == T.Field)
      F.Ty = Type::withQual(F.Ty, Qual);
}

/// Shared fixpoint engine for the annotation experiments.
struct FixpointOutcome {
  unsigned Annotations = 0;
  unsigned Casts = 0;
  unsigned Iterations = 0;
  unsigned InitialErrors = 0;
  CheckResult Final;
};

/// Runs the checker repeatedly, annotating or assuming casts per the
/// policy, until no new action is possible.
///
/// \param Qual the qualifier being propagated.
/// \param CastFallback if true, unannotatable offending expressions get an
///        assumed cast (nonnull policy); if false they remain errors
///        (untainted policy: residual errors are real bugs).
/// \param AnnotatableIf decides whether a target may be annotated.
FixpointOutcome runFixpoint(
    Program &Prog, const qual::QualifierSet &Quals, const std::string &Qual,
    bool CastFallback,
    const std::function<bool(const AnnotTarget &)> &AnnotatableIf,
    bool FlowSensitive = false) {
  FixpointOutcome Out;
  std::set<AnnotTarget> Annotated;
  std::map<unsigned, std::vector<std::string>> AssumedCasts;
  DiagnosticEngine ScratchDiags;

  for (unsigned Iter = 0; Iter < 64; ++Iter) {
    ++Out.Iterations;
    ScratchDiags.clear();
    Prog.Ctx.resetComputedTypes();
    runSema(Prog, Quals.refNames(), ScratchDiags);
    CheckerOptions Options;
    Options.AssumedCasts = &AssumedCasts;
    Options.FlowSensitiveNarrowing = FlowSensitive;
    QualChecker Checker(Prog, Quals, ScratchDiags, Options);
    CheckResult Result = Checker.run();
    if (Iter == 0)
      Out.InitialErrors = Result.QualErrors;

    bool Changed = false;
    for (const QualFailure &F : Result.Failures) {
      if (F.Qual != Qual)
        continue;
      AnnotTarget T = rootOf(Prog, F.Offending);
      if (T.valid() && !Annotated.count(T) && AnnotatableIf(T)) {
        annotate(T, Qual);
        Annotated.insert(T);
        Changed = true;
        continue;
      }
      if (T.valid() && Annotated.count(T))
        continue; // Already handled; the re-run will see it.
      if (CastFallback && F.Offending) {
        auto &Assumed = AssumedCasts[F.Offending->Id];
        bool Already = false;
        for (const std::string &Q : Assumed)
          Already = Already || Q == Qual;
        if (!Already) {
          Assumed.push_back(Qual);
          Changed = true;
        }
      }
    }
    Out.Final = std::move(Result);
    if (!Changed)
      break;
  }
  Out.Annotations = static_cast<unsigned>(Annotated.size());
  Out.Casts = static_cast<unsigned>(AssumedCasts.size());
  return Out;
}

/// Parses and prepares a workload with the given builtin qualifiers.
std::unique_ptr<Program> prepare(const GeneratedWorkload &W,
                                 const std::vector<std::string> &QualNames,
                                 qual::QualifierSet &Quals,
                                 DiagnosticEngine &Diags) {
  if (!qual::loadBuiltinQualifiers(QualNames, Quals, Diags))
    return nullptr;
  auto Prog = parseProgram(W.Source, Quals.names(), Diags);
  if (Diags.hasErrors())
    return nullptr;
  if (!runSema(*Prog, Quals.refNames(), Diags))
    return nullptr;
  if (!lowerProgram(*Prog, Diags))
    return nullptr;
  return Prog;
}

} // namespace

//===----------------------------------------------------------------------===//
// Experiments
//===----------------------------------------------------------------------===//

Table1Row stq::workloads::runNonnullExperiment(const GeneratedWorkload &W,
                                                bool FlowSensitive) {
  auto Start = std::chrono::steady_clock::now();
  Table1Row Row;
  Row.Lines = W.Lines;

  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  auto Prog = prepare(W, {"nonnull"}, Quals, Diags);
  if (!Prog)
    return Row;

  TargetFacts Facts(*Prog);
  FixpointOutcome Out = runFixpoint(
      *Prog, Quals, "nonnull", /*CastFallback=*/true,
      [&](const AnnotTarget &T) {
        // A target may be annotated nonnull unless it is ever assigned
        // NULL (the lazily-built tables).
        return !Facts.assignedNull(T);
      },
      FlowSensitive);

  Row.Dereferences = Out.Final.Stats.DerefSites;
  Row.Annotations = Out.Annotations;
  Row.Casts = Out.Casts;
  Row.Errors = Out.Final.QualErrors;
  Row.Iterations = Out.Iterations;
  Row.InitialErrors = Out.InitialErrors;
  Row.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Row;
}

Table2Row stq::workloads::runUntaintedExperiment(const GeneratedWorkload &W) {
  auto Start = std::chrono::steady_clock::now();
  Table2Row Row;
  Row.Lines = W.Lines;
  Row.PrintfCalls = W.PrintfCalls;

  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  auto Prog = prepare(W, {"tainted", "untainted"}, Quals, Diags);
  if (!Prog)
    return Row;

  TargetFacts Facts(*Prog);
  FixpointOutcome Out = runFixpoint(
      *Prog, Quals, "untainted", /*CastFallback=*/false,
      [&](const AnnotTarget &T) {
        // Format parameters may be annotated: their call sites are then
        // checked. Locals/globals only if every assignment is a literal.
        if (T.K == AnnotTarget::Kind::Var && T.Var->IsParam)
          return true;
        return Facts.literalOnly(T);
      });

  Row.Annotations = Out.Annotations;
  Row.Casts = Out.Casts;
  Row.Errors = Out.Final.QualErrors;
  Row.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Row;
}

UniqueRow stq::workloads::runUniqueExperiment(const GeneratedWorkload &W) {
  auto Start = std::chrono::steady_clock::now();
  UniqueRow Row;
  Row.RefSites = W.UniqueRefSites;

  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  auto Prog = prepare(W, {"unique"}, Quals, Diags);
  if (!Prog)
    return Row;

  QualChecker Checker(*Prog, Quals, Diags, {});
  CheckResult Result = Checker.run();
  Row.Violations = Result.QualErrors;
  Row.Casts = Result.Stats.CastsToRefQualified;
  Row.Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Row;
}
