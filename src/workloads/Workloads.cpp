//===- Workloads.cpp ------------------------------------------------------===//

#include "workloads/Workloads.h"

#include <sstream>

using namespace stq;
using namespace stq::workloads;

unsigned stq::workloads::countLines(const std::string &Source) {
  unsigned N = 0;
  bool Blank = true;
  for (char C : Source) {
    if (C == '\n') {
      if (!Blank)
        ++N;
      Blank = true;
    } else if (C != ' ' && C != '\t') {
      Blank = false;
    }
  }
  if (!Blank)
    ++N;
  return N;
}

namespace {

/// Names for the dfa struct's fields.
const char *IntFields[] = {"nstates",  "ntokens", "depth",     "tindex",
                           "nleaves",  "nregexps", "searchflag", "trcount"};
const char *StableFields[] = {"success",  "newlines", "charclasses",
                              "states",   "follows",  "positions"};
const char *NullableFields[] = {"trans", "realtrans", "fails", "musts"};

} // namespace

//===----------------------------------------------------------------------===//
// grep dfa.c analogue (Table 1)
//===----------------------------------------------------------------------===//

GeneratedWorkload stq::workloads::makeGrepDfa(unsigned Scale) {
  std::ostringstream OS;
  OS << "// Synthetic analogue of grep 2.5's dfa.c for the nonnull\n"
        "// experiment (Table 1). Structure: a DFA with transition tables,\n"
        "// analyzers that walk them, and NULL-guarded lazy tables that\n"
        "// defeat a flow-insensitive qualifier system (the paper's main\n"
        "// source of casts).\n";
  OS << "struct dfa {\n";
  for (const char *F : IntFields)
    OS << "  int " << F << ";\n";
  for (const char *F : StableFields)
    OS << "  int* " << F << ";\n";
  for (const char *F : NullableFields)
    OS << "  int* " << F << ";\n";
  OS << "  char* mustmatch;\n";
  OS << "};\n\n";

  unsigned Analyzers = 12 * Scale;
  unsigned Guarded = 25 * Scale;

  // Analyzer functions: heavy dereferencing of the dfa and of a caller
  // supplied buffer.
  for (unsigned K = 0; K < Analyzers; ++K) {
    OS << "int dfa_analyze_" << K << "(struct dfa* d, int* buf, int n) {\n";
    OS << "  int acc = 0;\n";
    OS << "  int limit = n;\n";
    OS << "  if (limit > 64) limit = 64;\n";
    // Integer field dereferences.
    for (unsigned I = 0; I < 8; ++I)
      OS << "  acc = acc + d->" << IntFields[(K + I) % 8] << ";\n";
    // Stable-table dereferences.
    for (unsigned I = 0; I < 4; ++I) {
      const char *F = StableFields[(K + I) % 6];
      OS << "  acc = acc + d->" << F << "[" << (I + 1) << "];\n";
      OS << "  acc = acc * 2 - d->" << F << "[0];\n";
    }
    // Buffer loop.
    OS << "  for (int i = 0; i < limit; i = i + 1) {\n";
    OS << "    buf[i] = acc + i;\n";
    OS << "    acc = acc + buf[i] % 7;\n";
    OS << "  }\n";
    // Pure arithmetic padding (the real dfa.c has long stretches of
    // state-machine logic between pointer accesses).
    OS << "  int tmp0 = acc * 3 + 1;\n";
    OS << "  int tmp1 = tmp0 - n;\n";
    OS << "  int tmp2 = tmp1 * tmp1;\n";
    OS << "  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }\n";
    OS << "  while (acc > 100000) { acc = acc / 2; }\n";
    // State-machine padding, mirroring dfa.c's long analysis routines.
    for (unsigned P = 0; P < 10; ++P) {
      OS << "  int st" << P << " = (acc + " << (P * 3 + 1) << ") % 251;\n";
      OS << "  if (st" << P << " > 125) { st" << P << " = 250 - st" << P
         << "; }\n";
      OS << "  acc = acc + st" << P << " * " << (P + 1) << ";\n";
      OS << "  acc = acc + d->" << IntFields[(K + P) % 8] << ";\n";
    }
    OS << "  acc = acc + d->" << IntFields[K % 8] << " * 2;\n";
    OS << "  acc = acc + d->" << StableFields[K % 6] << "[2];\n";
    OS << "  return acc;\n";
    OS << "}\n\n";
  }

  // Guarded lookups: the flow-insensitivity idiom. Each function reads two
  // lazily-built (nullable) tables behind NULL checks.
  for (unsigned K = 0; K < Guarded; ++K) {
    const char *F1 = NullableFields[K % 4];
    const char *F2 = NullableFields[(K + 1) % 4];
    OS << "int dfa_lookup_" << K << "(struct dfa* d, int works) {\n";
    OS << "  int* t;\n";
    OS << "  int* u;\n";
    OS << "  int acc = d->" << IntFields[K % 8] << ";\n";
    OS << "  t = d->" << F1 << ";\n";
    OS << "  if (t != NULL) {\n";
    OS << "    acc = acc + t[works];\n";
    OS << "    acc = acc + t[works + 1];\n";
    OS << "    acc = acc - t[0];\n";
    OS << "  }\n";
    OS << "  u = d->" << F2 << ";\n";
    OS << "  if (u != NULL) {\n";
    OS << "    acc = acc + u[works % 8];\n";
    OS << "    acc = acc + u[1] * 2;\n";
    OS << "  }\n";
    OS << "  acc = acc + d->" << IntFields[(K + 3) % 8] << ";\n";
    for (unsigned P = 0; P < 6; ++P) {
      OS << "  int h" << P << " = acc * " << (P + 2) << " % 8191;\n";
      OS << "  if (h" << P << " % 2 == 0) { acc = acc + h" << P
         << "; } else { acc = acc - h" << P << " / 3; }\n";
      OS << "  acc = acc + d->" << IntFields[(K + P) % 8] << " % 31;\n";
    }
    OS << "  int scaled = acc * 5 % 9973;\n";
    OS << "  if (scaled < 0) scaled = -scaled;\n";
    OS << "  return scaled;\n";
    OS << "}\n\n";
  }

  // Builder: allocates the stable tables (casts in the annotated fixpoint:
  // malloc may return NULL) and leaves the lazy tables NULL.
  OS << "void dfa_build(struct dfa* d, int n) {\n";
  for (const char *F : StableFields)
    OS << "  d->" << F << " = (int*) malloc(sizeof(int) * n);\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = NULL;\n";
  OS << "  d->nstates = n;\n";
  OS << "  d->ntokens = n * 2;\n";
  OS << "  for (int i = 0; i < n; i = i + 1) {\n";
  for (const char *F : StableFields)
    OS << "    d->" << F << "[i] = i;\n";
  OS << "  }\n";
  OS << "}\n\n";

  // Lazy-table materializer and reset.
  OS << "void dfa_materialize(struct dfa* d, int n) {\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = (int*) malloc(sizeof(int) * n);\n";
  OS << "  for (int i = 0; i < n; i = i + 1) {\n";
  for (const char *F : NullableFields)
    OS << "    d->" << F << "[i] = i % 3;\n";
  OS << "  }\n";
  OS << "}\n\n";
  OS << "void dfa_reset(struct dfa* d) {\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = NULL;\n";
  OS << "  d->trcount = 0;\n";
  OS << "}\n\n";

  // Driver main.
  OS << "int main() {\n";
  OS << "  struct dfa* d = (struct dfa*) malloc(sizeof(struct dfa));\n";
  OS << "  int* scratch = (int*) malloc(sizeof(int) * 64);\n";
  OS << "  dfa_build(d, 64);\n";
  OS << "  dfa_materialize(d, 64);\n";
  OS << "  int total = 0;\n";
  for (unsigned K = 0; K < Analyzers; ++K)
    OS << "  total = total + dfa_analyze_" << K << "(d, scratch, 64);\n";
  for (unsigned K = 0; K < Guarded; ++K)
    OS << "  total = total + dfa_lookup_" << K << "(d, " << (K % 8) << ");\n";
  OS << "  dfa_reset(d);\n";
  OS << "  return total % 256;\n";
  OS << "}\n";

  GeneratedWorkload W;
  W.Name = "grep-dfa";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

//===----------------------------------------------------------------------===//
// grep unique experiment (section 6.2)
//===----------------------------------------------------------------------===//

namespace {

GeneratedWorkload makeGrepUniqueImpl(bool Violating) {
  std::ostringstream OS;
  unsigned RefSites = 0;
  OS << "// Section 6.2: the dfa global is the sole reference to the DFA\n"
        "// being built. All subsequent uses dereference it, preserving\n"
        "// uniqueness.\n";
  OS << "struct dfa {\n  int nstates;\n  int ntokens;\n  int* trans;\n"
        "  int* fails;\n};\n\n";
  OS << "struct dfa* parser_result();\n\n";
  if (Violating)
    OS << "void external_use(struct dfa* d);\n\n";
  OS << "struct dfa* unique dfa;\n\n";
  // Initialization needs a cast: the assign rules cannot validate a value
  // received from the parser module.
  OS << "void dfa_init() {\n"
        "  dfa = (struct dfa* unique) parser_result();\n"
        "}\n\n";
  // 49 subsequent references, spread over several procedures, mirroring
  // dfacomp/dfaexec/dfafree in grep.
  const unsigned PerFn[] = {12, 10, 9, 8, 6, 4};
  unsigned FnIdx = 0;
  for (unsigned Count : PerFn) {
    OS << "int dfa_use_" << FnIdx++ << "(int x) {\n";
    OS << "  int acc = x;\n";
    for (unsigned I = 0; I < Count; ++I) {
      switch (I % 4) {
      case 0:
        OS << "  acc = acc + dfa->nstates;\n";
        break;
      case 1:
        OS << "  acc = acc + dfa->ntokens;\n";
        break;
      case 2:
        OS << "  dfa->nstates = acc;\n";
        break;
      case 3:
        OS << "  dfa->ntokens = acc % 7;\n";
        break;
      }
      ++RefSites;
    }
    OS << "  return acc;\n}\n\n";
  }
  if (Violating) {
    OS << "void leak() {\n"
          "  external_use(dfa);\n" // Violates the disallow rule.
          "}\n\n";
  }
  OS << "int main() {\n  dfa_init();\n  int t = 0;\n";
  for (unsigned I = 0; I < FnIdx; ++I)
    OS << "  t = t + dfa_use_" << I << "(t);\n";
  if (Violating)
    OS << "  leak();\n";
  OS << "  return t % 100;\n}\n";

  GeneratedWorkload W;
  W.Name = Violating ? "grep-unique-violating" : "grep-unique";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.UniqueRefSites = RefSites;
  return W;
}

} // namespace

GeneratedWorkload stq::workloads::makeGrepDfaUnique() {
  return makeGrepUniqueImpl(/*Violating=*/false);
}

GeneratedWorkload stq::workloads::makeGrepDfaUniqueViolating() {
  return makeGrepUniqueImpl(/*Violating=*/true);
}

//===----------------------------------------------------------------------===//
// Taint workloads (Table 2)
//===----------------------------------------------------------------------===//

namespace {

/// Shared prelude: printf with the untainted format signature the paper
/// installs via alternate library headers.
const char *TaintPrelude =
    "int printf(char* untainted fmt, ...);\n"
    "struct dirent { char* d_name; int d_type; };\n"
    "struct session { int sock; int logged_in; char* user; };\n\n";

} // namespace

GeneratedWorkload stq::workloads::makeBftpd() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of bftpd 1.0.11: an FTP server whose\n"
        "// replies go through sendstrf; one directory-listing path uses a\n"
        "// file name as the format string (the real, previously reported\n"
        "// exploit).\n";
  OS << TaintPrelude;
  // The two wrappers whose format parameters the authors had to annotate.
  OS << "int sendstrf(int s, char* format, ...) {\n"
        "  printf(format);\n"
        "  return s;\n"
        "}\n\n";
  ++Calls;
  OS << "int bftpd_log(int level, char* fmt, ...) {\n"
        "  printf(fmt);\n"
        "  return level;\n"
        "}\n\n";
  ++Calls;

  const char *Replies[] = {
      "220 Service ready.",          "331 Password required for user.",
      "230 User logged in.",         "250 Requested action okay.",
      "425 Cannot open connection.", "226 Closing data connection.",
      "550 Permission denied.",      "221 Goodbye.",
      "200 Command okay.",           "502 Command not implemented.",
  };
  const char *Commands[] = {"user", "pass", "cwd",  "list", "retr",
                            "stor", "dele", "mkd",  "rmd",  "pwd",
                            "syst", "type", "port", "pasv", "quit",
                            "noop", "abor", "rest", "rnfr", "rnto",
                            "site", "mdtm", "size", "appe", "stat",
                            "help"};
  unsigned Idx = 0;
  for (const char *Cmd : Commands) {
    OS << "void command_" << Cmd << "(struct session* s, char* arg) {\n";
    OS << "  if (s->logged_in == 0 && " << (Idx % 3) << " == 0) {\n";
    OS << "    sendstrf(s->sock, \"530 Not logged in.\");\n";
    ++Calls;
    OS << "    return;\n  }\n";
    OS << "  bftpd_log(1, \"handling " << Cmd << "\");\n";
    ++Calls;
    OS << "  sendstrf(s->sock, \"" << Replies[Idx % 10] << "\");\n";
    ++Calls;
    OS << "  if (arg != NULL) {\n";
    OS << "    bftpd_log(2, \"arg present\");\n";
    ++Calls;
    OS << "    sendstrf(s->sock, \"200 Noted.\");\n";
    ++Calls;
    OS << "  }\n";
    // Protocol bookkeeping padding.
    for (unsigned P = 0; P < 12; ++P) {
      OS << "  int c" << P << " = s->sock * " << (P + Idx + 1)
         << " % 199;\n";
      OS << "  if (c" << P << " > 99) { s->logged_in = s->logged_in + 0; "
            "}\n";
    }
    OS << "}\n\n";
    ++Idx;
  }
  // The exploitable path: entry->d_name flows into the format parameter.
  OS << "void command_list_entry(struct session* s, struct dirent* entry) {\n"
        "  sendstrf(s->sock, entry->d_name);\n"
        "}\n\n";
  ++Calls;
  OS << "int main() {\n"
        "  struct session* s = (struct session*) "
        "malloc(sizeof(struct session));\n"
        "  s->sock = 4;\n"
        "  s->logged_in = 1;\n"
        "  printf(\"bftpd starting\\n\");\n";
  ++Calls;
  OS << "  command_user(s, \"anonymous\");\n"
        "  command_quit(s, NULL);\n"
        "  return 0;\n"
        "}\n";

  GeneratedWorkload W;
  W.Name = "bftpd";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  W.PlantedBugs = 1;
  return W;
}

GeneratedWorkload stq::workloads::makeMingetty() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of mingetty 0.9.4: issue/login prompting on\n"
        "// a terminal; one logging wrapper needs its format parameter\n"
        "// annotated. No vulnerabilities.\n";
  OS << TaintPrelude;
  OS << "int log_msg(char* fmt, ...) {\n"
        "  printf(fmt);\n"
        "  return 0;\n"
        "}\n\n";
  ++Calls;
  const char *Steps[] = {"parse_args", "open_tty", "output_issue",
                         "read_login", "spawn_login"};
  unsigned Idx = 0;
  for (const char *Step : Steps) {
    OS << "int " << Step << "(int fd) {\n";
    OS << "  log_msg(\"" << Step << " begin\");\n";
    ++Calls;
    OS << "  if (fd < 0) {\n";
    OS << "    printf(\"%s: bad fd %d\\n\", \"" << Step << "\", fd);\n";
    ++Calls;
    OS << "    return -1;\n  }\n";
    OS << "  printf(\"step %d\\n\", " << Idx << ");\n";
    ++Calls;
    OS << "  log_msg(\"" << Step << " end\");\n";
    ++Calls;
    OS << "  int code = fd * " << (Idx + 2) << " % 17;\n";
    for (unsigned P = 0; P < 36; ++P) {
      OS << "  int m" << P << " = code + " << (P * 7 + Idx) << " % 13;\n";
      OS << "  if (m" << P << " % 3 == 0) { code = code + m" << P
         << " % 5; }\n";
    }
    OS << "  return code;\n";
    OS << "}\n\n";
    ++Idx;
  }
  OS << "int main() {\n"
        "  int fd = 1;\n"
        "  int rc = 0;\n"
        "  rc = rc + parse_args(fd);\n"
        "  rc = rc + open_tty(fd);\n"
        "  rc = rc + output_issue(fd);\n"
        "  rc = rc + read_login(fd);\n"
        "  rc = rc + spawn_login(fd);\n"
        "  printf(\"mingetty done rc=%d\\n\", rc);\n";
  ++Calls;
  OS << "  printf(\"tty ready\\n\");\n";
  ++Calls;
  OS << "  return rc % 2;\n"
        "}\n";

  GeneratedWorkload W;
  W.Name = "mingetty";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  return W;
}

GeneratedWorkload stq::workloads::makeIdentd() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of identd 1.0: a network identification\n"
        "// responder; every format string is a literal, so no annotations\n"
        "// or casts are needed at all.\n";
  OS << TaintPrelude;
  const char *Stages[] = {"parse_request", "lookup_connection",
                          "format_reply"};
  unsigned Idx = 0;
  for (const char *Stage : Stages) {
    OS << "int " << Stage << "(int port_a, int port_b) {\n";
    OS << "  printf(\"" << Stage << ": %d , %d\\n\", port_a, port_b);\n";
    ++Calls;
    OS << "  if (port_a <= 0 || port_b <= 0) {\n";
    OS << "    printf(\"%d , %d : ERROR : INVALID-PORT\\n\", port_a, "
          "port_b);\n";
    ++Calls;
    OS << "    return -1;\n  }\n";
    OS << "  if (port_a > 65535) {\n";
    OS << "    printf(\"range error %d\\n\", port_a);\n";
    ++Calls;
    OS << "    return -1;\n  }\n";
    OS << "  printf(\"" << Stage << " ok\\n\");\n";
    ++Calls;
    OS << "  int token = port_a * 31 + port_b + " << Idx << ";\n";
    for (unsigned P = 0; P < 24; ++P) {
      OS << "  int k" << P << " = token % " << (P + 2) << " + " << P
         << ";\n";
      OS << "  if (k" << P << " > 10) { token = token + k" << P
         << " % 7; }\n";
    }
    OS << "  printf(\"token %d\\n\", token);\n";
    ++Calls;
    OS << "  return token;\n";
    OS << "}\n\n";
    ++Idx;
  }
  OS << "int main() {\n"
        "  int t = 0;\n"
        "  t = t + parse_request(113, 1023);\n"
        "  t = t + lookup_connection(22, 4055);\n"
        "  t = t + format_reply(80, 51234);\n"
        "  printf(\"identd: %d , %d : USERID : UNIX : nobody\\n\", 113, "
        "1023);\n";
  ++Calls;
  OS << "  printf(\"done\\n\");\n";
  ++Calls;
  OS << "  printf(\"requests served: %d\\n\", 3);\n";
  ++Calls;
  OS << "  printf(\"shutting down\\n\");\n";
  ++Calls;
  OS << "  printf(\"bye\\n\");\n";
  ++Calls;
  OS << "  printf(\"exit code %d\\n\", t % 2);\n";
  ++Calls;
  OS << "  return t % 2;\n"
        "}\n";

  GeneratedWorkload W;
  W.Name = "identd";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  return W;
}

GeneratedWorkload stq::workloads::makeChecksumKernel(unsigned Rounds,
                                                     unsigned N) {
  if (Rounds == 0)
    Rounds = 1;
  if (N == 0)
    N = 1;
  std::ostringstream OS;
  // The first two casts cannot be discharged statically (i is a plain
  // int), so both engines evaluate those invariants on every iteration;
  // the last two are entailed by the operand's static qualifiers (pos
  // implies nonzero, and step's own pos), so the elision pass removes
  // them while the interpreter — and a VM run without elision — still
  // pays for them. The divisions keep trap checks on the hot path too.
  OS << "int work(int pos n) {\n"
     << "  int acc = 0;\n"
     << "  for (int i = 1; i <= n; i = i + 1) {\n"
     << "    int pos step = (int pos) i;\n"
     << "    int nonzero d = (int nonzero) (2 * i);\n"
     << "    int nonzero e = (int nonzero) step;\n"
     << "    int pos f = (int pos) step;\n"
     << "    acc = acc + step * 3 - i / 2 + acc / d + e - f;\n"
     << "  }\n"
     << "  return acc;\n"
     << "}\n"
     << "int main() {\n"
     << "  int total = 0;\n"
     << "  for (int r = 0; r < " << Rounds << "; r = r + 1) {\n"
     << "    total = total + work(" << N << ");\n"
     << "  }\n"
     << "  return total % 251;\n"
     << "}\n";

  GeneratedWorkload W;
  W.Name = "checksum-kernel";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

GeneratedWorkload stq::workloads::makeInferenceFarm(unsigned Functions) {
  if (Functions == 0)
    Functions = 1;
  std::ostringstream OS;
  // Every local is deliberately unannotated; the bodies keep stable
  // sign/zero facts (p,q,r positive; n,m negative) so the value-qualifier
  // engines have a large fixpoint to find, and the call chain feeds
  // positive arguments into the previous function's parameters so
  // constraints cross generation-unit boundaries.
  for (unsigned I = 0; I < Functions; ++I) {
    OS << "int farm" << I << "(int a, int b) {\n"
       << "  int p = " << (I % 9 + 1) << ";\n"
       << "  int q = p * " << (I % 5 + 2) << ";\n"
       << "  int r = q + p;\n"
       << "  int n = 0 - " << (I % 7 + 1) << ";\n"
       << "  int m = n - r;\n"
       << "  int z = a - b;\n"
       << "  p = r;\n"
       << "  q = q * r;\n"
       << "  m = m + n;\n";
    if (I > 0)
      OS << "  z = z + farm" << (I - 1) << "(p, q);\n";
    OS << "  return z + m;\n"
       << "}\n";
  }
  OS << "int main() {\n"
     << "  int acc = farm" << (Functions - 1) << "(3, 4);\n"
     << "  return acc % 2;\n"
     << "}\n";

  GeneratedWorkload W;
  W.Name = "inference-farm";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

//===----------------------------------------------------------------------===//
// Multi-TU farm (real-C front-end workload)
//===----------------------------------------------------------------------===//

MultiTuProgram stq::workloads::makeMultiTuFarm(unsigned Units,
                                               unsigned FnsPerUnit,
                                               unsigned Seed) {
  if (Units == 0)
    Units = 1;
  if (FnsPerUnit == 0)
    FnsPerUnit = 1;
  MultiTuProgram P;

  // The shared header: an include guard and a macro the bodies use (so
  // every TU exercises conditionals and expansion), plus the cross-TU
  // prototypes the roots call through.
  std::ostringstream H;
  H << "#ifndef FARM_H\n#define FARM_H\n"
    << "#define FARM_BIAS " << (Seed % 7 + 1) << "\n"
    << "#define FARM_SQ(x) ((x) * (x))\n";
  for (unsigned U = 0; U < Units; ++U)
    H << "int pos u" << U << "_root(int pos a);\n";
  H << "#endif\n";
  P.Headers.push_back({"farm.h", H.str()});

  // One chain of qualifier-heavy functions per unit; the root feeds the
  // previous unit's root so link-time prototypes are load-bearing.
  for (unsigned U = 0; U < Units; ++U) {
    std::ostringstream OS;
    OS << "#include \"farm.h\"\n";
    bool Plant = Seed % 3 == 0 && U == Seed % Units;
    for (unsigned F = 0; F < FnsPerUnit; ++F) {
      unsigned K = (Seed + U * 131 + F * 17) % 1000 + 1;
      OS << "int pos u" << U << "_f" << F << "(int pos a) {\n"
         << "  int pos p = " << K << " + FARM_BIAS;\n"
         << "  int pos q = FARM_SQ(p) + a;\n"
         << "  int pos r = q * p + " << (K % 9 + 1) << ";\n";
      if (Plant && F == FnsPerUnit / 2)
        // An initialization the checker cannot derive: the planted
        // diagnostic differential runs must agree on.
        OS << "  int neg bad = r;\n"
           << "  int keep = bad + 0;\n";
      if (F > 0)
        OS << "  return u" << U << "_f" << (F - 1) << "(r) + p;\n";
      else
        OS << "  return r + p;\n";
      OS << "}\n";
    }
    OS << "int pos u" << U << "_root(int pos a) {\n"
       << "  int pos t = u" << U << "_f" << (FnsPerUnit - 1) << "(a);\n";
    if (U > 0)
      OS << "  return u" << (U - 1) << "_root(t);\n";
    else
      OS << "  return t;\n";
    OS << "}\n";
    P.Units.push_back({"u" + std::to_string(U) + ".c", OS.str()});
    if (Plant)
      ++P.PlantedWarnings;
  }

  std::ostringstream M;
  M << "#include \"farm.h\"\n"
    << "int main() {\n"
    << "  int pos seed = " << (Seed % 11 + 1) << ";\n"
    << "  int pos acc = u" << (Units - 1) << "_root(seed);\n"
    << "  return acc % 2;\n"
    << "}\n";
  P.Units.push_back({"main.c", M.str()});

  // Flatten: header text once, then each unit minus its #include lines.
  // The split program and this single TU must check to identical verdict
  // counters (the frontend oracle's invariant).
  std::ostringstream Flat;
  for (const MultiTuProgram::File &Hdr : P.Headers)
    Flat << Hdr.Text;
  for (const MultiTuProgram::File &U : P.Units) {
    std::istringstream In(U.Text);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t At = Line.find_first_not_of(" \t");
      if (At != std::string::npos && Line.compare(At, 8, "#include") == 0)
        continue;
      Flat << Line << "\n";
    }
  }
  P.Flattened = Flat.str();

  for (const MultiTuProgram::File &Hdr : P.Headers)
    P.Lines += countLines(Hdr.Text);
  for (const MultiTuProgram::File &U : P.Units)
    P.Lines += countLines(U.Text);
  return P;
}
