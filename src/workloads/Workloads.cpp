//===- Workloads.cpp ------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "qual/Builtins.h"

#include <sstream>

using namespace stq;
using namespace stq::workloads;

unsigned stq::workloads::countLines(const std::string &Source) {
  unsigned N = 0;
  bool Blank = true;
  for (char C : Source) {
    if (C == '\n') {
      if (!Blank)
        ++N;
      Blank = true;
    } else if (C != ' ' && C != '\t') {
      Blank = false;
    }
  }
  if (!Blank)
    ++N;
  return N;
}

namespace {

/// Names for the dfa struct's fields.
const char *IntFields[] = {"nstates",  "ntokens", "depth",     "tindex",
                           "nleaves",  "nregexps", "searchflag", "trcount"};
const char *StableFields[] = {"success",  "newlines", "charclasses",
                              "states",   "follows",  "positions"};
const char *NullableFields[] = {"trans", "realtrans", "fails", "musts"};

/// Rebuilds Flattened and Lines from Headers and Units: every header's
/// text (in order, minus #include lines — corpus headers include each
/// other), then every unit's text minus its #include lines. The split
/// program and the flattened TU must check to identical verdict counters
/// (the frontend oracle's invariant).
void flattenAndCount(MultiTuProgram &P) {
  std::ostringstream Flat;
  auto StripInto = [&Flat](const std::string &Text) {
    std::istringstream In(Text);
    std::string Line;
    while (std::getline(In, Line)) {
      size_t At = Line.find_first_not_of(" \t");
      if (At != std::string::npos && Line.compare(At, 8, "#include") == 0)
        continue;
      Flat << Line << "\n";
    }
  };
  for (const MultiTuProgram::File &Hdr : P.Headers)
    StripInto(Hdr.Text);
  for (const MultiTuProgram::File &U : P.Units)
    StripInto(U.Text);
  P.Flattened = Flat.str();

  P.Lines = 0;
  for (const MultiTuProgram::File &Hdr : P.Headers)
    P.Lines += countLines(Hdr.Text);
  for (const MultiTuProgram::File &U : P.Units)
    P.Lines += countLines(U.Text);
}

//===----------------------------------------------------------------------===//
// grep dfa.c emission, shared by the legacy single TU and the §6 corpus
//===----------------------------------------------------------------------===//

/// Styles the dfa emission: the legacy transcription is unannotated (the
/// fixpoint adds qualifiers in memory), the corpus is the post-fixpoint
/// annotated form with the table bound spelled through a macro.
struct DfaStyle {
  bool Annotated = false;
  /// The table-size token (literal "64" legacy, "DFA_TABLEN" corpus).
  std::string Lim = "64";
  /// The ntokens initializer ("n * 2" legacy, "DFA_NSTATES(n)" corpus).
  std::string NTokens = "n * 2";
};

const char *dfaQ(const DfaStyle &St) { return St.Annotated ? " nonnull" : ""; }

void emitDfaStruct(std::ostream &OS, const DfaStyle &St) {
  OS << "struct dfa {\n";
  for (const char *F : IntFields)
    OS << "  int " << F << ";\n";
  for (const char *F : StableFields)
    OS << "  int*" << dfaQ(St) << " " << F << ";\n";
  for (const char *F : NullableFields)
    OS << "  int* " << F << ";\n";
  OS << "  char* mustmatch;\n";
  OS << "};\n\n";
}

std::string dfaAnalyzeSig(unsigned K, const DfaStyle &St) {
  std::ostringstream S;
  S << "int dfa_analyze_" << K << "(struct dfa*" << dfaQ(St) << " d, int*"
    << dfaQ(St) << " buf, int n)";
  return S.str();
}

std::string dfaLookupSig(unsigned K, const DfaStyle &St) {
  std::ostringstream S;
  S << "int dfa_lookup_" << K << "(struct dfa*" << dfaQ(St) << " d, int works)";
  return S.str();
}

std::string dfaBuildSig(const DfaStyle &St) {
  return std::string("void dfa_build(struct dfa*") + dfaQ(St) + " d, int n)";
}

std::string dfaMaterializeSig(const DfaStyle &St) {
  return std::string("void dfa_materialize(struct dfa*") + dfaQ(St) +
         " d, int n)";
}

std::string dfaResetSig(const DfaStyle &St) {
  return std::string("void dfa_reset(struct dfa*") + dfaQ(St) + " d)";
}

/// Analyzer functions: heavy dereferencing of the dfa and of a caller
/// supplied buffer.
void emitDfaAnalyzer(std::ostream &OS, unsigned K, const DfaStyle &St) {
  OS << dfaAnalyzeSig(K, St) << " {\n";
  OS << "  int acc = 0;\n";
  OS << "  int limit = n;\n";
  OS << "  if (limit > " << St.Lim << ") limit = " << St.Lim << ";\n";
  // Integer field dereferences.
  for (unsigned I = 0; I < 8; ++I)
    OS << "  acc = acc + d->" << IntFields[(K + I) % 8] << ";\n";
  // Stable-table dereferences.
  for (unsigned I = 0; I < 4; ++I) {
    const char *F = StableFields[(K + I) % 6];
    OS << "  acc = acc + d->" << F << "[" << (I + 1) << "];\n";
    OS << "  acc = acc * 2 - d->" << F << "[0];\n";
  }
  // Buffer loop.
  OS << "  for (int i = 0; i < limit; i = i + 1) {\n";
  OS << "    buf[i] = acc + i;\n";
  OS << "    acc = acc + buf[i] % 7;\n";
  OS << "  }\n";
  // Pure arithmetic padding (the real dfa.c has long stretches of
  // state-machine logic between pointer accesses).
  OS << "  int tmp0 = acc * 3 + 1;\n";
  OS << "  int tmp1 = tmp0 - n;\n";
  OS << "  int tmp2 = tmp1 * tmp1;\n";
  OS << "  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }\n";
  OS << "  while (acc > 100000) { acc = acc / 2; }\n";
  // State-machine padding, mirroring dfa.c's long analysis routines.
  for (unsigned P = 0; P < 10; ++P) {
    OS << "  int st" << P << " = (acc + " << (P * 3 + 1) << ") % 251;\n";
    OS << "  if (st" << P << " > 125) { st" << P << " = 250 - st" << P
       << "; }\n";
    OS << "  acc = acc + st" << P << " * " << (P + 1) << ";\n";
    OS << "  acc = acc + d->" << IntFields[(K + P) % 8] << ";\n";
  }
  OS << "  acc = acc + d->" << IntFields[K % 8] << " * 2;\n";
  OS << "  acc = acc + d->" << StableFields[K % 6] << "[2];\n";
  OS << "  return acc;\n";
  OS << "}\n\n";
}

/// Guarded lookups: the flow-insensitivity idiom. Each function reads two
/// lazily-built (nullable) tables behind NULL checks; the annotated form
/// reads through a nonnull-cast alias inside each guard (the paper's main
/// source of casts — two per lookup).
void emitDfaLookup(std::ostream &OS, unsigned K, const DfaStyle &St) {
  const char *F1 = NullableFields[K % 4];
  const char *F2 = NullableFields[(K + 1) % 4];
  OS << dfaLookupSig(K, St) << " {\n";
  OS << "  int* t;\n";
  OS << "  int* u;\n";
  OS << "  int acc = d->" << IntFields[K % 8] << ";\n";
  OS << "  t = d->" << F1 << ";\n";
  OS << "  if (t != NULL) {\n";
  if (St.Annotated) {
    OS << "    int* nonnull tt = (int* nonnull)(t);\n";
    OS << "    acc = acc + tt[works];\n";
    OS << "    acc = acc + tt[works + 1];\n";
    OS << "    acc = acc - tt[0];\n";
  } else {
    OS << "    acc = acc + t[works];\n";
    OS << "    acc = acc + t[works + 1];\n";
    OS << "    acc = acc - t[0];\n";
  }
  OS << "  }\n";
  OS << "  u = d->" << F2 << ";\n";
  OS << "  if (u != NULL) {\n";
  if (St.Annotated) {
    OS << "    int* nonnull uu = (int* nonnull)(u);\n";
    OS << "    acc = acc + uu[works % 8];\n";
    OS << "    acc = acc + uu[1] * 2;\n";
  } else {
    OS << "    acc = acc + u[works % 8];\n";
    OS << "    acc = acc + u[1] * 2;\n";
  }
  OS << "  }\n";
  OS << "  acc = acc + d->" << IntFields[(K + 3) % 8] << ";\n";
  for (unsigned P = 0; P < 6; ++P) {
    OS << "  int h" << P << " = acc * " << (P + 2) << " % 8191;\n";
    OS << "  if (h" << P << " % 2 == 0) { acc = acc + h" << P
       << "; } else { acc = acc - h" << P << " / 3; }\n";
    OS << "  acc = acc + d->" << IntFields[(K + P) % 8] << " % 31;\n";
  }
  OS << "  int scaled = acc * 5 % 9973;\n";
  OS << "  if (scaled < 0) scaled = -scaled;\n";
  OS << "  return scaled;\n";
  OS << "}\n\n";
}

/// Builder: allocates the stable tables (casts in the annotated fixpoint:
/// malloc may return NULL) and leaves the lazy tables NULL.
void emitDfaBuild(std::ostream &OS, const DfaStyle &St) {
  const char *Cast = St.Annotated ? "(int* nonnull)" : "(int*)";
  OS << dfaBuildSig(St) << " {\n";
  for (const char *F : StableFields)
    OS << "  d->" << F << " = " << Cast << " malloc(sizeof(int) * n);\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = NULL;\n";
  OS << "  d->nstates = n;\n";
  OS << "  d->ntokens = " << St.NTokens << ";\n";
  OS << "  for (int i = 0; i < n; i = i + 1) {\n";
  for (const char *F : StableFields)
    OS << "    d->" << F << "[i] = i;\n";
  OS << "  }\n";
  OS << "}\n\n";
}

/// Lazy-table materializer: the annotated form writes through a per-site
/// nonnull cast (the tables stay nullable; only this writer may assume
/// the fresh allocation).
void emitDfaMaterialize(std::ostream &OS, const DfaStyle &St) {
  OS << dfaMaterializeSig(St) << " {\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = (int*) malloc(sizeof(int) * n);\n";
  OS << "  for (int i = 0; i < n; i = i + 1) {\n";
  for (const char *F : NullableFields) {
    if (St.Annotated)
      OS << "    ((int* nonnull)(d->" << F << "))[i] = i % 3;\n";
    else
      OS << "    d->" << F << "[i] = i % 3;\n";
  }
  OS << "  }\n";
  OS << "}\n\n";
}

void emitDfaReset(std::ostream &OS, const DfaStyle &St) {
  OS << dfaResetSig(St) << " {\n";
  for (const char *F : NullableFields)
    OS << "  d->" << F << " = NULL;\n";
  OS << "  d->trcount = 0;\n";
  OS << "}\n\n";
}

/// Driver main.
void emitDfaMain(std::ostream &OS, unsigned Analyzers, unsigned Guarded,
                 const DfaStyle &St) {
  OS << "int main() {\n";
  if (St.Annotated) {
    OS << "  struct dfa* nonnull d = (struct dfa* nonnull) "
          "malloc(sizeof(struct dfa));\n";
    OS << "  int* nonnull scratch = (int* nonnull) malloc(sizeof(int) * "
       << St.Lim << ");\n";
  } else {
    OS << "  struct dfa* d = (struct dfa*) malloc(sizeof(struct dfa));\n";
    OS << "  int* scratch = (int*) malloc(sizeof(int) * " << St.Lim << ");\n";
  }
  OS << "  dfa_build(d, " << St.Lim << ");\n";
  OS << "  dfa_materialize(d, " << St.Lim << ");\n";
  OS << "  int total = 0;\n";
  for (unsigned K = 0; K < Analyzers; ++K)
    OS << "  total = total + dfa_analyze_" << K << "(d, scratch, " << St.Lim
       << ");\n";
  for (unsigned K = 0; K < Guarded; ++K)
    OS << "  total = total + dfa_lookup_" << K << "(d, " << (K % 8) << ");\n";
  OS << "  dfa_reset(d);\n";
  OS << "  return total % 256;\n";
  OS << "}\n";
}

} // namespace

//===----------------------------------------------------------------------===//
// grep dfa.c analogue (Table 1)
//===----------------------------------------------------------------------===//

GeneratedWorkload stq::workloads::makeGrepDfa(unsigned Scale) {
  std::ostringstream OS;
  OS << "// Synthetic analogue of grep 2.5's dfa.c for the nonnull\n"
        "// experiment (Table 1). Structure: a DFA with transition tables,\n"
        "// analyzers that walk them, and NULL-guarded lazy tables that\n"
        "// defeat a flow-insensitive qualifier system (the paper's main\n"
        "// source of casts).\n";
  DfaStyle St;
  emitDfaStruct(OS, St);

  unsigned Analyzers = 12 * Scale;
  unsigned Guarded = 25 * Scale;

  for (unsigned K = 0; K < Analyzers; ++K)
    emitDfaAnalyzer(OS, K, St);
  for (unsigned K = 0; K < Guarded; ++K)
    emitDfaLookup(OS, K, St);
  emitDfaBuild(OS, St);
  emitDfaMaterialize(OS, St);
  emitDfaReset(OS, St);
  emitDfaMain(OS, Analyzers, Guarded, St);

  GeneratedWorkload W;
  W.Name = "grep-dfa";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

CorpusProgram stq::workloads::makeGrepDfaCorpus() {
  CorpusProgram C;
  C.Name = "grep-dfa";
  C.Kind = "table1";
  C.Quals = {"nonnull"};
  C.QualFile = qual::builtinQualifierSource("nonnull");
  C.Legacy = makeGrepDfa(1);
  C.ExpectedErrors = 0;

  DfaStyle St;
  St.Annotated = true;
  St.Lim = "DFA_TABLEN";
  St.NTokens = "DFA_NSTATES(n)";
  const unsigned Analyzers = 12;
  const unsigned Guarded = 25;

  std::ostringstream H;
  H << "// dfa.h — the DFA object and module interfaces of the grep 2.5\n"
       "// dfa.c analogue, in the post-fixpoint annotated form Table 1\n"
       "// reports: the always-valid tables and entry points carry\n"
       "// nonnull; the lazily-built tables stay plain.\n"
       "#ifndef DFA_H\n"
       "#define DFA_H\n"
       "\n"
       "#define DFA_TABLEN 64\n"
       "#define DFA_NSTATES(n) ((n) * 2)\n"
       "\n";
  emitDfaStruct(H, St);
  for (unsigned K = 0; K < Analyzers; ++K)
    H << dfaAnalyzeSig(K, St) << ";\n";
  for (unsigned K = 0; K < Guarded; ++K)
    H << dfaLookupSig(K, St) << ";\n";
  H << dfaBuildSig(St) << ";\n"
    << dfaMaterializeSig(St) << ";\n"
    << dfaResetSig(St) << ";\n"
    << "\n#endif\n";
  C.Prog.Headers.push_back({"include/dfa.h", H.str()});

  std::ostringstream A;
  A << "// dfa_analyze.c — analyzer passes: heavy dereferencing of the\n"
       "// DFA's always-valid tables and the caller's scratch buffer\n"
       "// (Table 1's dereference column).\n"
       "#include \"dfa.h\"\n"
       "\n";
  for (unsigned K = 0; K < Analyzers; ++K)
    emitDfaAnalyzer(A, K, St);
  C.Prog.Units.push_back({"dfa_analyze.c", A.str()});

  std::ostringstream L;
  L << "// dfa_lookup.c — lazily-built tables read behind NULL guards;\n"
       "// each guarded read goes through a nonnull-cast alias, the\n"
       "// paper's main source of casts under flow-insensitive checking.\n"
       "#include \"dfa.h\"\n"
       "\n";
  for (unsigned K = 0; K < Guarded; ++K)
    emitDfaLookup(L, K, St);
  C.Prog.Units.push_back({"dfa_lookup.c", L.str()});

  std::ostringstream B;
  B << "// dfa_build.c — table construction and reset: malloc results\n"
       "// enter nonnull fields through casts; the lazy tables are\n"
       "// materialized through per-site casts and reset to NULL.\n"
       "#include \"dfa.h\"\n"
       "\n";
  emitDfaBuild(B, St);
  emitDfaMaterialize(B, St);
  emitDfaReset(B, St);
  C.Prog.Units.push_back({"dfa_build.c", B.str()});

  std::ostringstream M;
  M << "// main.c — driver: builds the DFA, materializes the lazy\n"
       "// tables, and runs every analyzer and lookup.\n"
       "#include \"dfa.h\"\n"
       "\n";
  emitDfaMain(M, Analyzers, Guarded, St);
  C.Prog.Units.push_back({"main.c", M.str()});

  flattenAndCount(C.Prog);
  return C;
}

//===----------------------------------------------------------------------===//
// grep unique experiment (section 6.2)
//===----------------------------------------------------------------------===//

namespace {

GeneratedWorkload makeGrepUniqueImpl(bool Violating) {
  std::ostringstream OS;
  unsigned RefSites = 0;
  OS << "// Section 6.2: the dfa global is the sole reference to the DFA\n"
        "// being built. All subsequent uses dereference it, preserving\n"
        "// uniqueness.\n";
  OS << "struct dfa {\n  int nstates;\n  int ntokens;\n  int* trans;\n"
        "  int* fails;\n};\n\n";
  OS << "struct dfa* parser_result();\n\n";
  if (Violating)
    OS << "void external_use(struct dfa* d);\n\n";
  OS << "struct dfa* unique dfa;\n\n";
  // Initialization needs a cast: the assign rules cannot validate a value
  // received from the parser module.
  OS << "void dfa_init() {\n"
        "  dfa = (struct dfa* unique) parser_result();\n"
        "}\n\n";
  // 49 subsequent references, spread over several procedures, mirroring
  // dfacomp/dfaexec/dfafree in grep.
  const unsigned PerFn[] = {12, 10, 9, 8, 6, 4};
  unsigned FnIdx = 0;
  for (unsigned Count : PerFn) {
    OS << "int dfa_use_" << FnIdx++ << "(int x) {\n";
    OS << "  int acc = x;\n";
    for (unsigned I = 0; I < Count; ++I) {
      switch (I % 4) {
      case 0:
        OS << "  acc = acc + dfa->nstates;\n";
        break;
      case 1:
        OS << "  acc = acc + dfa->ntokens;\n";
        break;
      case 2:
        OS << "  dfa->nstates = acc;\n";
        break;
      case 3:
        OS << "  dfa->ntokens = acc % 7;\n";
        break;
      }
      ++RefSites;
    }
    OS << "  return acc;\n}\n\n";
  }
  if (Violating) {
    OS << "void leak() {\n"
          "  external_use(dfa);\n" // Violates the disallow rule.
          "}\n\n";
  }
  OS << "int main() {\n  dfa_init();\n  int t = 0;\n";
  for (unsigned I = 0; I < FnIdx; ++I)
    OS << "  t = t + dfa_use_" << I << "(t);\n";
  if (Violating)
    OS << "  leak();\n";
  OS << "  return t % 100;\n}\n";

  GeneratedWorkload W;
  W.Name = Violating ? "grep-unique-violating" : "grep-unique";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.UniqueRefSites = RefSites;
  return W;
}

} // namespace

GeneratedWorkload stq::workloads::makeGrepDfaUnique() {
  return makeGrepUniqueImpl(/*Violating=*/false);
}

GeneratedWorkload stq::workloads::makeGrepDfaUniqueViolating() {
  return makeGrepUniqueImpl(/*Violating=*/true);
}

//===----------------------------------------------------------------------===//
// Taint workloads (Table 2)
//===----------------------------------------------------------------------===//

namespace {

/// Shared prelude: printf with the untainted format signature the paper
/// installs via alternate library headers.
const char *TaintPrelude =
    "int printf(char* untainted fmt, ...);\n"
    "struct dirent { char* d_name; int d_type; };\n"
    "struct session { int sock; int logged_in; char* user; };\n\n";

/// The corpus form of the paper's alternate stdio header (under lib/, so
/// its annotation is library-supplied and excluded from the tables).
const char *corpusStdioHeader() {
  return "// stdio.h — the alternate library header the paper's harness\n"
         "// installs: printf demands an untainted format string.\n"
         "#ifndef STQ_STDIO_H\n"
         "#define STQ_STDIO_H\n"
         "\n"
         "int printf(char* untainted fmt, ...);\n"
         "\n"
         "#endif\n";
}

const char *BftpdReplies[] = {
    "220 Service ready.",          "331 Password required for user.",
    "230 User logged in.",         "250 Requested action okay.",
    "425 Cannot open connection.", "226 Closing data connection.",
    "550 Permission denied.",      "221 Goodbye.",
    "200 Command okay.",           "502 Command not implemented.",
};
const char *BftpdCommands[] = {"user", "pass", "cwd",  "list", "retr",
                               "stor", "dele", "mkd",  "rmd",  "pwd",
                               "syst", "type", "port", "pasv", "quit",
                               "noop", "abor", "rest", "rnfr", "rnto",
                               "site", "mdtm", "size", "appe", "stat",
                               "help"};

/// The two wrappers whose format parameters the authors had to annotate.
void emitBftpdWrappers(std::ostream &OS, bool Annotated, unsigned &Calls) {
  const char *Q = Annotated ? " untainted" : "";
  OS << "int sendstrf(int s, char*" << Q << " format, ...) {\n"
        "  printf(format);\n"
        "  return s;\n"
        "}\n\n";
  ++Calls;
  OS << "int bftpd_log(int level, char*" << Q << " fmt, ...) {\n"
        "  printf(fmt);\n"
        "  return level;\n"
        "}\n\n";
  ++Calls;
}

void emitBftpdCommands(std::ostream &OS, unsigned &Calls) {
  unsigned Idx = 0;
  for (const char *Cmd : BftpdCommands) {
    OS << "void command_" << Cmd << "(struct session* s, char* arg) {\n";
    OS << "  if (s->logged_in == 0 && " << (Idx % 3) << " == 0) {\n";
    OS << "    sendstrf(s->sock, \"530 Not logged in.\");\n";
    ++Calls;
    OS << "    return;\n  }\n";
    OS << "  bftpd_log(1, \"handling " << Cmd << "\");\n";
    ++Calls;
    OS << "  sendstrf(s->sock, \"" << BftpdReplies[Idx % 10] << "\");\n";
    ++Calls;
    OS << "  if (arg != NULL) {\n";
    OS << "    bftpd_log(2, \"arg present\");\n";
    ++Calls;
    OS << "    sendstrf(s->sock, \"200 Noted.\");\n";
    ++Calls;
    OS << "  }\n";
    // Protocol bookkeeping padding.
    for (unsigned P = 0; P < 12; ++P) {
      OS << "  int c" << P << " = s->sock * " << (P + Idx + 1)
         << " % 199;\n";
      OS << "  if (c" << P << " > 99) { s->logged_in = s->logged_in + 0; "
            "}\n";
    }
    OS << "}\n\n";
    ++Idx;
  }
}

/// The exploitable path: entry->d_name flows into the format parameter.
void emitBftpdListEntry(std::ostream &OS, unsigned &Calls) {
  OS << "void command_list_entry(struct session* s, struct dirent* entry) {\n"
        "  sendstrf(s->sock, entry->d_name);\n"
        "}\n\n";
  ++Calls;
}

void emitBftpdMain(std::ostream &OS, unsigned &Calls) {
  OS << "int main() {\n"
        "  struct session* s = (struct session*) "
        "malloc(sizeof(struct session));\n"
        "  s->sock = 4;\n"
        "  s->logged_in = 1;\n"
        "  printf(\"bftpd starting\\n\");\n";
  ++Calls;
  OS << "  command_user(s, \"anonymous\");\n"
        "  command_quit(s, NULL);\n"
        "  return 0;\n"
        "}\n";
}

const char *MingettySteps[] = {"parse_args", "open_tty", "output_issue",
                               "read_login", "spawn_login"};

void emitMingettyLog(std::ostream &OS, bool Annotated, unsigned &Calls) {
  const char *Q = Annotated ? " untainted" : "";
  OS << "int log_msg(char*" << Q << " fmt, ...) {\n"
        "  printf(fmt);\n"
        "  return 0;\n"
        "}\n\n";
  ++Calls;
}

void emitMingettyStep(std::ostream &OS, const char *Step, unsigned Idx,
                      unsigned &Calls) {
  OS << "int " << Step << "(int fd) {\n";
  OS << "  log_msg(\"" << Step << " begin\");\n";
  ++Calls;
  OS << "  if (fd < 0) {\n";
  OS << "    printf(\"%s: bad fd %d\\n\", \"" << Step << "\", fd);\n";
  ++Calls;
  OS << "    return -1;\n  }\n";
  OS << "  printf(\"step %d\\n\", " << Idx << ");\n";
  ++Calls;
  OS << "  log_msg(\"" << Step << " end\");\n";
  ++Calls;
  OS << "  int code = fd * " << (Idx + 2) << " % 17;\n";
  for (unsigned P = 0; P < 36; ++P) {
    OS << "  int m" << P << " = code + " << (P * 7 + Idx) << " % 13;\n";
    OS << "  if (m" << P << " % 3 == 0) { code = code + m" << P
       << " % 5; }\n";
  }
  OS << "  return code;\n";
  OS << "}\n\n";
}

void emitMingettyMain(std::ostream &OS, unsigned &Calls) {
  OS << "int main() {\n"
        "  int fd = 1;\n"
        "  int rc = 0;\n"
        "  rc = rc + parse_args(fd);\n"
        "  rc = rc + open_tty(fd);\n"
        "  rc = rc + output_issue(fd);\n"
        "  rc = rc + read_login(fd);\n"
        "  rc = rc + spawn_login(fd);\n"
        "  printf(\"mingetty done rc=%d\\n\", rc);\n";
  ++Calls;
  OS << "  printf(\"tty ready\\n\");\n";
  ++Calls;
  OS << "  return rc % 2;\n"
        "}\n";
}

const char *IdentdStages[] = {"parse_request", "lookup_connection",
                              "format_reply"};

void emitIdentdStage(std::ostream &OS, const char *Stage, unsigned Idx,
                     unsigned &Calls) {
  OS << "int " << Stage << "(int port_a, int port_b) {\n";
  OS << "  printf(\"" << Stage << ": %d , %d\\n\", port_a, port_b);\n";
  ++Calls;
  OS << "  if (port_a <= 0 || port_b <= 0) {\n";
  OS << "    printf(\"%d , %d : ERROR : INVALID-PORT\\n\", port_a, "
        "port_b);\n";
  ++Calls;
  OS << "    return -1;\n  }\n";
  OS << "  if (port_a > 65535) {\n";
  OS << "    printf(\"range error %d\\n\", port_a);\n";
  ++Calls;
  OS << "    return -1;\n  }\n";
  OS << "  printf(\"" << Stage << " ok\\n\");\n";
  ++Calls;
  OS << "  int token = port_a * 31 + port_b + " << Idx << ";\n";
  for (unsigned P = 0; P < 24; ++P) {
    OS << "  int k" << P << " = token % " << (P + 2) << " + " << P
       << ";\n";
    OS << "  if (k" << P << " > 10) { token = token + k" << P
       << " % 7; }\n";
  }
  OS << "  printf(\"token %d\\n\", token);\n";
  ++Calls;
  OS << "  return token;\n";
  OS << "}\n\n";
}

void emitIdentdMain(std::ostream &OS, unsigned &Calls) {
  OS << "int main() {\n"
        "  int t = 0;\n"
        "  t = t + parse_request(113, 1023);\n"
        "  t = t + lookup_connection(22, 4055);\n"
        "  t = t + format_reply(80, 51234);\n"
        "  printf(\"identd: %d , %d : USERID : UNIX : nobody\\n\", 113, "
        "1023);\n";
  ++Calls;
  OS << "  printf(\"done\\n\");\n";
  ++Calls;
  OS << "  printf(\"requests served: %d\\n\", 3);\n";
  ++Calls;
  OS << "  printf(\"shutting down\\n\");\n";
  ++Calls;
  OS << "  printf(\"bye\\n\");\n";
  ++Calls;
  OS << "  printf(\"exit code %d\\n\", t % 2);\n";
  ++Calls;
  OS << "  return t % 2;\n"
        "}\n";
}

/// The taint corpora share their qualfile: untainted plus its dual.
std::string taintQualFile() {
  return qual::builtinQualifierSource("tainted") +
         qual::builtinQualifierSource("untainted");
}

} // namespace

GeneratedWorkload stq::workloads::makeBftpd() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of bftpd 1.0.11: an FTP server whose\n"
        "// replies go through sendstrf; one directory-listing path uses a\n"
        "// file name as the format string (the real, previously reported\n"
        "// exploit).\n";
  OS << TaintPrelude;
  emitBftpdWrappers(OS, /*Annotated=*/false, Calls);
  emitBftpdCommands(OS, Calls);
  emitBftpdListEntry(OS, Calls);
  emitBftpdMain(OS, Calls);

  GeneratedWorkload W;
  W.Name = "bftpd";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  W.PlantedBugs = 1;
  return W;
}

CorpusProgram stq::workloads::makeBftpdCorpus() {
  CorpusProgram C;
  C.Name = "bftpd";
  C.Kind = "table2";
  C.Quals = {"tainted", "untainted"};
  C.QualFile = taintQualFile();
  C.Legacy = makeBftpd();
  C.ExpectedErrors = 1; // The real directory-listing format-string hole.

  C.Prog.Headers.push_back({"lib/stdio.h", corpusStdioHeader()});
  C.Prog.Headers.push_back(
      {"lib/dirent.h",
       "// dirent.h — directory entries; d_name is attacker-controlled.\n"
       "#ifndef STQ_DIRENT_H\n"
       "#define STQ_DIRENT_H\n"
       "\n"
       "struct dirent { char* d_name; int d_type; };\n"
       "\n"
       "#endif\n"});

  std::ostringstream H;
  H << "// bftpd.h — session state and the reply/logging interfaces\n"
       "// whose format parameters §6.1's fixpoint annotates untainted.\n"
       "#ifndef BFTPD_H\n"
       "#define BFTPD_H\n"
       "\n"
       "#include \"dirent.h\"\n"
       "\n"
       "struct session { int sock; int logged_in; char* user; };\n"
       "\n"
       "int sendstrf(int s, char* untainted format, ...);\n"
       "int bftpd_log(int level, char* untainted fmt, ...);\n";
  for (const char *Cmd : BftpdCommands)
    H << "void command_" << Cmd << "(struct session* s, char* arg);\n";
  H << "void command_list_entry(struct session* s, struct dirent* entry);\n"
       "\n"
       "#endif\n";
  C.Prog.Headers.push_back({"include/bftpd.h", H.str()});

  unsigned Calls = 0;
  std::ostringstream Log;
  Log << "// log.c — the reply and logging wrappers; their format\n"
         "// parameters are the program's two annotations.\n"
         "#include \"stdio.h\"\n"
         "#include \"bftpd.h\"\n"
         "\n";
  emitBftpdWrappers(Log, /*Annotated=*/true, Calls);
  C.Prog.Units.push_back({"log.c", Log.str()});

  std::ostringstream Cmds;
  Cmds << "// commands.c — the FTP command handlers; every reply format\n"
          "// is a string literal, so none needs annotation.\n"
          "#include \"bftpd.h\"\n"
          "\n";
  emitBftpdCommands(Cmds, Calls);
  C.Prog.Units.push_back({"commands.c", Cmds.str()});

  std::ostringstream List;
  List << "// list.c — directory listing: entry->d_name flows into the\n"
          "// format parameter (the real, previously reported exploit).\n"
          "#include \"bftpd.h\"\n"
          "\n";
  emitBftpdListEntry(List, Calls);
  C.Prog.Units.push_back({"list.c", List.str()});

  std::ostringstream M;
  M << "// main.c — server driver.\n"
       "#include \"stdio.h\"\n"
       "#include \"bftpd.h\"\n"
       "\n";
  emitBftpdMain(M, Calls);
  C.Prog.Units.push_back({"main.c", M.str()});

  flattenAndCount(C.Prog);
  return C;
}

GeneratedWorkload stq::workloads::makeMingetty() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of mingetty 0.9.4: issue/login prompting on\n"
        "// a terminal; one logging wrapper needs its format parameter\n"
        "// annotated. No vulnerabilities.\n";
  OS << TaintPrelude;
  emitMingettyLog(OS, /*Annotated=*/false, Calls);
  unsigned Idx = 0;
  for (const char *Step : MingettySteps)
    emitMingettyStep(OS, Step, Idx++, Calls);
  emitMingettyMain(OS, Calls);

  GeneratedWorkload W;
  W.Name = "mingetty";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  return W;
}

CorpusProgram stq::workloads::makeMingettyCorpus() {
  CorpusProgram C;
  C.Name = "mingetty";
  C.Kind = "table2";
  C.Quals = {"tainted", "untainted"};
  C.QualFile = taintQualFile();
  C.Legacy = makeMingetty();
  C.ExpectedErrors = 0;

  C.Prog.Headers.push_back({"lib/stdio.h", corpusStdioHeader()});

  std::ostringstream H;
  H << "// mingetty.h — step interfaces; the logging wrapper's format\n"
       "// parameter is the program's single annotation.\n"
       "#ifndef MINGETTY_H\n"
       "#define MINGETTY_H\n"
       "\n"
       "int log_msg(char* untainted fmt, ...);\n";
  for (const char *Step : MingettySteps)
    H << "int " << Step << "(int fd);\n";
  H << "\n#endif\n";
  C.Prog.Headers.push_back({"include/mingetty.h", H.str()});

  unsigned Calls = 0;
  std::ostringstream Log;
  Log << "// log.c — the logging wrapper.\n"
         "#include \"stdio.h\"\n"
         "#include \"mingetty.h\"\n"
         "\n";
  emitMingettyLog(Log, /*Annotated=*/true, Calls);
  C.Prog.Units.push_back({"log.c", Log.str()});

  std::ostringstream G;
  G << "// getty.c — the five getty steps; all formats are literals.\n"
       "#include \"stdio.h\"\n"
       "#include \"mingetty.h\"\n"
       "\n";
  unsigned Idx = 0;
  for (const char *Step : MingettySteps)
    emitMingettyStep(G, Step, Idx++, Calls);
  C.Prog.Units.push_back({"getty.c", G.str()});

  std::ostringstream M;
  M << "// main.c — runs the steps in order.\n"
       "#include \"stdio.h\"\n"
       "#include \"mingetty.h\"\n"
       "\n";
  emitMingettyMain(M, Calls);
  C.Prog.Units.push_back({"main.c", M.str()});

  flattenAndCount(C.Prog);
  return C;
}

GeneratedWorkload stq::workloads::makeIdentd() {
  std::ostringstream OS;
  unsigned Calls = 0;
  OS << "// Synthetic analogue of identd 1.0: a network identification\n"
        "// responder; every format string is a literal, so no annotations\n"
        "// or casts are needed at all.\n";
  OS << TaintPrelude;
  unsigned Idx = 0;
  for (const char *Stage : IdentdStages)
    emitIdentdStage(OS, Stage, Idx++, Calls);
  emitIdentdMain(OS, Calls);

  GeneratedWorkload W;
  W.Name = "identd";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  W.PrintfCalls = Calls;
  return W;
}

CorpusProgram stq::workloads::makeIdentdCorpus() {
  CorpusProgram C;
  C.Name = "identd";
  C.Kind = "table2";
  C.Quals = {"tainted", "untainted"};
  C.QualFile = taintQualFile();
  C.Legacy = makeIdentd();
  C.ExpectedErrors = 0;

  C.Prog.Headers.push_back({"lib/stdio.h", corpusStdioHeader()});

  std::ostringstream H;
  H << "// identd.h — the three protocol stages; every format string in\n"
       "// the program is a literal, so nothing needs annotation.\n"
       "#ifndef IDENTD_H\n"
       "#define IDENTD_H\n"
       "\n";
  for (const char *Stage : IdentdStages)
    H << "int " << Stage << "(int port_a, int port_b);\n";
  H << "\n#endif\n";
  C.Prog.Headers.push_back({"include/identd.h", H.str()});

  unsigned Calls = 0;
  std::ostringstream Req;
  Req << "// request.c — request parsing and connection lookup.\n"
         "#include \"stdio.h\"\n"
         "#include \"identd.h\"\n"
         "\n";
  emitIdentdStage(Req, IdentdStages[0], 0, Calls);
  emitIdentdStage(Req, IdentdStages[1], 1, Calls);
  C.Prog.Units.push_back({"request.c", Req.str()});

  std::ostringstream Rep;
  Rep << "// reply.c — reply formatting.\n"
         "#include \"stdio.h\"\n"
         "#include \"identd.h\"\n"
         "\n";
  emitIdentdStage(Rep, IdentdStages[2], 2, Calls);
  C.Prog.Units.push_back({"reply.c", Rep.str()});

  std::ostringstream M;
  M << "// main.c — serves three requests and shuts down.\n"
       "#include \"stdio.h\"\n"
       "#include \"identd.h\"\n"
       "\n";
  emitIdentdMain(M, Calls);
  C.Prog.Units.push_back({"main.c", M.str()});

  flattenAndCount(C.Prog);
  return C;
}

std::vector<CorpusProgram> stq::workloads::makeAllCorpora() {
  std::vector<CorpusProgram> All;
  All.push_back(makeGrepDfaCorpus());
  All.push_back(makeBftpdCorpus());
  All.push_back(makeMingettyCorpus());
  All.push_back(makeIdentdCorpus());
  return All;
}

GeneratedWorkload stq::workloads::makeChecksumKernel(unsigned Rounds,
                                                     unsigned N) {
  if (Rounds == 0)
    Rounds = 1;
  if (N == 0)
    N = 1;
  std::ostringstream OS;
  // The first two casts cannot be discharged statically (i is a plain
  // int), so both engines evaluate those invariants on every iteration;
  // the last two are entailed by the operand's static qualifiers (pos
  // implies nonzero, and step's own pos), so the elision pass removes
  // them while the interpreter — and a VM run without elision — still
  // pays for them. The divisions keep trap checks on the hot path too.
  OS << "int work(int pos n) {\n"
     << "  int acc = 0;\n"
     << "  for (int i = 1; i <= n; i = i + 1) {\n"
     << "    int pos step = (int pos) i;\n"
     << "    int nonzero d = (int nonzero) (2 * i);\n"
     << "    int nonzero e = (int nonzero) step;\n"
     << "    int pos f = (int pos) step;\n"
     << "    acc = acc + step * 3 - i / 2 + acc / d + e - f;\n"
     << "  }\n"
     << "  return acc;\n"
     << "}\n"
     << "int main() {\n"
     << "  int total = 0;\n"
     << "  for (int r = 0; r < " << Rounds << "; r = r + 1) {\n"
     << "    total = total + work(" << N << ");\n"
     << "  }\n"
     << "  return total % 251;\n"
     << "}\n";

  GeneratedWorkload W;
  W.Name = "checksum-kernel";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

GeneratedWorkload stq::workloads::makeInferenceFarm(unsigned Functions) {
  if (Functions == 0)
    Functions = 1;
  std::ostringstream OS;
  // Every local is deliberately unannotated; the bodies keep stable
  // sign/zero facts (p,q,r positive; n,m negative) so the value-qualifier
  // engines have a large fixpoint to find, and the call chain feeds
  // positive arguments into the previous function's parameters so
  // constraints cross generation-unit boundaries.
  for (unsigned I = 0; I < Functions; ++I) {
    OS << "int farm" << I << "(int a, int b) {\n"
       << "  int p = " << (I % 9 + 1) << ";\n"
       << "  int q = p * " << (I % 5 + 2) << ";\n"
       << "  int r = q + p;\n"
       << "  int n = 0 - " << (I % 7 + 1) << ";\n"
       << "  int m = n - r;\n"
       << "  int z = a - b;\n"
       << "  p = r;\n"
       << "  q = q * r;\n"
       << "  m = m + n;\n";
    if (I > 0)
      OS << "  z = z + farm" << (I - 1) << "(p, q);\n";
    OS << "  return z + m;\n"
       << "}\n";
  }
  OS << "int main() {\n"
     << "  int acc = farm" << (Functions - 1) << "(3, 4);\n"
     << "  return acc % 2;\n"
     << "}\n";

  GeneratedWorkload W;
  W.Name = "inference-farm";
  W.Source = OS.str();
  W.Lines = countLines(W.Source);
  return W;
}

//===----------------------------------------------------------------------===//
// Multi-TU farm (real-C front-end workload)
//===----------------------------------------------------------------------===//

std::string stq::workloads::makeFarmHeader(const FarmSpec &Spec) {
  // The shared header: an include guard and a macro the bodies use (so
  // every TU exercises conditionals and expansion), plus the cross-TU
  // prototypes the roots call through.
  std::ostringstream H;
  H << "#ifndef FARM_H\n#define FARM_H\n"
    << "#define FARM_BIAS " << (Spec.Seed % 7 + 1) << "\n"
    << "#define FARM_SQ(x) ((x) * (x))\n";
  for (unsigned U = 0; U < Spec.Units; ++U)
    H << "int pos u" << U << "_root(int pos a);\n";
  H << "#endif\n";
  return H.str();
}

bool stq::workloads::farmUnitPlanted(const FarmSpec &Spec, unsigned U) {
  return Spec.Seed % 3 == 0 && U == Spec.Seed % Spec.Units;
}

MultiTuProgram::File stq::workloads::makeFarmUnit(const FarmSpec &Spec,
                                                  unsigned U) {
  // One chain of qualifier-heavy functions per unit; the root feeds the
  // previous units' roots so link-time prototypes are load-bearing.
  std::ostringstream OS;
  OS << "#include \"farm.h\"\n";
  bool Plant = farmUnitPlanted(Spec, U);
  for (unsigned F = 0; F < Spec.FnsPerUnit; ++F) {
    unsigned K = (Spec.Seed + U * 131 + F * 17) % 1000 + 1;
    OS << "int pos u" << U << "_f" << F << "(int pos a) {\n"
       << "  int pos p = " << K << " + FARM_BIAS;\n"
       << "  int pos q = FARM_SQ(p) + a;\n"
       << "  int pos r = q * p + " << (K % 9 + 1) << ";\n";
    if (Plant && F == Spec.FnsPerUnit / 2)
      // An initialization the checker cannot derive: the planted
      // diagnostic differential runs must agree on.
      OS << "  int neg bad = r;\n"
         << "  int keep = bad + 0;\n";
    if (F > 0)
      OS << "  return u" << U << "_f" << (F - 1) << "(r) + p;\n";
    else
      OS << "  return r + p;\n";
    OS << "}\n";
  }
  OS << "int pos u" << U << "_root(int pos a) {\n"
     << "  int pos t = u" << U << "_f" << (Spec.FnsPerUnit - 1) << "(a);\n";
  if (U > 0) {
    // Fan-out > 1 multiplies several earlier roots (pos is closed under
    // multiplication, so the result stays derivable); fan-out 1 is the
    // legacy single-call chain.
    OS << "  return u" << (U - 1) << "_root(t)";
    for (unsigned X = 2; X <= Spec.CallFanOut && X <= U; ++X)
      OS << " * u" << (U - X) << "_root(t)";
    OS << ";\n";
  } else {
    OS << "  return t;\n";
  }
  OS << "}\n";
  return {"u" + std::to_string(U) + ".c", OS.str()};
}

MultiTuProgram::File stq::workloads::makeFarmMain(const FarmSpec &Spec) {
  std::ostringstream M;
  M << "#include \"farm.h\"\n"
    << "int main() {\n"
    << "  int pos seed = " << (Spec.Seed % 11 + 1) << ";\n"
    << "  int pos acc = u" << (Spec.Units - 1) << "_root(seed);\n"
    << "  return acc % 2;\n"
    << "}\n";
  return {"main.c", M.str()};
}

MultiTuProgram stq::workloads::makeMultiTuFarm(unsigned Units,
                                               unsigned FnsPerUnit,
                                               unsigned Seed) {
  FarmSpec Spec;
  Spec.Units = Units == 0 ? 1 : Units;
  Spec.FnsPerUnit = FnsPerUnit == 0 ? 1 : FnsPerUnit;
  Spec.Seed = Seed;
  MultiTuProgram P;

  P.Headers.push_back({"farm.h", makeFarmHeader(Spec)});
  for (unsigned U = 0; U < Spec.Units; ++U) {
    P.Units.push_back(makeFarmUnit(Spec, U));
    if (farmUnitPlanted(Spec, U))
      ++P.PlantedWarnings;
  }
  P.Units.push_back(makeFarmMain(Spec));

  flattenAndCount(P);
  return P;
}
