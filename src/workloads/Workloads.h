//===- Workloads.h - Synthetic analogues of the paper's programs -*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators for C-minus programs that stand in for the
/// paper's evaluation subjects (section 6):
///
///  * grep 2.5's dfa.c/dfa.h (2287 lines, 1072 dereferences) for the
///    nonnull experiment (Table 1) and the unique experiment (section 6.2,
///    49 validated references to the dfa global);
///  * bftpd 1.0.11 (750 lines, 134 printf calls, one real format-string
///    bug), mingetty 0.9.4 (293 lines, 23 calls), and identd 1.0
///    (228 lines, 21 calls) for the untainted experiment (Table 2).
///
/// The generators reproduce the structural statistics that determine the
/// checker's output counts; see DESIGN.md's substitution table.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_WORKLOADS_WORKLOADS_H
#define STQ_WORKLOADS_WORKLOADS_H

#include <string>
#include <vector>

namespace stq::workloads {

struct GeneratedWorkload {
  std::string Name;
  std::string Source;
  /// Non-blank source lines (the paper's "lines" rows).
  unsigned Lines = 0;
  /// Call sites in the printf family (taint workloads).
  unsigned PrintfCalls = 0;
  /// Format-string bugs deliberately present.
  unsigned PlantedBugs = 0;
  /// Reference sites to the unique global (unique workloads).
  unsigned UniqueRefSites = 0;
};

/// The dfa.c/dfa.h analogue for Table 1. \p Scale multiplies the function
/// counts (Scale=1 approximates the paper's statistics); larger scales feed
/// the checker-time benchmark.
///
/// Since the §6 corpora landed under tests/corpus/c/, the single-TU
/// transcriptions returned here are *oracles only*: the annotation
/// fixpoint over them (AnnotationDriver) re-derives the Table 1/Table 2
/// counts that the checked-in multi-file corpora carry as written, and
/// tests/test_eval.cpp holds the two equal. The corpora are the product's
/// §6 artifact; these stay as the differential baseline.
GeneratedWorkload makeGrepDfa(unsigned Scale = 1);

/// Section 6.2: the unique dfa global, initialized through a cast, with 49
/// subsequent references that all preserve uniqueness.
GeneratedWorkload makeGrepDfaUnique();

/// The idiom the paper reports as a true uniqueness violation: globals
/// passed as procedure arguments.
GeneratedWorkload makeGrepDfaUniqueViolating();

/// Table 2's three programs.
GeneratedWorkload makeBftpd();
GeneratedWorkload makeMingetty();
GeneratedWorkload makeIdentd();

/// A compute-bound qualifier-instrumented kernel for run-phase execution
/// benchmarks: \p Rounds outer rounds of an \p N-iteration accumulation
/// loop whose body performs value-qualifier casts (pos/nonzero) that stay
/// as residual runtime guards. The daemons above are setup-dominated when
/// executed; this member makes the farm representative of the run phase
/// (the grep inner-matcher shape) for engine comparisons.
GeneratedWorkload makeChecksumKernel(unsigned Rounds = 200, unsigned N = 500);

/// An unannotated many-function arithmetic program for the whole-program
/// inference benchmark: \p Functions function bodies full of locals with
/// inferable value qualifiers (pos/neg/nonzero-class), chained by calls so
/// parameter constraints cross function (and solve-unit) boundaries.
GeneratedWorkload makeInferenceFarm(unsigned Functions = 120);

/// A generated multi-translation-unit program for the real-C front end:
/// shared headers (macros, struct, cross-TU prototypes) plus N `.c`
/// units, each defining a chain of qualifier-heavy functions whose root
/// calls the previous unit's root through the header prototype.
struct MultiTuProgram {
  struct File {
    std::string Name;
    std::string Text;
  };
  /// The shared headers (resolved by name through -I or a shipped map).
  std::vector<File> Headers;
  /// The translation units, in check order; the last one holds main().
  std::vector<File> Units;
  /// The semantically equivalent single translation unit: every header's
  /// text once, then every unit's text with its #include lines removed.
  /// Checking it must produce the same verdict counters as checking the
  /// split units and merging — the fuzz campaign's frontend oracle.
  std::string Flattened;
  /// Non-blank source lines across headers and units.
  unsigned Lines = 0;
  /// Qualifier warnings deliberately planted (via Seed).
  unsigned PlantedWarnings = 0;
};

/// Size/fan-out knobs for the synthetic farm. Unit and main texts can be
/// generated one at a time (makeFarmUnit/makeFarmMain), so a ~1M-LOC
/// program never needs to exist twice in memory: the benchmark emits each
/// TU straight into its checkFiles input vector instead of materializing
/// a MultiTuProgram (whose Flattened copy alone would double the
/// footprint).
struct FarmSpec {
  unsigned Units = 1;
  unsigned FnsPerUnit = 8;
  unsigned Seed = 1;
  /// How many earlier roots each unit's root multiplies together (1 =
  /// the legacy single-call chain). Higher fan-out densifies the cross-TU
  /// call graph the link step and prototypes must carry.
  unsigned CallFanOut = 1;
};

/// The shared farm header ("farm.h"): macros plus one root prototype per
/// unit.
std::string makeFarmHeader(const FarmSpec &Spec);

/// The \p U-th translation unit (U in [0, Spec.Units)), named "u<U>.c".
MultiTuProgram::File makeFarmUnit(const FarmSpec &Spec, unsigned U);

/// The driver unit ("main.c") calling the last root.
MultiTuProgram::File makeFarmMain(const FarmSpec &Spec);

/// True when unit \p U carries the seed-planted qualifier warning.
bool farmUnitPlanted(const FarmSpec &Spec, unsigned U);

/// Builds a farm of \p Units translation units with \p FnsPerUnit function
/// definitions each (plus a main TU). \p Seed varies the constants and,
/// when Seed % 3 == 0, plants one un-derivable qualifier initialization in
/// unit Seed % Units so differential runs see diagnostics too. Scales to
/// ~1M LOC (Units * FnsPerUnit * ~7 lines) for the front-end benchmark.
/// Assembled from makeFarmHeader/makeFarmUnit/makeFarmMain; callers that
/// only stream TUs through checkFiles should use those directly.
MultiTuProgram makeMultiTuFarm(unsigned Units, unsigned FnsPerUnit = 8,
                               unsigned Seed = 1);

/// One §6 corpus program: the faithful header+TU layout of a paper
/// evaluation subject in its *post-fixpoint annotated form* — the
/// annotations and sanctioned qualifier casts the paper's authors ended
/// §6.1 with are written in the source — plus the unannotated single-TU
/// transcription it is differentially checked against. The checked-in
/// tree under tests/corpus/c/<Name>/ is byte-identical to this value
/// (tests/test_eval.cpp and `stq-eval --verify-sync` enforce it).
struct CorpusProgram {
  std::string Name; ///< "grep-dfa", "bftpd", "mingetty", "identd".
  std::string Kind; ///< "table1" (nonnull) or "table2" (untainted).
  /// Headers (under include/ and lib/), units, and the flattened
  /// single-TU equivalent. Headers under lib/ stand in for the paper's
  /// alternate library headers: their annotations are not counted in the
  /// tables, exactly as the paper excludes them.
  MultiTuProgram Prog;
  /// The qualifier-DSL source for the corpus qualfile (quals.stq);
  /// equivalent to loading the builtins in Quals.
  std::string QualFile;
  std::vector<std::string> Quals;
  /// The legacy single-TU transcription (unannotated): the oracle whose
  /// annotation fixpoint must reproduce this corpus's as-written counts.
  GeneratedWorkload Legacy;
  /// Residual qualifier errors expected from a clean check (real bugs:
  /// bftpd ships one format-string hole).
  unsigned ExpectedErrors = 0;
};

CorpusProgram makeGrepDfaCorpus();
CorpusProgram makeBftpdCorpus();
CorpusProgram makeMingettyCorpus();
CorpusProgram makeIdentdCorpus();

/// All four §6 corpora, in the paper's table order.
std::vector<CorpusProgram> makeAllCorpora();

/// Counts non-blank lines (the measure used by the paper's tables).
unsigned countLines(const std::string &Source);

} // namespace stq::workloads

#endif // STQ_WORKLOADS_WORKLOADS_H
