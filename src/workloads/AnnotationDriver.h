//===- AnnotationDriver.h - Automated annotation fixpoint -------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automates the paper's section 6.1 process: "We applied nonnull
/// annotations to variables in an iterative fashion. Running our extensible
/// typechecker on the unannotated files produced an error message for each
/// dereference ... These errors were removed by annotating some variables
/// with nonnull, which could in turn cause error messages on assignments to
/// the newly-annotated variables, leading to more annotations" - with casts
/// where the type rules are insufficient (flow-insensitivity).
///
/// The driver mutates declared types in the parsed AST (annotations) and
/// records assumed casts through the checker's AssumedCasts option, looping
/// to a fixpoint. Its outputs are exactly the rows of Tables 1 and 2.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_WORKLOADS_ANNOTATIONDRIVER_H
#define STQ_WORKLOADS_ANNOTATIONDRIVER_H

#include "workloads/Workloads.h"

#include "support/Diagnostics.h"

#include <string>

namespace stq::workloads {

/// One row of Table 1 (the nonnull experiment).
struct Table1Row {
  unsigned Lines = 0;
  unsigned Dereferences = 0;
  unsigned Annotations = 0;
  unsigned Casts = 0;
  unsigned Errors = 0;
  unsigned Iterations = 0;
  /// Dereference errors before any annotation (the starting point of the
  /// iterative process).
  unsigned InitialErrors = 0;
  double Seconds = 0.0;
};

/// Runs the iterative nonnull annotation process on \p W. With
/// \p FlowSensitive set, the checker's section 8 narrowing extension is
/// enabled: NULL-check guards count, which removes most casts (the
/// quantified version of the paper's future-work claim).
Table1Row runNonnullExperiment(const GeneratedWorkload &W,
                               bool FlowSensitive = false);

/// One row of Table 2 (the untainted experiment).
struct Table2Row {
  unsigned Lines = 0;
  unsigned PrintfCalls = 0;
  unsigned Annotations = 0;
  unsigned Casts = 0;
  unsigned Errors = 0;
  double Seconds = 0.0;
};

/// Runs the untainted format-string experiment on \p W. Annotates format
/// parameters (and literal-only locals) iteratively; residual failures are
/// real format-string bugs.
Table2Row runUntaintedExperiment(const GeneratedWorkload &W);

/// The section 6.2 unique experiment.
struct UniqueRow {
  unsigned RefSites = 0;   ///< References to the unique global.
  unsigned Violations = 0; ///< disallow/assign-rule violations found.
  unsigned Casts = 0;      ///< Reference-qualifier casts (the init).
  double Seconds = 0.0;
};

UniqueRow runUniqueExperiment(const GeneratedWorkload &W);

} // namespace stq::workloads

#endif // STQ_WORKLOADS_ANNOTATIONDRIVER_H
