//===- Cqual.cpp ----------------------------------------------------------===//

#include "cqual/Cqual.h"

#include "cminus/Lowering.h"
#include "cminus/Printer.h"

#include <cassert>
#include <map>
#include <queue>

using namespace stq;
using namespace stq::cqual;
using namespace stq::cminus;

namespace {

using QVar = unsigned;

/// The qualifier shape of a value: one variable per pointer level
/// (index 0 = the value itself, index 1 = what it points to, ...).
using QShape = std::vector<QVar>;

class InferenceEngine {
public:
  InferenceEngine(const Program &Prog, const LatticeConfig &Config)
      : Prog(Prog), Config(Config) {}

  InferenceResult run();

private:
  QVar freshVar() {
    LowerTaint.push_back(false);
    UpperBottom.push_back(false);
    Succ.emplace_back();
    VarLoc.push_back(SourceLoc());
    VarDesc.emplace_back();
    return static_cast<QVar>(LowerTaint.size() - 1);
  }

  /// a <= b.
  void addEdge(QVar A, QVar B) {
    Succ[A].push_back(B);
    ++Result.NumConstraints;
  }
  void addEq(QVar A, QVar B) {
    addEdge(A, B);
    addEdge(B, A);
  }
  void constrainShapes(const QShape &Src, const QShape &Dst, SourceLoc Loc);

  unsigned pointerDepth(const TypePtr &Ty) {
    TypePtr Bare = Type::withoutQuals(Ty);
    return Bare->isPointer() ? 1 + pointerDepth(Bare->pointee()) : 0;
  }

  /// The qualifier shape for a declared type, reading explicit Top/Bottom
  /// annotations at each level.
  QShape shapeForType(const TypePtr &Ty, SourceLoc Loc,
                      const std::string &Desc);
  QShape shapeForVar(const VarDecl *Var);
  QShape shapeForField(const StructDef *Def, const std::string &Field);
  QShape shapeForReturn(const FuncDecl *Fn);
  QShape freshShape(unsigned Levels, SourceLoc Loc, const std::string &Desc);

  QShape shapeOfExpr(const Expr *E);
  QShape shapeOfLValue(const LValue *LV);
  QShape shapeOfCall(const CallExpr *Call);

  void walkStmt(const Stmt *S, const FuncDecl *Fn);
  void assignInto(const QShape &Dst, const Expr *RHS, SourceLoc Loc);

  void solve();

  const Program &Prog;
  const LatticeConfig &Config;
  InferenceResult Result;

  // Constraint graph.
  std::vector<bool> LowerTaint;  ///< Var's lower bound is Top.
  std::vector<bool> UpperBottom; ///< Var's upper bound is Bottom.
  std::vector<std::vector<QVar>> Succ;
  std::vector<SourceLoc> VarLoc;
  std::vector<std::string> VarDesc;

  std::map<const VarDecl *, QShape> VarShapes;
  std::map<std::pair<const StructDef *, std::string>, QShape> FieldShapes;
  std::map<const FuncDecl *, QShape> ReturnShapes;
};

QShape InferenceEngine::freshShape(unsigned Levels, SourceLoc Loc,
                                   const std::string &Desc) {
  QShape Out;
  for (unsigned I = 0; I <= Levels; ++I) {
    QVar V = freshVar();
    VarLoc[V] = Loc;
    VarDesc[V] = Desc;
    Out.push_back(V);
  }
  return Out;
}

QShape InferenceEngine::shapeForType(const TypePtr &Ty, SourceLoc Loc,
                                     const std::string &Desc) {
  QShape Out;
  TypePtr Cur = Ty;
  while (true) {
    QVar V = freshVar();
    VarLoc[V] = Loc;
    VarDesc[V] = Desc;
    if (Cur->hasQual(Config.Top)) {
      LowerTaint[V] = true;
      ++Result.ExplicitAnnotations;
    }
    if (Cur->hasQual(Config.Bottom)) {
      UpperBottom[V] = true;
      ++Result.ExplicitAnnotations;
    }
    Out.push_back(V);
    TypePtr Bare = Type::withoutQuals(Cur);
    if (!Bare->isPointer())
      break;
    Cur = Bare->pointee();
  }
  return Out;
}

QShape InferenceEngine::shapeForVar(const VarDecl *Var) {
  auto Found = VarShapes.find(Var);
  if (Found != VarShapes.end())
    return Found->second;
  QShape S = shapeForType(Var->DeclaredTy, Var->Loc, "var " + Var->Name);
  VarShapes.emplace(Var, S);
  return S;
}

QShape InferenceEngine::shapeForField(const StructDef *Def,
                                      const std::string &Field) {
  auto Key = std::make_pair(Def, Field);
  auto Found = FieldShapes.find(Key);
  if (Found != FieldShapes.end())
    return Found->second;
  const StructDef::Field *F = Def->findField(Field);
  QShape S = F ? shapeForType(F->Ty, Def->Loc, Def->Name + "." + Field)
               : freshShape(0, Def->Loc, "unknown field");
  FieldShapes.emplace(Key, S);
  return S;
}

QShape InferenceEngine::shapeForReturn(const FuncDecl *Fn) {
  auto Found = ReturnShapes.find(Fn);
  if (Found != ReturnShapes.end())
    return Found->second;
  QShape S = shapeForType(Fn->RetTy, Fn->Loc, "return of " + Fn->Name);
  ReturnShapes.emplace(Fn, S);
  return S;
}

void InferenceEngine::constrainShapes(const QShape &Src, const QShape &Dst,
                                      SourceLoc Loc) {
  (void)Loc;
  if (Src.empty() || Dst.empty())
    return;
  // Top level: subtyping. Below pointers: equality (no subtyping under
  // pointers).
  addEdge(Src[0], Dst[0]);
  for (size_t I = 1; I < Src.size() && I < Dst.size(); ++I)
    addEq(Src[I], Dst[I]);
}

QShape InferenceEngine::shapeOfLValue(const LValue *LV) {
  QShape Base;
  if (LV->isVar()) {
    Base = shapeForVar(LV->Var);
  } else {
    QShape Addr = shapeOfExpr(LV->Addr);
    // Dereference drops the outermost level.
    if (Addr.size() > 1)
      Base.assign(Addr.begin() + 1, Addr.end());
    else
      Base = freshShape(0, LV->Loc, "deref");
  }
  // Field path: field-based (flow-insensitive) shapes.
  TypePtr CurTy = LV->isVar() ? LV->Var->DeclaredTy
                              : (LV->Addr->Ty && LV->Addr->Ty->isPointer()
                                     ? LV->Addr->Ty->pointee()
                                     : nullptr);
  for (const std::string &Field : LV->Fields) {
    if (!CurTy)
      return freshShape(0, LV->Loc, "field");
    TypePtr Bare = Type::withoutQuals(CurTy);
    const StructDef *Def =
        Bare->isStruct() ? Prog.findStruct(Bare->structName()) : nullptr;
    if (!Def)
      return freshShape(0, LV->Loc, "field");
    Base = shapeForField(Def, Field);
    const StructDef::Field *F = Def->findField(Field);
    CurTy = F ? F->Ty : nullptr;
  }
  return Base;
}

QShape InferenceEngine::shapeOfCall(const CallExpr *Call) {
  // Arguments flow into parameters.
  if (Call->Callee) {
    for (size_t I = 0;
         I < Call->Args.size() && I < Call->Callee->Params.size(); ++I) {
      QShape Arg = shapeOfExpr(Call->Args[I]);
      QShape Param = shapeForVar(Call->Callee->Params[I]);
      constrainShapes(Arg, Param, Call->Args[I]->Loc);
    }
    return shapeForReturn(Call->Callee);
  }
  for (const Expr *Arg : Call->Args)
    shapeOfExpr(Arg);
  unsigned Levels = Call->Ty ? pointerDepth(Call->Ty) : 0;
  return freshShape(Levels, Call->Loc, "call " + Call->CalleeName);
}

QShape InferenceEngine::shapeOfExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntConst:
  case Expr::Kind::StrConst:
    // Constants carry no taint: their lower bound stays free, so they may
    // flow anywhere (the standard prelude treatment in taint analyses).
  case Expr::Kind::NullConst:
  case Expr::Kind::SizeofType:
    return freshShape(E->Ty ? pointerDepth(E->Ty) : 0, E->Loc, "constant");
  case Expr::Kind::LValRead:
    return shapeOfLValue(cast<LValReadExpr>(E)->LV);
  case Expr::Kind::AddrOf: {
    QShape Sub = shapeOfLValue(cast<AddrOfExpr>(E)->LV);
    QShape Out = freshShape(0, E->Loc, "addrof");
    Out.insert(Out.end(), Sub.begin(), Sub.end());
    return Out;
  }
  case Expr::Kind::Unary:
    return shapeOfExpr(cast<UnaryExpr>(E)->Sub);
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    QShape L = shapeOfExpr(Bin->LHS);
    QShape R = shapeOfExpr(Bin->RHS);
    // Pointer arithmetic keeps the pointer's shape; otherwise join into a
    // fresh variable.
    if (Bin->LHS->Ty && Bin->LHS->Ty->isPointer())
      return L;
    if (Bin->RHS->Ty && Bin->RHS->Ty->isPointer())
      return R;
    QShape Out = freshShape(0, E->Loc, "binop");
    if (!L.empty())
      addEdge(L[0], Out[0]);
    if (!R.empty())
      addEdge(R[0], Out[0]);
    return Out;
  }
  case Expr::Kind::Cast: {
    const auto *Cast_ = cast<CastExpr>(E);
    QShape Sub = shapeOfExpr(Cast_->Sub);
    // A cast with an explicit qualifier annotation is a CQUAL
    // assertion/assumption boundary: the incoming value is checked against
    // the annotation, but the annotation is then trusted, so taint does
    // not propagate through. Unannotated levels are transparent.
    QShape Out;
    TypePtr Cur = Cast_->Target;
    for (size_t Level = 0;; ++Level) {
      bool Annotated = Cur->hasQual(Config.Top) || Cur->hasQual(Config.Bottom);
      if (Annotated) {
        // Check var carries the annotation's bounds.
        QShape CheckShape = shapeForType(Cur, E->Loc, "cast");
        QVar Check = CheckShape[0];
        if (Level < Sub.size())
          addEdge(Sub[Level], Check);
        // Downstream sees the trusted annotation: taint sources (Top
        // annotations) still propagate, Bottom annotations block.
        QVar Fresh = freshVar();
        VarLoc[Fresh] = E->Loc;
        VarDesc[Fresh] = "cast result";
        LowerTaint[Fresh] = Cur->hasQual(Config.Top);
        Out.push_back(Fresh);
      } else {
        if (Level < Sub.size()) {
          Out.push_back(Sub[Level]);
        } else {
          QShape Fresh = freshShape(0, E->Loc, "cast");
          Out.push_back(Fresh[0]);
        }
      }
      TypePtr Bare = Type::withoutQuals(Cur);
      if (!Bare->isPointer())
        break;
      Cur = Bare->pointee();
    }
    return Out;
  }
  case Expr::Kind::Call:
    return shapeOfCall(cast<CallExpr>(E));
  }
  return freshShape(0, E->Loc, "expr");
}

void InferenceEngine::assignInto(const QShape &Dst, const Expr *RHS,
                                 SourceLoc Loc) {
  QShape Src = shapeOfExpr(RHS);
  constrainShapes(Src, Dst, Loc);
}

void InferenceEngine::walkStmt(const Stmt *S, const FuncDecl *Fn) {
  if (!S)
    return;
  switch (S->getKind()) {
  case Stmt::Kind::Block:
    for (const Stmt *Sub : cast<BlockStmt>(S)->Stmts)
      walkStmt(Sub, Fn);
    return;
  case Stmt::Kind::Decl: {
    const VarDecl *Var = cast<DeclStmt>(S)->Var;
    if (Var->Init)
      assignInto(shapeForVar(Var), Var->Init, Var->Loc);
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    assignInto(shapeOfLValue(Assign->LHS), Assign->RHS, Assign->Loc);
    return;
  }
  case Stmt::Kind::CallStmt:
    shapeOfCall(cast<CallStmt>(S)->Call);
    return;
  case Stmt::Kind::If:
    shapeOfExpr(cast<IfStmt>(S)->Cond);
    walkStmt(cast<IfStmt>(S)->Then, Fn);
    walkStmt(cast<IfStmt>(S)->Else, Fn);
    return;
  case Stmt::Kind::While:
    shapeOfExpr(cast<WhileStmt>(S)->Cond);
    walkStmt(cast<WhileStmt>(S)->Body, Fn);
    return;
  case Stmt::Kind::For: {
    const auto *For = cast<ForStmt>(S);
    walkStmt(For->Init, Fn);
    if (For->Cond)
      shapeOfExpr(For->Cond);
    walkStmt(For->Step, Fn);
    walkStmt(For->Body, Fn);
    return;
  }
  case Stmt::Kind::Return: {
    const auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value && Fn)
      assignInto(shapeForReturn(Fn), Ret->Value, Ret->Loc);
    return;
  }
  case Stmt::Kind::Break:
  case Stmt::Kind::Continue:
    return;
  }
}

void InferenceEngine::solve() {
  // Propagate taint (lower bounds of Top) forward through the graph; an
  // error is a tainted variable whose upper bound is Bottom.
  std::vector<bool> Tainted = LowerTaint;
  std::queue<QVar> Work;
  for (QVar V = 0; V < Tainted.size(); ++V)
    if (Tainted[V])
      Work.push(V);
  while (!Work.empty()) {
    QVar V = Work.front();
    Work.pop();
    for (QVar W : Succ[V]) {
      if (Tainted[W])
        continue;
      Tainted[W] = true;
      Work.push(W);
    }
  }
  for (QVar V = 0; V < Tainted.size(); ++V) {
    if (Tainted[V] && UpperBottom[V]) {
      FlowError E;
      E.Loc = VarLoc[V];
      E.Description = Config.Top + " data flows into " + Config.Bottom +
                      "-annotated position (" + VarDesc[V] + ")";
      Result.Errors.push_back(std::move(E));
    }
  }
}

InferenceResult InferenceEngine::run() {
  for (const VarDecl *G : Prog.Globals)
    if (G->Init)
      assignInto(shapeForVar(G), G->Init, G->Loc);
  for (const FuncDecl *Fn : Prog.Functions) {
    for (const VarDecl *P : Fn->Params)
      shapeForVar(P);
    shapeForReturn(Fn);
    if (Fn->isDefinition())
      walkStmt(Fn->Body, Fn);
  }
  solve();
  Result.NumVars = static_cast<unsigned>(LowerTaint.size());
  return Result;
}

} // namespace

InferenceResult stq::cqual::runInference(const Program &Prog,
                                         const LatticeConfig &Config) {
  InferenceEngine Engine(Prog, Config);
  return Engine.run();
}
