//===- Cqual.h - CQUAL-style qualifier inference baseline -------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A baseline reimplementation of the CQUAL approach the paper builds on
/// and compares against (Foster et al., PLDI 1999; section 7): flow-
/// insensitive qualifier *inference* over a two-point lattice. Every type
/// position gets a qualifier variable; assignments and calls generate
/// subtyping constraints (equality below pointers); constants propagate
/// through the constraint graph; an error is a path from a `tainted`
/// source to an `untainted` sink.
///
/// Contrasts with the paper's framework, exercised by the benchmarks:
/// inference needs fewer annotations, but the lattice is *trusted* - there
/// is no language for type rules and no automated soundness checking.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_CQUAL_CQUAL_H
#define STQ_CQUAL_CQUAL_H

#include "cminus/AST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace stq::cqual {

/// Configuration of one two-point analysis (default: taintedness).
struct LatticeConfig {
  /// The top element: data from untrusted sources.
  std::string Top = "tainted";
  /// The bottom element: data trusted sinks require.
  std::string Bottom = "untainted";
};

/// One inference error: top-qualified data reached a bottom-qualified
/// position.
struct FlowError {
  SourceLoc Loc;
  std::string Description;
};

struct InferenceResult {
  unsigned NumVars = 0;
  unsigned NumConstraints = 0;
  /// Explicit Top/Bottom annotations found in declared types (the
  /// annotation burden).
  unsigned ExplicitAnnotations = 0;
  std::vector<FlowError> Errors;

  bool clean() const { return Errors.empty(); }
};

/// Runs qualifier inference over a lowered, Sema-checked program.
InferenceResult runInference(const cminus::Program &Prog,
                             const LatticeConfig &Config = {});

} // namespace stq::cqual

#endif // STQ_CQUAL_CQUAL_H
