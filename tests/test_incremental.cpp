//===- test_incremental.cpp - The incremental re-check layer --------------===//
//
// The function-granular incremental engine (checker/Incremental.h) through
// the Session facade: hit/miss accounting per edit kind, transitive-caller
// invalidation on signature changes, environment-hash invalidation on
// qualifier-set changes, LRU eviction under a tiny capacity, byte-identity
// of warm verdicts with a cold full check, and the prover-cache-file
// interaction across a simulated process restart.
//
//===----------------------------------------------------------------------===//

#include "checker/Incremental.h"
#include "driver/Session.h"

#include "TestTempDir.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

using namespace stq;
using checker::incremental::Engine;

namespace {

// A three-deep call chain plus main: f0 <- f1 <- f2 <- main. Globals are
// work item 0, so the unit has five work items. The f1 constant edit below
// keeps every other function's source positions unchanged.
const char *ChainV0 = "int g = 1;\n"
                      "int f0(int a) { return a + 1; }\n"
                      "int f1(int a) { return f0(a) + 2; }\n"
                      "int f2(int a) { return f1(a) + 3; }\n"
                      "int main() { return f2(g); }\n";

// Body-only edit: f1's constant changes in place (same column widths).
const char *ChainBodyEdit = "int g = 1;\n"
                            "int f0(int a) { return a + 1; }\n"
                            "int f1(int a) { return f0(a) + 9; }\n"
                            "int f2(int a) { return f1(a) + 3; }\n"
                            "int main() { return f2(g); }\n";

// Signature edit: f0 gains a qualifier on its parameter. Only f0's line
// changes textually, but the signature hash feeds every transitive caller.
const char *ChainSigEdit = "int g = 1;\n"
                           "int f0(int pos a) { return a + 1; }\n"
                           "int f1(int a) { return f0(a) + 2; }\n"
                           "int f2(int a) { return f1(a) + 3; }\n"
                           "int main() { return f2(g); }\n";

SessionOptions withEngine(Engine *E, std::vector<std::string> Builtins = {}) {
  SessionOptions Opts;
  Opts.Builtins = std::move(Builtins);
  Opts.SharedIncremental = E;
  Opts.IncrementalUnit = "test-unit";
  return Opts;
}

/// Runs one warm recheck in a fresh Session (the server's per-request
/// shape) and returns the outcome plus the rendered diagnostics.
Session::RecheckOutcome recheckOnce(Engine &E, const std::string &Source,
                                    std::string *DiagText = nullptr,
                                    std::vector<std::string> Builtins = {},
                                    unsigned Jobs = 1) {
  SessionOptions Opts = withEngine(&E, std::move(Builtins));
  Opts.Jobs = Jobs;
  Session S(Opts);
  Session::RecheckOutcome Out = S.recheck(Source);
  if (DiagText) {
    std::ostringstream OS;
    S.diags().print(OS);
    *DiagText = OS.str();
  }
  return Out;
}

/// The cold reference: a one-shot full check in a fresh Session.
Session::CheckOutcome checkOnce(const std::string &Source,
                                std::string *DiagText = nullptr,
                                std::vector<std::string> Builtins = {}) {
  SessionOptions Opts;
  Opts.Builtins = std::move(Builtins);
  Session S(Opts);
  Session::CheckOutcome Out = S.check(Source);
  if (DiagText) {
    std::ostringstream OS;
    S.diags().print(OS);
    *DiagText = OS.str();
  }
  return Out;
}

// --------------------------------------------------------------------------
// Hit/miss accounting per edit kind
// --------------------------------------------------------------------------

TEST(Incremental, ColdRunMissesThenIdenticalRunFullyHits) {
  Engine E;
  Session::RecheckOutcome Cold = recheckOnce(E, ChainV0);
  ASSERT_TRUE(Cold.FrontEndOk);
  EXPECT_EQ(Cold.Stats.Units, 5u);
  EXPECT_EQ(Cold.Stats.Hits, 0u);
  EXPECT_EQ(Cold.Stats.Rechecked, 5u);

  Session::RecheckOutcome Warm = recheckOnce(E, ChainV0);
  EXPECT_EQ(Warm.Stats.Hits, 5u);
  EXPECT_EQ(Warm.Stats.Rechecked, 0u);
  EXPECT_EQ(Warm.Stats.SignatureDirtied, 0u);
  EXPECT_EQ(Warm.Result.QualErrors, Cold.Result.QualErrors);
}

TEST(Incremental, BodyOnlyEditRechecksExactlyThatFunction) {
  Engine E;
  recheckOnce(E, ChainV0);
  Session::RecheckOutcome Out = recheckOnce(E, ChainBodyEdit);
  ASSERT_TRUE(Out.FrontEndOk);
  // Only f1's content hash moved; globals, f0, f2, and main replay.
  EXPECT_EQ(Out.Stats.Hits, 4u);
  EXPECT_EQ(Out.Stats.Rechecked, 1u);
  EXPECT_EQ(Out.Stats.SignatureDirtied, 0u);
}

TEST(Incremental, SignatureChangeDirtiesTransitiveCallers) {
  Engine E;
  recheckOnce(E, ChainV0);
  Session::RecheckOutcome Out = recheckOnce(E, ChainSigEdit);
  ASSERT_TRUE(Out.FrontEndOk);
  // f0 misses on content; f1, f2, and main are its transitive callers and
  // are force-dirtied even where their own hashes still match (f2, main).
  EXPECT_EQ(Out.Stats.SignatureDirtied, 3u);
  EXPECT_EQ(Out.Stats.Rechecked, 4u);
  EXPECT_EQ(Out.Stats.Hits, 1u); // The globals item alone replays.
}

TEST(Incremental, QualifierSetChangeDirtiesEveryWorkItem) {
  Engine E;
  // "pos" and "neg" reference each other, so both stay in each set.
  std::vector<std::string> Wide = {"pos", "neg", "nonzero"};
  std::vector<std::string> Narrow = {"pos", "neg"};
  Session::RecheckOutcome Cold = recheckOnce(E, ChainV0, nullptr, Wide);
  EXPECT_EQ(Cold.Stats.Rechecked, 5u);

  // Same source, smaller qualifier environment: the env hash feeds every
  // key, so nothing replays — but no signature changed.
  Session::RecheckOutcome Switched = recheckOnce(E, ChainV0, nullptr, Narrow);
  EXPECT_EQ(Switched.Stats.Hits, 0u);
  EXPECT_EQ(Switched.Stats.Rechecked, 5u);
  EXPECT_EQ(Switched.Stats.SignatureDirtied, 0u);

  // Both environments' verdicts now coexist in the store: switching back
  // is a full hit, not a re-check.
  Session::RecheckOutcome Back = recheckOnce(E, ChainV0, nullptr, Wide);
  EXPECT_EQ(Back.Stats.Hits, 5u);
  EXPECT_EQ(Back.Stats.Rechecked, 0u);
}

// --------------------------------------------------------------------------
// Byte-identity with the cold checker
// --------------------------------------------------------------------------

TEST(Incremental, WarmVerdictsAndDiagnosticsMatchColdCheckByteForByte) {
  // A program with a real qualifier warning, so the diagnostic path (not
  // just the counters) is compared.
  const std::string Source = "int pos bad = 0 - 5;\n"
                             "int f0(int a) { int pos p = 1; return a; }\n"
                             "int main() { return f0(3); }\n";
  std::string ColdDiags;
  Session::CheckOutcome Cold = checkOnce(Source, &ColdDiags);
  ASSERT_TRUE(Cold.FrontEndOk);
  EXPECT_GT(Cold.Result.QualErrors, 0u);

  Engine E;
  for (int Round = 0; Round < 3; ++Round) {
    std::string WarmDiags;
    Session::RecheckOutcome Warm =
        recheckOnce(E, Source, &WarmDiags, {}, Round == 2 ? 4u : 1u);
    ASSERT_TRUE(Warm.FrontEndOk);
    EXPECT_EQ(Warm.Result.QualErrors, Cold.Result.QualErrors);
    EXPECT_EQ(Warm.Result.Stats.AssignChecks, Cold.Result.Stats.AssignChecks);
    EXPECT_EQ(Warm.Result.RuntimeCheckCount, Cold.Result.RuntimeChecks.size());
    EXPECT_EQ(WarmDiags, ColdDiags) << "round " << Round;
  }
}

// --------------------------------------------------------------------------
// LRU eviction
// --------------------------------------------------------------------------

TEST(Incremental, EvictionAtCapacityBumpsCountersAndNeverChangesVerdicts) {
  std::string ColdDiags;
  Session::CheckOutcome Cold = checkOnce(ChainV0, &ColdDiags);

  // Capacity 3 < 5 work items: every pass over the unit evicts its own
  // oldest entries, so later passes keep missing — verdicts must not care.
  Engine Small(3);
  uint64_t LastEvictions = 0;
  for (int Round = 0; Round < 3; ++Round) {
    std::string WarmDiags;
    Session::RecheckOutcome Out = recheckOnce(Small, ChainV0, &WarmDiags);
    ASSERT_TRUE(Out.FrontEndOk);
    EXPECT_EQ(Out.Result.QualErrors, Cold.Result.QualErrors);
    EXPECT_EQ(WarmDiags, ColdDiags) << "round " << Round;
    EXPECT_GT(Out.Stats.Rechecked, 0u) << "round " << Round;
    EXPECT_LE(Small.entries(), 3u);
    EXPECT_GT(Small.evictions(), LastEvictions) << "round " << Round;
    LastEvictions = Small.evictions();
  }
}

TEST(Incremental, ZeroCapacityEngineCachesNothingButStaysCorrect) {
  std::string ColdDiags;
  checkOnce(ChainV0, &ColdDiags);

  Engine None(0);
  for (int Round = 0; Round < 2; ++Round) {
    std::string WarmDiags;
    Session::RecheckOutcome Out = recheckOnce(None, ChainV0, &WarmDiags);
    EXPECT_EQ(Out.Stats.Hits, 0u);
    EXPECT_EQ(Out.Stats.Rechecked, 5u);
    EXPECT_EQ(WarmDiags, ColdDiags);
  }
  EXPECT_EQ(None.entries(), 0u);
}

// --------------------------------------------------------------------------
// Edits through one engine never resurrect stale verdicts
// --------------------------------------------------------------------------

TEST(Incremental, EditedFunctionGetsFreshVerdictNotTheCachedOne) {
  // V1's f0 carries a warning; V2 fixes it in place. The store holds V1's
  // verdict when V2 arrives — the content hash must keep them apart.
  const std::string V1 = "int f0(int a) { int pos p = 0 - 1; return a; }\n"
                         "int main() { return f0(2); }\n";
  const std::string V2 = "int f0(int a) { int pos p = 1; return a; }\n"
                         "int main() { return f0(2); }\n";
  Engine E;
  Session::RecheckOutcome First = recheckOnce(E, V1);
  EXPECT_EQ(First.Result.QualErrors, 1u);
  // Only f0 changed: the globals item and main (same line, unchanged
  // callee signature) replay, and f0 gets a fresh clean verdict.
  Session::RecheckOutcome Fixed = recheckOnce(E, V2);
  EXPECT_EQ(Fixed.Result.QualErrors, 0u);
  EXPECT_EQ(Fixed.Stats.Hits, 2u);
  EXPECT_EQ(Fixed.Stats.Rechecked, 1u);
  // And the stale direction too: back to V1 replays the *old* warning
  // (still stored) rather than the fixed verdict.
  Session::RecheckOutcome Again = recheckOnce(E, V1);
  EXPECT_EQ(Again.Result.QualErrors, 1u);
  EXPECT_EQ(Again.Stats.Hits, 3u);
  EXPECT_EQ(Again.Stats.Rechecked, 0u);
}

// --------------------------------------------------------------------------
// Prover cache file + incremental store across a simulated restart
// --------------------------------------------------------------------------

TEST(Incremental, CacheFileSurvivesRestartButVerdictStoreDoesNot) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string CacheFile = Tmp.path("prover.cache");

  const std::string V1 = "int f0(int a) { int pos p = 0 - 1; return a; }\n"
                         "int main() { return f0(2); }\n";
  const std::string V2 = "int f0(int a) { int pos p = 1; return a; }\n"
                         "int main() { return f0(2); }\n";

  // "Process one": prove (populating the cache file) and warm the store.
  {
    Engine E1;
    SessionOptions Opts = withEngine(&E1, {"pos", "neg"});
    Opts.CacheFile = CacheFile;
    Session S(Opts);
    EXPECT_FALSE(S.prove().empty());
    Session::RecheckOutcome Out = S.recheck(V1);
    ASSERT_TRUE(Out.FrontEndOk);
    EXPECT_EQ(Out.Result.QualErrors, 1u);
  }
  ASSERT_TRUE(std::filesystem::exists(CacheFile));

  // "Process two": the prover cache file is back, the verdict store is
  // not — an edited function must get a fresh verdict, and even the
  // unedited source must re-check rather than resurrect anything.
  Engine E2;
  {
    SessionOptions Opts = withEngine(&E2, {"pos", "neg"});
    Opts.CacheFile = CacheFile;
    Session S(Opts);
    EXPECT_FALSE(S.prove().empty());
    Session::RecheckOutcome Stale = S.recheck(V1);
    EXPECT_EQ(Stale.Stats.Hits, 0u);
    EXPECT_EQ(Stale.Result.QualErrors, 1u);
  }
  {
    SessionOptions Opts = withEngine(&E2, {"pos", "neg"});
    Opts.CacheFile = CacheFile;
    Session S(Opts);
    Session::RecheckOutcome Fixed = S.recheck(V2);
    EXPECT_EQ(Fixed.Result.QualErrors, 0u);
    std::string WarmDiags;
    std::ostringstream OS;
    S.diags().print(OS);
    std::string ColdDiags;
    checkOnce(V2, &ColdDiags, {"pos", "neg"});
    EXPECT_EQ(OS.str(), ColdDiags);
  }
}

} // namespace
