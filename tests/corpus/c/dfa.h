// dfa.h — shared header for the grep-2.5 dfa analogue (section 6,
// Table 1). Shape mirrors the real dfa.h: configuration macros, the dfa
// struct with always-valid and lazily-built (nullable) tables, and the
// analyzer prototypes its includers link against.
#ifndef DFA_H
#define DFA_H

#define NOTCHAR 256
#define CHARBITS 8
#define TABSIZE(n) ((n) * NOTCHAR)

struct dfa {
  int nstates;
  int ntokens;
  int* nonnull charclasses;
  int* trans;
  int* fails;
};

int dfa_analyze(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_lookup(struct dfa* nonnull d, int idx);

#endif
