// alpha.c — the first unit: a clean chain of pos-preserving helpers.
// Figure 1's pos typerule derives positive constants, products of pos,
// and negation of neg — so the bodies stay inside products.
#include "shared.h"

int pos alpha_step(int pos a) {
  int pos r = SQUARE(a) * SCALE;
  return r;
}

int pos alpha_root(int pos a) {
  int pos r = alpha_step(a) * alpha_step(a * SCALE);
  return r;
}
