// shared.h — the cross-TU contract for the three-unit program: scaling
// macros and the prototypes alpha.c and beta.c export. main.c reaches
// both roots only through these declarations; the link step checks every
// TU's definition against them qualifier-for-qualifier.
#ifndef SHARED_H
#define SHARED_H

#define SCALE 3
#define SQUARE(x) ((x) * (x))
// Deliberately yields a negative value: the macro-expansion backtrace in
// beta.c's planted diagnostic points back through this definition.
#define FLIP(x) (0 - (x))

int pos alpha_root(int pos a);
int pos beta_root(int pos b);

#endif
