// main.c — the third unit: drives both roots through the header
// prototypes and prints the combined result.
#include "shared.h"

int main() {
  int pos a = alpha_root(SCALE);
  int pos b = beta_root(a);
  printf("%d\n", a + b);
  return 0;
}
