// main.c — runs the steps in order.
#include "stdio.h"
#include "mingetty.h"

int main() {
  int fd = 1;
  int rc = 0;
  rc = rc + parse_args(fd);
  rc = rc + open_tty(fd);
  rc = rc + output_issue(fd);
  rc = rc + read_login(fd);
  rc = rc + spawn_login(fd);
  printf("mingetty done rc=%d\n", rc);
  printf("tty ready\n");
  return rc % 2;
}
