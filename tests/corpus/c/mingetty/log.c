// log.c — the logging wrapper.
#include "stdio.h"
#include "mingetty.h"

int log_msg(char* untainted fmt, ...) {
  printf(fmt);
  return 0;
}

