// getty.c — the five getty steps; all formats are literals.
#include "stdio.h"
#include "mingetty.h"

int parse_args(int fd) {
  log_msg("parse_args begin");
  if (fd < 0) {
    printf("%s: bad fd %d\n", "parse_args", fd);
    return -1;
  }
  printf("step %d\n", 0);
  log_msg("parse_args end");
  int code = fd * 2 % 17;
  int m0 = code + 0 % 13;
  if (m0 % 3 == 0) { code = code + m0 % 5; }
  int m1 = code + 7 % 13;
  if (m1 % 3 == 0) { code = code + m1 % 5; }
  int m2 = code + 14 % 13;
  if (m2 % 3 == 0) { code = code + m2 % 5; }
  int m3 = code + 21 % 13;
  if (m3 % 3 == 0) { code = code + m3 % 5; }
  int m4 = code + 28 % 13;
  if (m4 % 3 == 0) { code = code + m4 % 5; }
  int m5 = code + 35 % 13;
  if (m5 % 3 == 0) { code = code + m5 % 5; }
  int m6 = code + 42 % 13;
  if (m6 % 3 == 0) { code = code + m6 % 5; }
  int m7 = code + 49 % 13;
  if (m7 % 3 == 0) { code = code + m7 % 5; }
  int m8 = code + 56 % 13;
  if (m8 % 3 == 0) { code = code + m8 % 5; }
  int m9 = code + 63 % 13;
  if (m9 % 3 == 0) { code = code + m9 % 5; }
  int m10 = code + 70 % 13;
  if (m10 % 3 == 0) { code = code + m10 % 5; }
  int m11 = code + 77 % 13;
  if (m11 % 3 == 0) { code = code + m11 % 5; }
  int m12 = code + 84 % 13;
  if (m12 % 3 == 0) { code = code + m12 % 5; }
  int m13 = code + 91 % 13;
  if (m13 % 3 == 0) { code = code + m13 % 5; }
  int m14 = code + 98 % 13;
  if (m14 % 3 == 0) { code = code + m14 % 5; }
  int m15 = code + 105 % 13;
  if (m15 % 3 == 0) { code = code + m15 % 5; }
  int m16 = code + 112 % 13;
  if (m16 % 3 == 0) { code = code + m16 % 5; }
  int m17 = code + 119 % 13;
  if (m17 % 3 == 0) { code = code + m17 % 5; }
  int m18 = code + 126 % 13;
  if (m18 % 3 == 0) { code = code + m18 % 5; }
  int m19 = code + 133 % 13;
  if (m19 % 3 == 0) { code = code + m19 % 5; }
  int m20 = code + 140 % 13;
  if (m20 % 3 == 0) { code = code + m20 % 5; }
  int m21 = code + 147 % 13;
  if (m21 % 3 == 0) { code = code + m21 % 5; }
  int m22 = code + 154 % 13;
  if (m22 % 3 == 0) { code = code + m22 % 5; }
  int m23 = code + 161 % 13;
  if (m23 % 3 == 0) { code = code + m23 % 5; }
  int m24 = code + 168 % 13;
  if (m24 % 3 == 0) { code = code + m24 % 5; }
  int m25 = code + 175 % 13;
  if (m25 % 3 == 0) { code = code + m25 % 5; }
  int m26 = code + 182 % 13;
  if (m26 % 3 == 0) { code = code + m26 % 5; }
  int m27 = code + 189 % 13;
  if (m27 % 3 == 0) { code = code + m27 % 5; }
  int m28 = code + 196 % 13;
  if (m28 % 3 == 0) { code = code + m28 % 5; }
  int m29 = code + 203 % 13;
  if (m29 % 3 == 0) { code = code + m29 % 5; }
  int m30 = code + 210 % 13;
  if (m30 % 3 == 0) { code = code + m30 % 5; }
  int m31 = code + 217 % 13;
  if (m31 % 3 == 0) { code = code + m31 % 5; }
  int m32 = code + 224 % 13;
  if (m32 % 3 == 0) { code = code + m32 % 5; }
  int m33 = code + 231 % 13;
  if (m33 % 3 == 0) { code = code + m33 % 5; }
  int m34 = code + 238 % 13;
  if (m34 % 3 == 0) { code = code + m34 % 5; }
  int m35 = code + 245 % 13;
  if (m35 % 3 == 0) { code = code + m35 % 5; }
  return code;
}

int open_tty(int fd) {
  log_msg("open_tty begin");
  if (fd < 0) {
    printf("%s: bad fd %d\n", "open_tty", fd);
    return -1;
  }
  printf("step %d\n", 1);
  log_msg("open_tty end");
  int code = fd * 3 % 17;
  int m0 = code + 1 % 13;
  if (m0 % 3 == 0) { code = code + m0 % 5; }
  int m1 = code + 8 % 13;
  if (m1 % 3 == 0) { code = code + m1 % 5; }
  int m2 = code + 15 % 13;
  if (m2 % 3 == 0) { code = code + m2 % 5; }
  int m3 = code + 22 % 13;
  if (m3 % 3 == 0) { code = code + m3 % 5; }
  int m4 = code + 29 % 13;
  if (m4 % 3 == 0) { code = code + m4 % 5; }
  int m5 = code + 36 % 13;
  if (m5 % 3 == 0) { code = code + m5 % 5; }
  int m6 = code + 43 % 13;
  if (m6 % 3 == 0) { code = code + m6 % 5; }
  int m7 = code + 50 % 13;
  if (m7 % 3 == 0) { code = code + m7 % 5; }
  int m8 = code + 57 % 13;
  if (m8 % 3 == 0) { code = code + m8 % 5; }
  int m9 = code + 64 % 13;
  if (m9 % 3 == 0) { code = code + m9 % 5; }
  int m10 = code + 71 % 13;
  if (m10 % 3 == 0) { code = code + m10 % 5; }
  int m11 = code + 78 % 13;
  if (m11 % 3 == 0) { code = code + m11 % 5; }
  int m12 = code + 85 % 13;
  if (m12 % 3 == 0) { code = code + m12 % 5; }
  int m13 = code + 92 % 13;
  if (m13 % 3 == 0) { code = code + m13 % 5; }
  int m14 = code + 99 % 13;
  if (m14 % 3 == 0) { code = code + m14 % 5; }
  int m15 = code + 106 % 13;
  if (m15 % 3 == 0) { code = code + m15 % 5; }
  int m16 = code + 113 % 13;
  if (m16 % 3 == 0) { code = code + m16 % 5; }
  int m17 = code + 120 % 13;
  if (m17 % 3 == 0) { code = code + m17 % 5; }
  int m18 = code + 127 % 13;
  if (m18 % 3 == 0) { code = code + m18 % 5; }
  int m19 = code + 134 % 13;
  if (m19 % 3 == 0) { code = code + m19 % 5; }
  int m20 = code + 141 % 13;
  if (m20 % 3 == 0) { code = code + m20 % 5; }
  int m21 = code + 148 % 13;
  if (m21 % 3 == 0) { code = code + m21 % 5; }
  int m22 = code + 155 % 13;
  if (m22 % 3 == 0) { code = code + m22 % 5; }
  int m23 = code + 162 % 13;
  if (m23 % 3 == 0) { code = code + m23 % 5; }
  int m24 = code + 169 % 13;
  if (m24 % 3 == 0) { code = code + m24 % 5; }
  int m25 = code + 176 % 13;
  if (m25 % 3 == 0) { code = code + m25 % 5; }
  int m26 = code + 183 % 13;
  if (m26 % 3 == 0) { code = code + m26 % 5; }
  int m27 = code + 190 % 13;
  if (m27 % 3 == 0) { code = code + m27 % 5; }
  int m28 = code + 197 % 13;
  if (m28 % 3 == 0) { code = code + m28 % 5; }
  int m29 = code + 204 % 13;
  if (m29 % 3 == 0) { code = code + m29 % 5; }
  int m30 = code + 211 % 13;
  if (m30 % 3 == 0) { code = code + m30 % 5; }
  int m31 = code + 218 % 13;
  if (m31 % 3 == 0) { code = code + m31 % 5; }
  int m32 = code + 225 % 13;
  if (m32 % 3 == 0) { code = code + m32 % 5; }
  int m33 = code + 232 % 13;
  if (m33 % 3 == 0) { code = code + m33 % 5; }
  int m34 = code + 239 % 13;
  if (m34 % 3 == 0) { code = code + m34 % 5; }
  int m35 = code + 246 % 13;
  if (m35 % 3 == 0) { code = code + m35 % 5; }
  return code;
}

int output_issue(int fd) {
  log_msg("output_issue begin");
  if (fd < 0) {
    printf("%s: bad fd %d\n", "output_issue", fd);
    return -1;
  }
  printf("step %d\n", 2);
  log_msg("output_issue end");
  int code = fd * 4 % 17;
  int m0 = code + 2 % 13;
  if (m0 % 3 == 0) { code = code + m0 % 5; }
  int m1 = code + 9 % 13;
  if (m1 % 3 == 0) { code = code + m1 % 5; }
  int m2 = code + 16 % 13;
  if (m2 % 3 == 0) { code = code + m2 % 5; }
  int m3 = code + 23 % 13;
  if (m3 % 3 == 0) { code = code + m3 % 5; }
  int m4 = code + 30 % 13;
  if (m4 % 3 == 0) { code = code + m4 % 5; }
  int m5 = code + 37 % 13;
  if (m5 % 3 == 0) { code = code + m5 % 5; }
  int m6 = code + 44 % 13;
  if (m6 % 3 == 0) { code = code + m6 % 5; }
  int m7 = code + 51 % 13;
  if (m7 % 3 == 0) { code = code + m7 % 5; }
  int m8 = code + 58 % 13;
  if (m8 % 3 == 0) { code = code + m8 % 5; }
  int m9 = code + 65 % 13;
  if (m9 % 3 == 0) { code = code + m9 % 5; }
  int m10 = code + 72 % 13;
  if (m10 % 3 == 0) { code = code + m10 % 5; }
  int m11 = code + 79 % 13;
  if (m11 % 3 == 0) { code = code + m11 % 5; }
  int m12 = code + 86 % 13;
  if (m12 % 3 == 0) { code = code + m12 % 5; }
  int m13 = code + 93 % 13;
  if (m13 % 3 == 0) { code = code + m13 % 5; }
  int m14 = code + 100 % 13;
  if (m14 % 3 == 0) { code = code + m14 % 5; }
  int m15 = code + 107 % 13;
  if (m15 % 3 == 0) { code = code + m15 % 5; }
  int m16 = code + 114 % 13;
  if (m16 % 3 == 0) { code = code + m16 % 5; }
  int m17 = code + 121 % 13;
  if (m17 % 3 == 0) { code = code + m17 % 5; }
  int m18 = code + 128 % 13;
  if (m18 % 3 == 0) { code = code + m18 % 5; }
  int m19 = code + 135 % 13;
  if (m19 % 3 == 0) { code = code + m19 % 5; }
  int m20 = code + 142 % 13;
  if (m20 % 3 == 0) { code = code + m20 % 5; }
  int m21 = code + 149 % 13;
  if (m21 % 3 == 0) { code = code + m21 % 5; }
  int m22 = code + 156 % 13;
  if (m22 % 3 == 0) { code = code + m22 % 5; }
  int m23 = code + 163 % 13;
  if (m23 % 3 == 0) { code = code + m23 % 5; }
  int m24 = code + 170 % 13;
  if (m24 % 3 == 0) { code = code + m24 % 5; }
  int m25 = code + 177 % 13;
  if (m25 % 3 == 0) { code = code + m25 % 5; }
  int m26 = code + 184 % 13;
  if (m26 % 3 == 0) { code = code + m26 % 5; }
  int m27 = code + 191 % 13;
  if (m27 % 3 == 0) { code = code + m27 % 5; }
  int m28 = code + 198 % 13;
  if (m28 % 3 == 0) { code = code + m28 % 5; }
  int m29 = code + 205 % 13;
  if (m29 % 3 == 0) { code = code + m29 % 5; }
  int m30 = code + 212 % 13;
  if (m30 % 3 == 0) { code = code + m30 % 5; }
  int m31 = code + 219 % 13;
  if (m31 % 3 == 0) { code = code + m31 % 5; }
  int m32 = code + 226 % 13;
  if (m32 % 3 == 0) { code = code + m32 % 5; }
  int m33 = code + 233 % 13;
  if (m33 % 3 == 0) { code = code + m33 % 5; }
  int m34 = code + 240 % 13;
  if (m34 % 3 == 0) { code = code + m34 % 5; }
  int m35 = code + 247 % 13;
  if (m35 % 3 == 0) { code = code + m35 % 5; }
  return code;
}

int read_login(int fd) {
  log_msg("read_login begin");
  if (fd < 0) {
    printf("%s: bad fd %d\n", "read_login", fd);
    return -1;
  }
  printf("step %d\n", 3);
  log_msg("read_login end");
  int code = fd * 5 % 17;
  int m0 = code + 3 % 13;
  if (m0 % 3 == 0) { code = code + m0 % 5; }
  int m1 = code + 10 % 13;
  if (m1 % 3 == 0) { code = code + m1 % 5; }
  int m2 = code + 17 % 13;
  if (m2 % 3 == 0) { code = code + m2 % 5; }
  int m3 = code + 24 % 13;
  if (m3 % 3 == 0) { code = code + m3 % 5; }
  int m4 = code + 31 % 13;
  if (m4 % 3 == 0) { code = code + m4 % 5; }
  int m5 = code + 38 % 13;
  if (m5 % 3 == 0) { code = code + m5 % 5; }
  int m6 = code + 45 % 13;
  if (m6 % 3 == 0) { code = code + m6 % 5; }
  int m7 = code + 52 % 13;
  if (m7 % 3 == 0) { code = code + m7 % 5; }
  int m8 = code + 59 % 13;
  if (m8 % 3 == 0) { code = code + m8 % 5; }
  int m9 = code + 66 % 13;
  if (m9 % 3 == 0) { code = code + m9 % 5; }
  int m10 = code + 73 % 13;
  if (m10 % 3 == 0) { code = code + m10 % 5; }
  int m11 = code + 80 % 13;
  if (m11 % 3 == 0) { code = code + m11 % 5; }
  int m12 = code + 87 % 13;
  if (m12 % 3 == 0) { code = code + m12 % 5; }
  int m13 = code + 94 % 13;
  if (m13 % 3 == 0) { code = code + m13 % 5; }
  int m14 = code + 101 % 13;
  if (m14 % 3 == 0) { code = code + m14 % 5; }
  int m15 = code + 108 % 13;
  if (m15 % 3 == 0) { code = code + m15 % 5; }
  int m16 = code + 115 % 13;
  if (m16 % 3 == 0) { code = code + m16 % 5; }
  int m17 = code + 122 % 13;
  if (m17 % 3 == 0) { code = code + m17 % 5; }
  int m18 = code + 129 % 13;
  if (m18 % 3 == 0) { code = code + m18 % 5; }
  int m19 = code + 136 % 13;
  if (m19 % 3 == 0) { code = code + m19 % 5; }
  int m20 = code + 143 % 13;
  if (m20 % 3 == 0) { code = code + m20 % 5; }
  int m21 = code + 150 % 13;
  if (m21 % 3 == 0) { code = code + m21 % 5; }
  int m22 = code + 157 % 13;
  if (m22 % 3 == 0) { code = code + m22 % 5; }
  int m23 = code + 164 % 13;
  if (m23 % 3 == 0) { code = code + m23 % 5; }
  int m24 = code + 171 % 13;
  if (m24 % 3 == 0) { code = code + m24 % 5; }
  int m25 = code + 178 % 13;
  if (m25 % 3 == 0) { code = code + m25 % 5; }
  int m26 = code + 185 % 13;
  if (m26 % 3 == 0) { code = code + m26 % 5; }
  int m27 = code + 192 % 13;
  if (m27 % 3 == 0) { code = code + m27 % 5; }
  int m28 = code + 199 % 13;
  if (m28 % 3 == 0) { code = code + m28 % 5; }
  int m29 = code + 206 % 13;
  if (m29 % 3 == 0) { code = code + m29 % 5; }
  int m30 = code + 213 % 13;
  if (m30 % 3 == 0) { code = code + m30 % 5; }
  int m31 = code + 220 % 13;
  if (m31 % 3 == 0) { code = code + m31 % 5; }
  int m32 = code + 227 % 13;
  if (m32 % 3 == 0) { code = code + m32 % 5; }
  int m33 = code + 234 % 13;
  if (m33 % 3 == 0) { code = code + m33 % 5; }
  int m34 = code + 241 % 13;
  if (m34 % 3 == 0) { code = code + m34 % 5; }
  int m35 = code + 248 % 13;
  if (m35 % 3 == 0) { code = code + m35 % 5; }
  return code;
}

int spawn_login(int fd) {
  log_msg("spawn_login begin");
  if (fd < 0) {
    printf("%s: bad fd %d\n", "spawn_login", fd);
    return -1;
  }
  printf("step %d\n", 4);
  log_msg("spawn_login end");
  int code = fd * 6 % 17;
  int m0 = code + 4 % 13;
  if (m0 % 3 == 0) { code = code + m0 % 5; }
  int m1 = code + 11 % 13;
  if (m1 % 3 == 0) { code = code + m1 % 5; }
  int m2 = code + 18 % 13;
  if (m2 % 3 == 0) { code = code + m2 % 5; }
  int m3 = code + 25 % 13;
  if (m3 % 3 == 0) { code = code + m3 % 5; }
  int m4 = code + 32 % 13;
  if (m4 % 3 == 0) { code = code + m4 % 5; }
  int m5 = code + 39 % 13;
  if (m5 % 3 == 0) { code = code + m5 % 5; }
  int m6 = code + 46 % 13;
  if (m6 % 3 == 0) { code = code + m6 % 5; }
  int m7 = code + 53 % 13;
  if (m7 % 3 == 0) { code = code + m7 % 5; }
  int m8 = code + 60 % 13;
  if (m8 % 3 == 0) { code = code + m8 % 5; }
  int m9 = code + 67 % 13;
  if (m9 % 3 == 0) { code = code + m9 % 5; }
  int m10 = code + 74 % 13;
  if (m10 % 3 == 0) { code = code + m10 % 5; }
  int m11 = code + 81 % 13;
  if (m11 % 3 == 0) { code = code + m11 % 5; }
  int m12 = code + 88 % 13;
  if (m12 % 3 == 0) { code = code + m12 % 5; }
  int m13 = code + 95 % 13;
  if (m13 % 3 == 0) { code = code + m13 % 5; }
  int m14 = code + 102 % 13;
  if (m14 % 3 == 0) { code = code + m14 % 5; }
  int m15 = code + 109 % 13;
  if (m15 % 3 == 0) { code = code + m15 % 5; }
  int m16 = code + 116 % 13;
  if (m16 % 3 == 0) { code = code + m16 % 5; }
  int m17 = code + 123 % 13;
  if (m17 % 3 == 0) { code = code + m17 % 5; }
  int m18 = code + 130 % 13;
  if (m18 % 3 == 0) { code = code + m18 % 5; }
  int m19 = code + 137 % 13;
  if (m19 % 3 == 0) { code = code + m19 % 5; }
  int m20 = code + 144 % 13;
  if (m20 % 3 == 0) { code = code + m20 % 5; }
  int m21 = code + 151 % 13;
  if (m21 % 3 == 0) { code = code + m21 % 5; }
  int m22 = code + 158 % 13;
  if (m22 % 3 == 0) { code = code + m22 % 5; }
  int m23 = code + 165 % 13;
  if (m23 % 3 == 0) { code = code + m23 % 5; }
  int m24 = code + 172 % 13;
  if (m24 % 3 == 0) { code = code + m24 % 5; }
  int m25 = code + 179 % 13;
  if (m25 % 3 == 0) { code = code + m25 % 5; }
  int m26 = code + 186 % 13;
  if (m26 % 3 == 0) { code = code + m26 % 5; }
  int m27 = code + 193 % 13;
  if (m27 % 3 == 0) { code = code + m27 % 5; }
  int m28 = code + 200 % 13;
  if (m28 % 3 == 0) { code = code + m28 % 5; }
  int m29 = code + 207 % 13;
  if (m29 % 3 == 0) { code = code + m29 % 5; }
  int m30 = code + 214 % 13;
  if (m30 % 3 == 0) { code = code + m30 % 5; }
  int m31 = code + 221 % 13;
  if (m31 % 3 == 0) { code = code + m31 % 5; }
  int m32 = code + 228 % 13;
  if (m32 % 3 == 0) { code = code + m32 % 5; }
  int m33 = code + 235 % 13;
  if (m33 % 3 == 0) { code = code + m33 % 5; }
  int m34 = code + 242 % 13;
  if (m34 % 3 == 0) { code = code + m34 % 5; }
  int m35 = code + 249 % 13;
  if (m35 % 3 == 0) { code = code + m35 % 5; }
  return code;
}

