// mingetty.h — step interfaces; the logging wrapper's format
// parameter is the program's single annotation.
#ifndef MINGETTY_H
#define MINGETTY_H

int log_msg(char* untainted fmt, ...);
int parse_args(int fd);
int open_tty(int fd);
int output_issue(int fd);
int read_login(int fd);
int spawn_login(int fd);

#endif
