// dfa.h — the DFA object and module interfaces of the grep 2.5
// dfa.c analogue, in the post-fixpoint annotated form Table 1
// reports: the always-valid tables and entry points carry
// nonnull; the lazily-built tables stay plain.
#ifndef DFA_H
#define DFA_H

#define DFA_TABLEN 64
#define DFA_NSTATES(n) ((n) * 2)

struct dfa {
  int nstates;
  int ntokens;
  int depth;
  int tindex;
  int nleaves;
  int nregexps;
  int searchflag;
  int trcount;
  int* nonnull success;
  int* nonnull newlines;
  int* nonnull charclasses;
  int* nonnull states;
  int* nonnull follows;
  int* nonnull positions;
  int* trans;
  int* realtrans;
  int* fails;
  int* musts;
  char* mustmatch;
};

int dfa_analyze_0(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_1(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_2(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_3(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_4(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_5(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_6(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_7(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_8(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_9(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_10(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_analyze_11(struct dfa* nonnull d, int* nonnull buf, int n);
int dfa_lookup_0(struct dfa* nonnull d, int works);
int dfa_lookup_1(struct dfa* nonnull d, int works);
int dfa_lookup_2(struct dfa* nonnull d, int works);
int dfa_lookup_3(struct dfa* nonnull d, int works);
int dfa_lookup_4(struct dfa* nonnull d, int works);
int dfa_lookup_5(struct dfa* nonnull d, int works);
int dfa_lookup_6(struct dfa* nonnull d, int works);
int dfa_lookup_7(struct dfa* nonnull d, int works);
int dfa_lookup_8(struct dfa* nonnull d, int works);
int dfa_lookup_9(struct dfa* nonnull d, int works);
int dfa_lookup_10(struct dfa* nonnull d, int works);
int dfa_lookup_11(struct dfa* nonnull d, int works);
int dfa_lookup_12(struct dfa* nonnull d, int works);
int dfa_lookup_13(struct dfa* nonnull d, int works);
int dfa_lookup_14(struct dfa* nonnull d, int works);
int dfa_lookup_15(struct dfa* nonnull d, int works);
int dfa_lookup_16(struct dfa* nonnull d, int works);
int dfa_lookup_17(struct dfa* nonnull d, int works);
int dfa_lookup_18(struct dfa* nonnull d, int works);
int dfa_lookup_19(struct dfa* nonnull d, int works);
int dfa_lookup_20(struct dfa* nonnull d, int works);
int dfa_lookup_21(struct dfa* nonnull d, int works);
int dfa_lookup_22(struct dfa* nonnull d, int works);
int dfa_lookup_23(struct dfa* nonnull d, int works);
int dfa_lookup_24(struct dfa* nonnull d, int works);
void dfa_build(struct dfa* nonnull d, int n);
void dfa_materialize(struct dfa* nonnull d, int n);
void dfa_reset(struct dfa* nonnull d);

#endif
