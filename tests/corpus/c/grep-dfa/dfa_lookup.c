// dfa_lookup.c — lazily-built tables read behind NULL guards;
// each guarded read goes through a nonnull-cast alias, the
// paper's main source of casts under flow-insensitive checking.
#include "dfa.h"

int dfa_lookup_0(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nstates;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->tindex;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nstates % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->ntokens % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->depth % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->tindex % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nleaves % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nregexps % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_1(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->ntokens;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nleaves;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->ntokens % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->depth % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->tindex % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nleaves % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nregexps % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->searchflag % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_2(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->depth;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nregexps;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->depth % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->tindex % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nleaves % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nregexps % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->searchflag % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->trcount % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_3(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->tindex;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->searchflag;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->tindex % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nleaves % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nregexps % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->searchflag % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->trcount % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nstates % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_4(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nleaves;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->trcount;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nleaves % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nregexps % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->searchflag % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->trcount % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nstates % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->ntokens % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_5(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nregexps;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nstates;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nregexps % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->searchflag % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->trcount % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nstates % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->ntokens % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->depth % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_6(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->searchflag;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->ntokens;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->searchflag % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->trcount % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nstates % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->ntokens % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->depth % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->tindex % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_7(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->trcount;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->depth;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->trcount % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nstates % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->ntokens % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->depth % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->tindex % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nleaves % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_8(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nstates;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->tindex;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nstates % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->ntokens % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->depth % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->tindex % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nleaves % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nregexps % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_9(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->ntokens;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nleaves;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->ntokens % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->depth % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->tindex % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nleaves % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nregexps % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->searchflag % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_10(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->depth;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nregexps;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->depth % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->tindex % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nleaves % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nregexps % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->searchflag % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->trcount % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_11(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->tindex;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->searchflag;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->tindex % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nleaves % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nregexps % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->searchflag % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->trcount % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nstates % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_12(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nleaves;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->trcount;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nleaves % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nregexps % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->searchflag % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->trcount % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nstates % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->ntokens % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_13(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nregexps;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nstates;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nregexps % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->searchflag % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->trcount % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nstates % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->ntokens % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->depth % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_14(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->searchflag;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->ntokens;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->searchflag % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->trcount % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nstates % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->ntokens % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->depth % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->tindex % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_15(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->trcount;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->depth;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->trcount % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nstates % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->ntokens % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->depth % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->tindex % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nleaves % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_16(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nstates;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->tindex;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nstates % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->ntokens % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->depth % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->tindex % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nleaves % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nregexps % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_17(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->ntokens;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nleaves;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->ntokens % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->depth % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->tindex % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nleaves % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nregexps % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->searchflag % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_18(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->depth;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nregexps;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->depth % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->tindex % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nleaves % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nregexps % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->searchflag % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->trcount % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_19(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->tindex;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->searchflag;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->tindex % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nleaves % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nregexps % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->searchflag % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->trcount % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nstates % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_20(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nleaves;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->trcount;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nleaves % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nregexps % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->searchflag % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->trcount % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nstates % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->ntokens % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_21(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nregexps;
  t = d->realtrans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->fails;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->nstates;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nregexps % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->searchflag % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->trcount % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->nstates % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->ntokens % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->depth % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_22(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->searchflag;
  t = d->fails;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->musts;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->ntokens;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->searchflag % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->trcount % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->nstates % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->ntokens % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->depth % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->tindex % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_23(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->trcount;
  t = d->musts;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->trans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->depth;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->trcount % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->nstates % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->ntokens % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->depth % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->tindex % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nleaves % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

int dfa_lookup_24(struct dfa* nonnull d, int works) {
  int* t;
  int* u;
  int acc = d->nstates;
  t = d->trans;
  if (t != NULL) {
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[works];
    acc = acc + tt[works + 1];
    acc = acc - tt[0];
  }
  u = d->realtrans;
  if (u != NULL) {
    int* nonnull uu = (int* nonnull)(u);
    acc = acc + uu[works % 8];
    acc = acc + uu[1] * 2;
  }
  acc = acc + d->tindex;
  int h0 = acc * 2 % 8191;
  if (h0 % 2 == 0) { acc = acc + h0; } else { acc = acc - h0 / 3; }
  acc = acc + d->nstates % 31;
  int h1 = acc * 3 % 8191;
  if (h1 % 2 == 0) { acc = acc + h1; } else { acc = acc - h1 / 3; }
  acc = acc + d->ntokens % 31;
  int h2 = acc * 4 % 8191;
  if (h2 % 2 == 0) { acc = acc + h2; } else { acc = acc - h2 / 3; }
  acc = acc + d->depth % 31;
  int h3 = acc * 5 % 8191;
  if (h3 % 2 == 0) { acc = acc + h3; } else { acc = acc - h3 / 3; }
  acc = acc + d->tindex % 31;
  int h4 = acc * 6 % 8191;
  if (h4 % 2 == 0) { acc = acc + h4; } else { acc = acc - h4 / 3; }
  acc = acc + d->nleaves % 31;
  int h5 = acc * 7 % 8191;
  if (h5 % 2 == 0) { acc = acc + h5; } else { acc = acc - h5 / 3; }
  acc = acc + d->nregexps % 31;
  int scaled = acc * 5 % 9973;
  if (scaled < 0) scaled = -scaled;
  return scaled;
}

