// main.c — driver: builds the DFA, materializes the lazy
// tables, and runs every analyzer and lookup.
#include "dfa.h"

int main() {
  struct dfa* nonnull d = (struct dfa* nonnull) malloc(sizeof(struct dfa));
  int* nonnull scratch = (int* nonnull) malloc(sizeof(int) * DFA_TABLEN);
  dfa_build(d, DFA_TABLEN);
  dfa_materialize(d, DFA_TABLEN);
  int total = 0;
  total = total + dfa_analyze_0(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_1(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_2(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_3(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_4(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_5(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_6(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_7(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_8(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_9(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_10(d, scratch, DFA_TABLEN);
  total = total + dfa_analyze_11(d, scratch, DFA_TABLEN);
  total = total + dfa_lookup_0(d, 0);
  total = total + dfa_lookup_1(d, 1);
  total = total + dfa_lookup_2(d, 2);
  total = total + dfa_lookup_3(d, 3);
  total = total + dfa_lookup_4(d, 4);
  total = total + dfa_lookup_5(d, 5);
  total = total + dfa_lookup_6(d, 6);
  total = total + dfa_lookup_7(d, 7);
  total = total + dfa_lookup_8(d, 0);
  total = total + dfa_lookup_9(d, 1);
  total = total + dfa_lookup_10(d, 2);
  total = total + dfa_lookup_11(d, 3);
  total = total + dfa_lookup_12(d, 4);
  total = total + dfa_lookup_13(d, 5);
  total = total + dfa_lookup_14(d, 6);
  total = total + dfa_lookup_15(d, 7);
  total = total + dfa_lookup_16(d, 0);
  total = total + dfa_lookup_17(d, 1);
  total = total + dfa_lookup_18(d, 2);
  total = total + dfa_lookup_19(d, 3);
  total = total + dfa_lookup_20(d, 4);
  total = total + dfa_lookup_21(d, 5);
  total = total + dfa_lookup_22(d, 6);
  total = total + dfa_lookup_23(d, 7);
  total = total + dfa_lookup_24(d, 0);
  dfa_reset(d);
  return total % 256;
}
