// dfa_build.c — table construction and reset: malloc results
// enter nonnull fields through casts; the lazy tables are
// materialized through per-site casts and reset to NULL.
#include "dfa.h"

void dfa_build(struct dfa* nonnull d, int n) {
  d->success = (int* nonnull) malloc(sizeof(int) * n);
  d->newlines = (int* nonnull) malloc(sizeof(int) * n);
  d->charclasses = (int* nonnull) malloc(sizeof(int) * n);
  d->states = (int* nonnull) malloc(sizeof(int) * n);
  d->follows = (int* nonnull) malloc(sizeof(int) * n);
  d->positions = (int* nonnull) malloc(sizeof(int) * n);
  d->trans = NULL;
  d->realtrans = NULL;
  d->fails = NULL;
  d->musts = NULL;
  d->nstates = n;
  d->ntokens = DFA_NSTATES(n);
  for (int i = 0; i < n; i = i + 1) {
    d->success[i] = i;
    d->newlines[i] = i;
    d->charclasses[i] = i;
    d->states[i] = i;
    d->follows[i] = i;
    d->positions[i] = i;
  }
}

void dfa_materialize(struct dfa* nonnull d, int n) {
  d->trans = (int*) malloc(sizeof(int) * n);
  d->realtrans = (int*) malloc(sizeof(int) * n);
  d->fails = (int*) malloc(sizeof(int) * n);
  d->musts = (int*) malloc(sizeof(int) * n);
  for (int i = 0; i < n; i = i + 1) {
    ((int* nonnull)(d->trans))[i] = i % 3;
    ((int* nonnull)(d->realtrans))[i] = i % 3;
    ((int* nonnull)(d->fails))[i] = i % 3;
    ((int* nonnull)(d->musts))[i] = i % 3;
  }
}

void dfa_reset(struct dfa* nonnull d) {
  d->trans = NULL;
  d->realtrans = NULL;
  d->fails = NULL;
  d->musts = NULL;
  d->trcount = 0;
}

