// dfa_analyze.c — analyzer passes: heavy dereferencing of the
// DFA's always-valid tables and the caller's scratch buffer
// (Table 1's dereference column).
#include "dfa.h"

int dfa_analyze_0(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->success[1];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[2];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[3];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[4];
  acc = acc * 2 - d->states[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->nstates;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->ntokens;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->depth;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->tindex;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->nleaves;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->nregexps;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->searchflag;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->trcount;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->nstates;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->ntokens;
  acc = acc + d->nstates * 2;
  acc = acc + d->success[2];
  return acc;
}

int dfa_analyze_1(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->newlines[1];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[2];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[3];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[4];
  acc = acc * 2 - d->follows[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->ntokens;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->depth;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->tindex;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->nleaves;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->nregexps;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->searchflag;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->trcount;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->nstates;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->ntokens;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->depth;
  acc = acc + d->ntokens * 2;
  acc = acc + d->newlines[2];
  return acc;
}

int dfa_analyze_2(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->charclasses[1];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[2];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[3];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[4];
  acc = acc * 2 - d->positions[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->depth;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->tindex;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->nleaves;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->nregexps;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->searchflag;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->trcount;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->nstates;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->ntokens;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->depth;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->tindex;
  acc = acc + d->depth * 2;
  acc = acc + d->charclasses[2];
  return acc;
}

int dfa_analyze_3(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->states[1];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[2];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[3];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[4];
  acc = acc * 2 - d->success[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->tindex;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->nleaves;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->nregexps;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->searchflag;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->trcount;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->nstates;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->ntokens;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->depth;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->tindex;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->nleaves;
  acc = acc + d->tindex * 2;
  acc = acc + d->states[2];
  return acc;
}

int dfa_analyze_4(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->follows[1];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[2];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[3];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[4];
  acc = acc * 2 - d->newlines[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->nleaves;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->nregexps;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->searchflag;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->trcount;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->nstates;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->ntokens;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->depth;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->tindex;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->nleaves;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->nregexps;
  acc = acc + d->nleaves * 2;
  acc = acc + d->follows[2];
  return acc;
}

int dfa_analyze_5(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->positions[1];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[2];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[3];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[4];
  acc = acc * 2 - d->charclasses[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->nregexps;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->searchflag;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->trcount;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->nstates;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->ntokens;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->depth;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->tindex;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->nleaves;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->nregexps;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->searchflag;
  acc = acc + d->nregexps * 2;
  acc = acc + d->positions[2];
  return acc;
}

int dfa_analyze_6(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->success[1];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[2];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[3];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[4];
  acc = acc * 2 - d->states[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->searchflag;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->trcount;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->nstates;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->ntokens;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->depth;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->tindex;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->nleaves;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->nregexps;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->searchflag;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->trcount;
  acc = acc + d->searchflag * 2;
  acc = acc + d->success[2];
  return acc;
}

int dfa_analyze_7(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->newlines[1];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[2];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[3];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[4];
  acc = acc * 2 - d->follows[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->trcount;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->nstates;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->ntokens;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->depth;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->tindex;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->nleaves;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->nregexps;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->searchflag;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->trcount;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->nstates;
  acc = acc + d->trcount * 2;
  acc = acc + d->newlines[2];
  return acc;
}

int dfa_analyze_8(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->charclasses[1];
  acc = acc * 2 - d->charclasses[0];
  acc = acc + d->states[2];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[3];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[4];
  acc = acc * 2 - d->positions[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->nstates;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->ntokens;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->depth;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->tindex;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->nleaves;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->nregexps;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->searchflag;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->trcount;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->nstates;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->ntokens;
  acc = acc + d->nstates * 2;
  acc = acc + d->charclasses[2];
  return acc;
}

int dfa_analyze_9(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->states[1];
  acc = acc * 2 - d->states[0];
  acc = acc + d->follows[2];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[3];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[4];
  acc = acc * 2 - d->success[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->ntokens;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->depth;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->tindex;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->nleaves;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->nregexps;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->searchflag;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->trcount;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->nstates;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->ntokens;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->depth;
  acc = acc + d->ntokens * 2;
  acc = acc + d->states[2];
  return acc;
}

int dfa_analyze_10(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->depth;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->follows[1];
  acc = acc * 2 - d->follows[0];
  acc = acc + d->positions[2];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[3];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[4];
  acc = acc * 2 - d->newlines[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->depth;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->tindex;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->nleaves;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->nregexps;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->searchflag;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->trcount;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->nstates;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->ntokens;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->depth;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->tindex;
  acc = acc + d->depth * 2;
  acc = acc + d->follows[2];
  return acc;
}

int dfa_analyze_11(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = 0;
  int limit = n;
  if (limit > DFA_TABLEN) limit = DFA_TABLEN;
  acc = acc + d->tindex;
  acc = acc + d->nleaves;
  acc = acc + d->nregexps;
  acc = acc + d->searchflag;
  acc = acc + d->trcount;
  acc = acc + d->nstates;
  acc = acc + d->ntokens;
  acc = acc + d->depth;
  acc = acc + d->positions[1];
  acc = acc * 2 - d->positions[0];
  acc = acc + d->success[2];
  acc = acc * 2 - d->success[0];
  acc = acc + d->newlines[3];
  acc = acc * 2 - d->newlines[0];
  acc = acc + d->charclasses[4];
  acc = acc * 2 - d->charclasses[0];
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  int tmp0 = acc * 3 + 1;
  int tmp1 = tmp0 - n;
  int tmp2 = tmp1 * tmp1;
  if (tmp2 > acc) { acc = tmp2 - acc; } else { acc = acc - tmp2; }
  while (acc > 100000) { acc = acc / 2; }
  int st0 = (acc + 1) % 251;
  if (st0 > 125) { st0 = 250 - st0; }
  acc = acc + st0 * 1;
  acc = acc + d->tindex;
  int st1 = (acc + 4) % 251;
  if (st1 > 125) { st1 = 250 - st1; }
  acc = acc + st1 * 2;
  acc = acc + d->nleaves;
  int st2 = (acc + 7) % 251;
  if (st2 > 125) { st2 = 250 - st2; }
  acc = acc + st2 * 3;
  acc = acc + d->nregexps;
  int st3 = (acc + 10) % 251;
  if (st3 > 125) { st3 = 250 - st3; }
  acc = acc + st3 * 4;
  acc = acc + d->searchflag;
  int st4 = (acc + 13) % 251;
  if (st4 > 125) { st4 = 250 - st4; }
  acc = acc + st4 * 5;
  acc = acc + d->trcount;
  int st5 = (acc + 16) % 251;
  if (st5 > 125) { st5 = 250 - st5; }
  acc = acc + st5 * 6;
  acc = acc + d->nstates;
  int st6 = (acc + 19) % 251;
  if (st6 > 125) { st6 = 250 - st6; }
  acc = acc + st6 * 7;
  acc = acc + d->ntokens;
  int st7 = (acc + 22) % 251;
  if (st7 > 125) { st7 = 250 - st7; }
  acc = acc + st7 * 8;
  acc = acc + d->depth;
  int st8 = (acc + 25) % 251;
  if (st8 > 125) { st8 = 250 - st8; }
  acc = acc + st8 * 9;
  acc = acc + d->tindex;
  int st9 = (acc + 28) % 251;
  if (st9 > 125) { st9 = 250 - st9; }
  acc = acc + st9 * 10;
  acc = acc + d->nleaves;
  acc = acc + d->tindex * 2;
  acc = acc + d->positions[2];
  return acc;
}

