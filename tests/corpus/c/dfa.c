// dfa.c — the analyzer bodies for dfa.h. The analyzers dereference the
// always-valid tables freely; the lazily-built tables are read behind
// NULL guards, the flow-insensitivity idiom the paper reports as grep's
// main source of casts. The one unguarded read of a nullable table below
// is the planted Table-1-style diagnostic the golden file expects.
#include "dfa.h"

int dfa_analyze(struct dfa* nonnull d, int* nonnull buf, int n) {
  int acc = d->nstates + d->ntokens;
  int limit = n;
  if (limit > NOTCHAR) {
    limit = NOTCHAR;
  }
  for (int i = 0; i < limit; i = i + 1) {
    buf[i] = acc + i;
    acc = acc + buf[i] % 7;
  }
  acc = acc + d->charclasses[0];
  return acc % TABSIZE(2);
}

int dfa_lookup(struct dfa* nonnull d, int idx) {
  int* t;
  int acc = d->nstates;
  t = d->trans;
  if (t != NULL) {
    // The guard defeats the flow-insensitive checker; the paper's
    // annotators put sanctioned run-time casts exactly here.
    int* nonnull tt = (int* nonnull)(t);
    acc = acc + tt[idx];
    acc = acc - tt[0];
  }
  // Planted: reading fails without a guard cannot be proven nonnull.
  acc = acc + d->fails[idx];
  return acc;
}
