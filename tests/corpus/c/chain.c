// chain.c — pins the include-chain rendering: the planted warning lives
// two includes deep (chain.c -> outer.h -> inner.h), so its diagnostic
// must carry both "in file included from" notes, innermost first.
#include "outer.h"

int main() {
  return leaky() % 2;
}
