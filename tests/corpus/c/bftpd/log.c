// log.c — the reply and logging wrappers; their format
// parameters are the program's two annotations.
#include "stdio.h"
#include "bftpd.h"

int sendstrf(int s, char* untainted format, ...) {
  printf(format);
  return s;
}

int bftpd_log(int level, char* untainted fmt, ...) {
  printf(fmt);
  return level;
}

