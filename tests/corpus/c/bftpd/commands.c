// commands.c — the FTP command handlers; every reply format
// is a string literal, so none needs annotation.
#include "bftpd.h"

void command_user(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling user");
  sendstrf(s->sock, "220 Service ready.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 1 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 2 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 3 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 4 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 5 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 6 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 7 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 8 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 9 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 10 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 11 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 12 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_pass(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling pass");
  sendstrf(s->sock, "331 Password required for user.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 2 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 3 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 4 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 5 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 6 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 7 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 8 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 9 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 10 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 11 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 12 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 13 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_cwd(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling cwd");
  sendstrf(s->sock, "230 User logged in.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 3 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 4 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 5 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 6 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 7 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 8 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 9 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 10 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 11 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 12 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 13 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 14 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_list(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling list");
  sendstrf(s->sock, "250 Requested action okay.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 4 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 5 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 6 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 7 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 8 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 9 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 10 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 11 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 12 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 13 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 14 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 15 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_retr(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling retr");
  sendstrf(s->sock, "425 Cannot open connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 5 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 6 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 7 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 8 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 9 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 10 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 11 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 12 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 13 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 14 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 15 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 16 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_stor(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling stor");
  sendstrf(s->sock, "226 Closing data connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 6 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 7 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 8 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 9 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 10 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 11 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 12 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 13 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 14 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 15 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 16 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 17 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_dele(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling dele");
  sendstrf(s->sock, "550 Permission denied.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 7 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 8 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 9 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 10 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 11 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 12 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 13 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 14 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 15 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 16 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 17 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 18 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_mkd(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling mkd");
  sendstrf(s->sock, "221 Goodbye.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 8 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 9 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 10 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 11 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 12 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 13 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 14 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 15 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 16 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 17 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 18 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 19 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_rmd(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling rmd");
  sendstrf(s->sock, "200 Command okay.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 9 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 10 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 11 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 12 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 13 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 14 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 15 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 16 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 17 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 18 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 19 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 20 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_pwd(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling pwd");
  sendstrf(s->sock, "502 Command not implemented.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 10 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 11 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 12 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 13 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 14 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 15 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 16 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 17 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 18 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 19 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 20 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 21 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_syst(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling syst");
  sendstrf(s->sock, "220 Service ready.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 11 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 12 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 13 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 14 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 15 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 16 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 17 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 18 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 19 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 20 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 21 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 22 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_type(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling type");
  sendstrf(s->sock, "331 Password required for user.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 12 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 13 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 14 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 15 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 16 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 17 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 18 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 19 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 20 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 21 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 22 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 23 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_port(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling port");
  sendstrf(s->sock, "230 User logged in.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 13 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 14 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 15 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 16 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 17 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 18 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 19 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 20 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 21 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 22 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 23 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 24 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_pasv(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling pasv");
  sendstrf(s->sock, "250 Requested action okay.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 14 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 15 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 16 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 17 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 18 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 19 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 20 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 21 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 22 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 23 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 24 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 25 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_quit(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling quit");
  sendstrf(s->sock, "425 Cannot open connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 15 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 16 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 17 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 18 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 19 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 20 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 21 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 22 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 23 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 24 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 25 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 26 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_noop(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling noop");
  sendstrf(s->sock, "226 Closing data connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 16 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 17 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 18 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 19 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 20 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 21 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 22 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 23 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 24 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 25 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 26 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 27 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_abor(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling abor");
  sendstrf(s->sock, "550 Permission denied.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 17 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 18 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 19 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 20 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 21 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 22 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 23 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 24 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 25 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 26 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 27 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 28 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_rest(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling rest");
  sendstrf(s->sock, "221 Goodbye.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 18 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 19 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 20 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 21 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 22 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 23 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 24 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 25 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 26 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 27 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 28 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 29 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_rnfr(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling rnfr");
  sendstrf(s->sock, "200 Command okay.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 19 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 20 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 21 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 22 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 23 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 24 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 25 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 26 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 27 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 28 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 29 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 30 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_rnto(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling rnto");
  sendstrf(s->sock, "502 Command not implemented.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 20 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 21 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 22 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 23 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 24 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 25 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 26 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 27 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 28 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 29 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 30 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 31 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_site(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling site");
  sendstrf(s->sock, "220 Service ready.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 21 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 22 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 23 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 24 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 25 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 26 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 27 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 28 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 29 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 30 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 31 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 32 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_mdtm(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling mdtm");
  sendstrf(s->sock, "331 Password required for user.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 22 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 23 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 24 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 25 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 26 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 27 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 28 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 29 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 30 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 31 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 32 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 33 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_size(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling size");
  sendstrf(s->sock, "230 User logged in.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 23 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 24 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 25 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 26 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 27 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 28 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 29 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 30 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 31 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 32 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 33 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 34 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_appe(struct session* s, char* arg) {
  if (s->logged_in == 0 && 2 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling appe");
  sendstrf(s->sock, "250 Requested action okay.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 24 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 25 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 26 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 27 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 28 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 29 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 30 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 31 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 32 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 33 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 34 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 35 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_stat(struct session* s, char* arg) {
  if (s->logged_in == 0 && 0 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling stat");
  sendstrf(s->sock, "425 Cannot open connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 25 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 26 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 27 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 28 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 29 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 30 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 31 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 32 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 33 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 34 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 35 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 36 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

void command_help(struct session* s, char* arg) {
  if (s->logged_in == 0 && 1 == 0) {
    sendstrf(s->sock, "530 Not logged in.");
    return;
  }
  bftpd_log(1, "handling help");
  sendstrf(s->sock, "226 Closing data connection.");
  if (arg != NULL) {
    bftpd_log(2, "arg present");
    sendstrf(s->sock, "200 Noted.");
  }
  int c0 = s->sock * 26 % 199;
  if (c0 > 99) { s->logged_in = s->logged_in + 0; }
  int c1 = s->sock * 27 % 199;
  if (c1 > 99) { s->logged_in = s->logged_in + 0; }
  int c2 = s->sock * 28 % 199;
  if (c2 > 99) { s->logged_in = s->logged_in + 0; }
  int c3 = s->sock * 29 % 199;
  if (c3 > 99) { s->logged_in = s->logged_in + 0; }
  int c4 = s->sock * 30 % 199;
  if (c4 > 99) { s->logged_in = s->logged_in + 0; }
  int c5 = s->sock * 31 % 199;
  if (c5 > 99) { s->logged_in = s->logged_in + 0; }
  int c6 = s->sock * 32 % 199;
  if (c6 > 99) { s->logged_in = s->logged_in + 0; }
  int c7 = s->sock * 33 % 199;
  if (c7 > 99) { s->logged_in = s->logged_in + 0; }
  int c8 = s->sock * 34 % 199;
  if (c8 > 99) { s->logged_in = s->logged_in + 0; }
  int c9 = s->sock * 35 % 199;
  if (c9 > 99) { s->logged_in = s->logged_in + 0; }
  int c10 = s->sock * 36 % 199;
  if (c10 > 99) { s->logged_in = s->logged_in + 0; }
  int c11 = s->sock * 37 % 199;
  if (c11 > 99) { s->logged_in = s->logged_in + 0; }
}

