// bftpd.h — session state and the reply/logging interfaces
// whose format parameters §6.1's fixpoint annotates untainted.
#ifndef BFTPD_H
#define BFTPD_H

#include "dirent.h"

struct session { int sock; int logged_in; char* user; };

int sendstrf(int s, char* untainted format, ...);
int bftpd_log(int level, char* untainted fmt, ...);
void command_user(struct session* s, char* arg);
void command_pass(struct session* s, char* arg);
void command_cwd(struct session* s, char* arg);
void command_list(struct session* s, char* arg);
void command_retr(struct session* s, char* arg);
void command_stor(struct session* s, char* arg);
void command_dele(struct session* s, char* arg);
void command_mkd(struct session* s, char* arg);
void command_rmd(struct session* s, char* arg);
void command_pwd(struct session* s, char* arg);
void command_syst(struct session* s, char* arg);
void command_type(struct session* s, char* arg);
void command_port(struct session* s, char* arg);
void command_pasv(struct session* s, char* arg);
void command_quit(struct session* s, char* arg);
void command_noop(struct session* s, char* arg);
void command_abor(struct session* s, char* arg);
void command_rest(struct session* s, char* arg);
void command_rnfr(struct session* s, char* arg);
void command_rnto(struct session* s, char* arg);
void command_site(struct session* s, char* arg);
void command_mdtm(struct session* s, char* arg);
void command_size(struct session* s, char* arg);
void command_appe(struct session* s, char* arg);
void command_stat(struct session* s, char* arg);
void command_help(struct session* s, char* arg);
void command_list_entry(struct session* s, struct dirent* entry);

#endif
