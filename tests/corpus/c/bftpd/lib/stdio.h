// stdio.h — the alternate library header the paper's harness
// installs: printf demands an untainted format string.
#ifndef STQ_STDIO_H
#define STQ_STDIO_H

int printf(char* untainted fmt, ...);

#endif
