// dirent.h — directory entries; d_name is attacker-controlled.
#ifndef STQ_DIRENT_H
#define STQ_DIRENT_H

struct dirent { char* d_name; int d_type; };

#endif
