// main.c — server driver.
#include "stdio.h"
#include "bftpd.h"

int main() {
  struct session* s = (struct session*) malloc(sizeof(struct session));
  s->sock = 4;
  s->logged_in = 1;
  printf("bftpd starting\n");
  command_user(s, "anonymous");
  command_quit(s, NULL);
  return 0;
}
