// list.c — directory listing: entry->d_name flows into the
// format parameter (the real, previously reported exploit).
#include "bftpd.h"

void command_list_entry(struct session* s, struct dirent* entry) {
  sendstrf(s->sock, entry->d_name);
}

