// outer.h — middle link of the include chain; only forwards to inner.h.
#ifndef OUTER_H
#define OUTER_H
#include "inner.h"
#endif
