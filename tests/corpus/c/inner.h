// inner.h — innermost link: the planted warning (0 - 1 is not pos)
// anchors here, so the renderer must walk the full include stack.
#ifndef INNER_H
#define INNER_H

int pos leaky() {
  int pos x = 0 - 1;
  return x;
}

#endif
