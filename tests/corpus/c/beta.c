// beta.c — the second unit: calls alpha.c's root through shared.h and
// plants one diagnostic whose offending expression comes from the FLIP
// macro, so the golden output pins the macro-expansion backtrace.
#include "shared.h"

int pos beta_root(int pos b) {
  int pos r = alpha_root(b) * SCALE;
  int pos flipped = FLIP(r);
  return r * SQUARE(SCALE) * flipped;
}
