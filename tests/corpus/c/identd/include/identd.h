// identd.h — the three protocol stages; every format string in
// the program is a literal, so nothing needs annotation.
#ifndef IDENTD_H
#define IDENTD_H

int parse_request(int port_a, int port_b);
int lookup_connection(int port_a, int port_b);
int format_reply(int port_a, int port_b);

#endif
