// request.c — request parsing and connection lookup.
#include "stdio.h"
#include "identd.h"

int parse_request(int port_a, int port_b) {
  printf("parse_request: %d , %d\n", port_a, port_b);
  if (port_a <= 0 || port_b <= 0) {
    printf("%d , %d : ERROR : INVALID-PORT\n", port_a, port_b);
    return -1;
  }
  if (port_a > 65535) {
    printf("range error %d\n", port_a);
    return -1;
  }
  printf("parse_request ok\n");
  int token = port_a * 31 + port_b + 0;
  int k0 = token % 2 + 0;
  if (k0 > 10) { token = token + k0 % 7; }
  int k1 = token % 3 + 1;
  if (k1 > 10) { token = token + k1 % 7; }
  int k2 = token % 4 + 2;
  if (k2 > 10) { token = token + k2 % 7; }
  int k3 = token % 5 + 3;
  if (k3 > 10) { token = token + k3 % 7; }
  int k4 = token % 6 + 4;
  if (k4 > 10) { token = token + k4 % 7; }
  int k5 = token % 7 + 5;
  if (k5 > 10) { token = token + k5 % 7; }
  int k6 = token % 8 + 6;
  if (k6 > 10) { token = token + k6 % 7; }
  int k7 = token % 9 + 7;
  if (k7 > 10) { token = token + k7 % 7; }
  int k8 = token % 10 + 8;
  if (k8 > 10) { token = token + k8 % 7; }
  int k9 = token % 11 + 9;
  if (k9 > 10) { token = token + k9 % 7; }
  int k10 = token % 12 + 10;
  if (k10 > 10) { token = token + k10 % 7; }
  int k11 = token % 13 + 11;
  if (k11 > 10) { token = token + k11 % 7; }
  int k12 = token % 14 + 12;
  if (k12 > 10) { token = token + k12 % 7; }
  int k13 = token % 15 + 13;
  if (k13 > 10) { token = token + k13 % 7; }
  int k14 = token % 16 + 14;
  if (k14 > 10) { token = token + k14 % 7; }
  int k15 = token % 17 + 15;
  if (k15 > 10) { token = token + k15 % 7; }
  int k16 = token % 18 + 16;
  if (k16 > 10) { token = token + k16 % 7; }
  int k17 = token % 19 + 17;
  if (k17 > 10) { token = token + k17 % 7; }
  int k18 = token % 20 + 18;
  if (k18 > 10) { token = token + k18 % 7; }
  int k19 = token % 21 + 19;
  if (k19 > 10) { token = token + k19 % 7; }
  int k20 = token % 22 + 20;
  if (k20 > 10) { token = token + k20 % 7; }
  int k21 = token % 23 + 21;
  if (k21 > 10) { token = token + k21 % 7; }
  int k22 = token % 24 + 22;
  if (k22 > 10) { token = token + k22 % 7; }
  int k23 = token % 25 + 23;
  if (k23 > 10) { token = token + k23 % 7; }
  printf("token %d\n", token);
  return token;
}

int lookup_connection(int port_a, int port_b) {
  printf("lookup_connection: %d , %d\n", port_a, port_b);
  if (port_a <= 0 || port_b <= 0) {
    printf("%d , %d : ERROR : INVALID-PORT\n", port_a, port_b);
    return -1;
  }
  if (port_a > 65535) {
    printf("range error %d\n", port_a);
    return -1;
  }
  printf("lookup_connection ok\n");
  int token = port_a * 31 + port_b + 1;
  int k0 = token % 2 + 0;
  if (k0 > 10) { token = token + k0 % 7; }
  int k1 = token % 3 + 1;
  if (k1 > 10) { token = token + k1 % 7; }
  int k2 = token % 4 + 2;
  if (k2 > 10) { token = token + k2 % 7; }
  int k3 = token % 5 + 3;
  if (k3 > 10) { token = token + k3 % 7; }
  int k4 = token % 6 + 4;
  if (k4 > 10) { token = token + k4 % 7; }
  int k5 = token % 7 + 5;
  if (k5 > 10) { token = token + k5 % 7; }
  int k6 = token % 8 + 6;
  if (k6 > 10) { token = token + k6 % 7; }
  int k7 = token % 9 + 7;
  if (k7 > 10) { token = token + k7 % 7; }
  int k8 = token % 10 + 8;
  if (k8 > 10) { token = token + k8 % 7; }
  int k9 = token % 11 + 9;
  if (k9 > 10) { token = token + k9 % 7; }
  int k10 = token % 12 + 10;
  if (k10 > 10) { token = token + k10 % 7; }
  int k11 = token % 13 + 11;
  if (k11 > 10) { token = token + k11 % 7; }
  int k12 = token % 14 + 12;
  if (k12 > 10) { token = token + k12 % 7; }
  int k13 = token % 15 + 13;
  if (k13 > 10) { token = token + k13 % 7; }
  int k14 = token % 16 + 14;
  if (k14 > 10) { token = token + k14 % 7; }
  int k15 = token % 17 + 15;
  if (k15 > 10) { token = token + k15 % 7; }
  int k16 = token % 18 + 16;
  if (k16 > 10) { token = token + k16 % 7; }
  int k17 = token % 19 + 17;
  if (k17 > 10) { token = token + k17 % 7; }
  int k18 = token % 20 + 18;
  if (k18 > 10) { token = token + k18 % 7; }
  int k19 = token % 21 + 19;
  if (k19 > 10) { token = token + k19 % 7; }
  int k20 = token % 22 + 20;
  if (k20 > 10) { token = token + k20 % 7; }
  int k21 = token % 23 + 21;
  if (k21 > 10) { token = token + k21 % 7; }
  int k22 = token % 24 + 22;
  if (k22 > 10) { token = token + k22 % 7; }
  int k23 = token % 25 + 23;
  if (k23 > 10) { token = token + k23 % 7; }
  printf("token %d\n", token);
  return token;
}

