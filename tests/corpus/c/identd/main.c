// main.c — serves three requests and shuts down.
#include "stdio.h"
#include "identd.h"

int main() {
  int t = 0;
  t = t + parse_request(113, 1023);
  t = t + lookup_connection(22, 4055);
  t = t + format_reply(80, 51234);
  printf("identd: %d , %d : USERID : UNIX : nobody\n", 113, 1023);
  printf("done\n");
  printf("requests served: %d\n", 3);
  printf("shutting down\n");
  printf("bye\n");
  printf("exit code %d\n", t % 2);
  return t % 2;
}
