#!/bin/sh
# frontend_smoke.sh — end-to-end replay of the checked-in C mini-corpus
# (tests/corpus/c) through the preprocessing front end, driven with the
# real binaries the way a user would run them.
#
# Part of the stq project: a reproduction of "Semantic Type Qualifiers"
# (Chin, Markstrum, Millstein; PLDI 2005).
#
# Usage: frontend_smoke.sh STQC STQD
#
# Exercises, against the golden .expected files next to the sources:
#   1. the section-6 dfa.h/dfa.c pair (nonnull, one planted restrict
#      diagnostic, one sanctioned run-time cast);
#   2. the shared-header three-TU program (pos/neg, one planted warning
#      with a macro-expansion backtrace, link-checked prototypes);
#   3. the two-deep include chain (diagnostic carries both "in file
#      included from" notes);
#   4. --jobs 4 and a double run: byte-identical to --jobs 1 every time;
#   5. the same checks through a live stqd daemon (the client ships the
#      include closure over the socket): byte-identical to one-shot, and
#      cold + warm recheck byte-identical to check.
set -u

STQC=${1:?usage: frontend_smoke.sh STQC STQD}
STQD=${2:?usage: frontend_smoke.sh STQC STQD}

CORPUS=$(cd "$(dirname "$0")/corpus/c" && pwd) || exit 1
WORK=$(mktemp -d /tmp/stq-frontend-XXXXXX) || exit 1
SOCK="$WORK/stqd.sock"
DAEMON_PID=

FAILURES=0
fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

cd "$CORPUS" || exit 1

# run CASE EXPECTED_EXIT BUILTINS FILES...
# One-shot at jobs 1 against the goldens, then jobs 4 twice: every run
# must be byte-identical to the first.
run_case() {
  CASE=$1 WANT=$2 BUILTINS=$3
  shift 3
  "$STQC" check -I . "$@" --builtins "$BUILTINS" --jobs 1 \
    >"$WORK/$CASE.out" 2>"$WORK/$CASE.err"
  GOT=$?
  [ "$GOT" = "$WANT" ] || fail "$CASE: exit $GOT, want $WANT"
  cmp -s "$CASE.check.out.expected" "$WORK/$CASE.out" \
    || fail "$CASE: stdout differs from golden"
  cmp -s "$CASE.check.err.expected" "$WORK/$CASE.err" \
    || fail "$CASE: diagnostics differ from golden"
  for PASS in a b; do
    "$STQC" check -I . "$@" --builtins "$BUILTINS" --jobs 4 \
      >"$WORK/$CASE.j4.out" 2>"$WORK/$CASE.j4.err"
    [ $? = "$WANT" ] || fail "$CASE: jobs-4 exit differs (pass $PASS)"
    cmp -s "$WORK/$CASE.out" "$WORK/$CASE.j4.out" \
      || fail "$CASE: jobs-4 stdout differs from jobs-1 (pass $PASS)"
    cmp -s "$WORK/$CASE.err" "$WORK/$CASE.j4.err" \
      || fail "$CASE: jobs-4 diagnostics differ from jobs-1 (pass $PASS)"
  done
}

run_case dfa 1 nonnull dfa.c
run_case multi 1 pos,neg alpha.c beta.c main.c
run_case chain 1 pos,neg chain.c

# --- the same corpus through a live daemon ----------------------------------
"$STQD" --socket "$SOCK" --workers 2 --jobs 2 2>"$WORK/stqd.err" &
DAEMON_PID=$!
i=0
while [ $i -lt 100 ]; do
  "$STQC" status --server "$SOCK" >/dev/null 2>&1 && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 100 ] || { fail "daemon did not come up"; exit 1; }

# server CASE EXPECTED_EXIT BUILTINS FILES...
# The client preprocesses locally only to collect the include closure; the
# daemon re-runs the front end from the shipped file map.
server_case() {
  CASE=$1 WANT=$2 BUILTINS=$3
  shift 3
  "$STQC" check -I . "$@" --builtins "$BUILTINS" --server "$SOCK" \
    >"$WORK/$CASE.srv.out" 2>"$WORK/$CASE.srv.err"
  [ $? = "$WANT" ] || fail "$CASE: server exit differs"
  cmp -s "$WORK/$CASE.out" "$WORK/$CASE.srv.out" \
    || fail "$CASE: server stdout differs from one-shot"
  cmp -s "$WORK/$CASE.err" "$WORK/$CASE.srv.err" \
    || fail "$CASE: server diagnostics differ from one-shot"
}

server_case dfa 1 nonnull dfa.c
server_case multi 1 pos,neg alpha.c beta.c main.c
server_case chain 1 pos,neg chain.c

# Cold then warm recheck against the daemon's shared incremental engine:
# both byte-identical to the one-shot check.
for PASS in cold warm; do
  "$STQC" recheck -I . alpha.c beta.c main.c --builtins pos,neg \
    --unit smoke --server "$SOCK" \
    >"$WORK/multi.re.out" 2>"$WORK/multi.re.err"
  [ $? = 1 ] || fail "multi: $PASS recheck exit differs"
  cmp -s "$WORK/multi.out" "$WORK/multi.re.out" \
    || fail "multi: $PASS recheck stdout differs from check"
  cmp -s "$WORK/multi.err" "$WORK/multi.re.err" \
    || fail "multi: $PASS recheck diagnostics differ from check"
done

"$STQC" shutdown --server "$SOCK" >/dev/null 2>&1 || fail "shutdown failed"
wait "$DAEMON_PID"
[ $? = 0 ] || fail "daemon exited non-zero"
DAEMON_PID=

if [ "$FAILURES" -ne 0 ]; then
  echo "frontend_smoke: $FAILURES failure(s)" >&2
  echo "--- daemon stderr ---" >&2
  cat "$WORK/stqd.err" >&2
  exit 1
fi
echo "frontend_smoke: all checks passed"
