//===- test_checker.cpp - Tests for the extensible typechecker ------------===//
//
// Exercises the paper's worked examples: figure 2 (lcm/gcd with pos),
// figure 3 (nonzero division restrict), figure 4 (taintedness), figures 5/6
// (unique), figure 7 (unaliased), figure 12 (nonnull), and the subtyping
// examples of section 2.1.2.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "qual/Builtins.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::checker;

namespace {

struct Run {
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
  CheckResult Result;
  qual::QualifierSet Quals;
};

/// Runs the full pipeline with the given builtin qualifiers loaded.
std::unique_ptr<Run> check(const std::vector<std::string> &QualNames,
                           const std::string &Source,
                           CheckerOptions Options = {}) {
  auto R = std::make_unique<Run>();
  EXPECT_TRUE(qual::loadBuiltinQualifiers(QualNames, R->Quals, R->Diags));
  R->Result = checkSource(Source, R->Quals, R->Diags, R->Prog, Options);
  EXPECT_FALSE(R->Diags.hasErrors())
      << "unexpected hard errors:\n"
      << [&] {
           std::string S;
           for (const auto &D : R->Diags.diagnostics())
             S += D.str() + "\n";
           return S;
         }();
  return R;
}

//===----------------------------------------------------------------------===//
// pos / neg (figure 1, figure 2)
//===----------------------------------------------------------------------===//

TEST(CheckerPos, PositiveConstantDerivable) {
  auto R = check({"pos", "neg"}, "int pos x = 3;\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerPos, NonPositiveConstantRejected) {
  auto R = check({"pos", "neg"}, "int pos x = 0;\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerPos, NegativeConstantRejectedForPos) {
  auto R = check({"pos", "neg"}, "int pos x = -5;\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerPos, ProductOfPosIsPos) {
  auto R = check({"pos", "neg"},
                 "int f(int pos a, int pos b) {\n"
                 "  int pos prod = a * b;\n"
                 "  return prod;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerPos, DifferenceOfPosIsNotPos) {
  auto R = check({"pos", "neg"},
                 "int f(int pos a, int pos b) {\n"
                 "  int pos d = a - b;\n"
                 "  return d;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerPos, NegationOfNegIsPos) {
  auto R = check({"pos", "neg"},
                 "int f(int neg a) {\n"
                 "  int pos p = -a;\n"
                 "  return p;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerPos, MutualRecursionPosNegProduct) {
  // neg * pos is neg; -(neg) is pos; deep nesting exercises recursion.
  auto R = check({"pos", "neg"},
                 "int f(int pos a, int neg b) {\n"
                 "  int neg n = a * b;\n"
                 "  int pos p = -(a * b);\n"
                 "  return p + n;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerPos, PaperFigure2LcmTypechecksWithCast) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int pos gcd(int pos n, int pos m);\n"
                 "int pos lcm(int pos a, int pos b) {\n"
                 "  int pos d = gcd(a, b);\n"
                 "  int pos prod = a * b;\n"
                 "  return (int pos) (prod / d);\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  // The cast needs a run-time check: pos is not derivable for a quotient.
  ASSERT_EQ(R->Result.RuntimeChecks.size(), 1u);
  EXPECT_EQ(R->Result.RuntimeChecks[0].Quals,
            std::vector<std::string>{"pos"});
}

TEST(CheckerPos, PaperFigure2WithoutCastFails) {
  auto R = check({"pos", "neg"},
                 "int pos gcd(int pos n, int pos m);\n"
                 "int pos lcm(int pos a, int pos b) {\n"
                 "  int pos d = gcd(a, b);\n"
                 "  int pos prod = a * b;\n"
                 "  return prod / d;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerPos, CallReturnTypeCarriesQualifier) {
  auto R = check({"pos", "neg"},
                 "int pos g();\n"
                 "int f() { int pos x = g(); return x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerPos, ArgumentFlowIsChecked) {
  // Implicit assignment through a call: passing a plain int where int pos
  // is expected must fail.
  auto R = check({"pos", "neg"},
                 "int g(int pos x);\n"
                 "int f(int y) { return g(y); }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerPos, ConstantArgumentFlowsViaCaseRule) {
  auto R = check({"pos", "neg"},
                 "int g(int pos x);\n"
                 "int f() { return g(7); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Subtyping (section 2.1.2)
//===----------------------------------------------------------------------===//

TEST(CheckerSubtyping, ValueQualifiedIsSubtypeOfUnqualified) {
  auto R = check({"pos", "neg"},
                 "int f() { int pos x = 3; int y = x; return y; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerSubtyping, NoSubtypingUnderPointers) {
  // The paper's unsound example: int pos* must not flow to int*.
  auto R = check({"pos", "neg"},
                 "int f() {\n"
                 "  int pos x = 3;\n"
                 "  int* p = &x;\n"
                 "  *p = -1;\n"
                 "  return x;\n"
                 "}\n");
  EXPECT_GE(R->Result.QualErrors, 1u);
}

TEST(CheckerSubtyping, MatchingPointeeQualsAllowed) {
  auto R = check({"pos", "neg"},
                 "int f() {\n"
                 "  int pos x = 3;\n"
                 "  int pos* p = &x;\n"
                 "  return *p;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerSubtyping, MultipleQualifiersEachChecked) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f() { int pos nonzero x = 3; return x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  auto R2 = check({"pos", "neg", "nonzero"},
                  "int f(int pos a, int pos b) {\n"
                  "  int pos nonzero d = a - b;\n"
                  "  return d;\n"
                  "}\n");
  // Neither pos nor nonzero derivable for a difference: two failures.
  EXPECT_EQ(R2->Result.QualErrors, 2u);
}

//===----------------------------------------------------------------------===//
// nonzero (figure 3)
//===----------------------------------------------------------------------===//

TEST(CheckerNonzero, PosImpliesNonzeroViaCaseClause) {
  // The subtype-encoding clause: any int pos expression is also nonzero.
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int pos p) { int nonzero z = p; return z; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonzero, DivisionRestrictRequiresNonzeroDenominator) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a, int b) { return a / b; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  EXPECT_EQ(R->Result.Stats.RestrictFailures, 1u);
}

TEST(CheckerNonzero, DivisionByPosDenominatorAllowed) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a, int pos b) { return a / b; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonzero, DivisionByNonzeroConstantAllowed) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a) { return a / 2; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonzero, DivisionByZeroConstantRejected) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a) { return a / 0; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNonzero, RestrictAppliesInsideConditions) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a, int b) {\n"
                 "  if (a / b > 1) { return 1; }\n"
                 "  return 0;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

//===----------------------------------------------------------------------===//
// nonnull (figure 12)
//===----------------------------------------------------------------------===//

TEST(CheckerNonnull, AddressOfIsNonnull) {
  auto R = check({"nonnull"},
                 "int f() { int x; int* nonnull p = &x; return *p; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonnull, NullNotAssignableToNonnull) {
  auto R = check({"nonnull"},
                 "int f() { int x; int* nonnull p = &x; p = NULL;"
                 " return 0; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNonnull, EveryDereferenceChecked) {
  auto R = check({"nonnull"}, "int f(int* p) { return *p; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  EXPECT_EQ(R->Result.Stats.DerefSites, 1u);
}

TEST(CheckerNonnull, AnnotatedPointerDereferenceAllowed) {
  auto R = check({"nonnull"}, "int f(int* nonnull p) { return *p; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonnull, PointerArithmeticPreservesNonnull) {
  // The logical memory model: p + i has p's type, so array indexing of a
  // nonnull pointer is allowed.
  auto R = check({"nonnull"},
                 "int f(int* nonnull p, int i) { return p[i]; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNonnull, FieldDereferenceChecked) {
  auto R = check({"nonnull"},
                 "struct s { int a; };\n"
                 "int f(struct s* p) { return p->a; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  auto R2 = check({"nonnull"},
                  "struct s { int a; };\n"
                  "int f(struct s* nonnull p) { return p->a; }\n");
  EXPECT_EQ(R2->Result.QualErrors, 0u);
}

TEST(CheckerNonnull, WriteThroughPointerChecked) {
  auto R = check({"nonnull"}, "void f(int* p) { *p = 3; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNonnull, CastSilencesWithRuntimeCheck) {
  auto R = check({"nonnull"},
                 "int f(int* p) { return *((int* nonnull) p); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  ASSERT_EQ(R->Result.RuntimeChecks.size(), 1u);
  EXPECT_EQ(R->Result.RuntimeChecks[0].Quals,
            std::vector<std::string>{"nonnull"});
}

TEST(CheckerNonnull, StructFieldAnnotationsChecked) {
  auto R = check({"nonnull"},
                 "struct s { int* nonnull q; };\n"
                 "void f(struct s* nonnull p, int* r) { p->q = r; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

//===----------------------------------------------------------------------===//
// tainted / untainted (figure 4, section 6.3)
//===----------------------------------------------------------------------===//

TEST(CheckerTaint, PaperPrintfSnippetTypechecks) {
  auto R = check({"tainted", "untainted"},
                 "int printf(char* untainted fmt, ...);\n"
                 "void f(char* buf) {\n"
                 "  char* untainted fmt = (char* untainted) \"%s\";\n"
                 "  printf(fmt, buf);\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  EXPECT_EQ(R->Result.Stats.FormatStringChecks, 1u);
}

TEST(CheckerTaint, UntaintedFormatRequiredForPrintf) {
  // printf(buf) must fail: buf is not known untainted.
  auto R = check({"tainted", "untainted"},
                 "int printf(char* untainted fmt, ...);\n"
                 "void f(char* buf) { printf(buf); }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerTaint, ConstantsAreUntaintedWithoutCast) {
  // The section 6.3 clause: constants are trusted, removing casts.
  auto R = check({"tainted", "untainted"},
                 "int printf(char* untainted fmt, ...);\n"
                 "void f(int x) { printf(\"%d\", x); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerTaint, AnythingCanBeTainted) {
  auto R = check({"tainted", "untainted"},
                 "char* tainted g(char* s) { return s; }\n"
                 "int h(int x) { int tainted t = x * 2 + 1; return t; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerTaint, UntaintedFlowsToPlain) {
  auto R = check({"tainted", "untainted"},
                 "void g(char* s);\n"
                 "void f(char* untainted u) { g(u); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerTaint, BftpdStyleBugDetected) {
  // The real bftpd vulnerability shape: a file name flows into a format
  // string parameter (section 6.3).
  auto R = check({"tainted", "untainted"},
                 "struct dirent { char* d_name; };\n"
                 "int sendstrf(int s, char* untainted format, ...);\n"
                 "void list(int s, struct dirent* nonnull_entry) {\n"
                 "  sendstrf(s, nonnull_entry->d_name);\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

//===----------------------------------------------------------------------===//
// unique (figures 5, 6)
//===----------------------------------------------------------------------===//

TEST(CheckerUnique, PaperFigure6MakeArrayTypechecks) {
  auto R = check({"unique"},
                 "int* unique array;\n"
                 "void make_array(int n) {\n"
                 "  array = (int*) malloc(sizeof(int) * n);\n"
                 "  for (int i = 0; i < n; i = i + 1)\n"
                 "    array[i] = i;\n"
                 "}\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnique, AssignNullAllowed) {
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f() { p = NULL; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnique, AssignOtherPointerRejected) {
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f(int* q) { p = q; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  EXPECT_EQ(R->Result.Stats.RefAssignFailures, 1u);
}

TEST(CheckerUnique, ReferringToUniqueRejected) {
  // int* q = p violates the disallow clause (section 2.2.1).
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f() { int* q = p; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  EXPECT_EQ(R->Result.Stats.DisallowFailures, 1u);
}

TEST(CheckerUnique, DereferencingUniqueAllowed) {
  // int i = *p is fine: only the contents are read.
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "int f() { int i = *p; return i; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnique, FieldAccessThroughUniqueAllowed) {
  auto R = check({"unique"},
                 "struct dfa { int nstates; };\n"
                 "struct dfa* unique d;\n"
                 "int f() { return d->nstates; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnique, PassingUniqueAsArgumentRejected) {
  // Section 6.2: passing a unique global to a procedure violates
  // uniqueness and is rejected by the disallow rule.
  auto R = check({"unique"},
                 "struct dfa { int n; };\n"
                 "void use(struct dfa* d);\n"
                 "struct dfa* unique dfa_global;\n"
                 "void f() { use(dfa_global); }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerUnique, CastEscapeHatchUnchecked) {
  // Section 6.2: initialization from the parser module needs a cast, which
  // stays unchecked (as with traditional C casts).
  auto R = check({"unique"},
                 "struct dfa { int n; };\n"
                 "struct dfa* parser_result();\n"
                 "struct dfa* unique d;\n"
                 "void init() { d = (struct dfa* unique) parser_result(); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  EXPECT_EQ(R->Result.Stats.CastsToRefQualified, 1u);
  EXPECT_TRUE(R->Result.RuntimeChecks.empty());
}

TEST(CheckerUnique, MallocWithoutCastAllowed) {
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f() { p = malloc(8); }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnique, WriteThroughUniqueAllowed) {
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f() { *p = 42; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

//===----------------------------------------------------------------------===//
// unaliased (figure 7)
//===----------------------------------------------------------------------===//

TEST(CheckerUnaliased, AddressTakenRejected) {
  auto R = check({"unaliased"},
                 "void f() { int unaliased x; int* p; p = &x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 1u);
  EXPECT_EQ(R->Result.Stats.DisallowFailures, 1u);
}

TEST(CheckerUnaliased, NormalUseAllowed) {
  auto R = check({"unaliased"},
                 "int f() { int unaliased x; x = 3; int y = x;"
                 " return y + x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerUnaliased, AddressOfOtherVariableStillAllowed) {
  auto R = check({"unaliased"},
                 "int f() { int unaliased x; int y; int* p = &y;"
                 " x = *p; return x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Casts and run-time checks
//===----------------------------------------------------------------------===//

TEST(CheckerCasts, ProvableCastCheckElided) {
  auto R = check({"pos", "neg"},
                 "int f() { int pos x = (int pos) 5; return x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  EXPECT_TRUE(R->Result.RuntimeChecks.empty());
  EXPECT_EQ(R->Result.Stats.ElidedCastChecks, 1u);
}

TEST(CheckerCasts, ElisionCanBeDisabled) {
  CheckerOptions Options;
  Options.ElideProvableCastChecks = false;
  auto R = check({"pos", "neg"},
                 "int f() { int pos x = (int pos) 5; return x; }\n", Options);
  ASSERT_EQ(R->Result.RuntimeChecks.size(), 1u);
}

TEST(CheckerCasts, UnprovableCastCheckRecorded) {
  auto R = check({"pos", "neg"},
                 "int f(int y) { int pos x = (int pos) y; return x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  ASSERT_EQ(R->Result.RuntimeChecks.size(), 1u);
  EXPECT_EQ(R->Result.Stats.CastsToValueQualified, 1u);
}

TEST(CheckerCasts, MultiQualCastChecksEachQualifier) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int y) {\n"
                 "  int pos nonzero x = (int pos nonzero) y;\n"
                 "  return x;\n"
                 "}\n");
  ASSERT_EQ(R->Result.RuntimeChecks.size(), 1u);
  EXPECT_EQ(R->Result.RuntimeChecks[0].Quals.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Memoization ablation
//===----------------------------------------------------------------------===//

TEST(CheckerMemo, MemoizationDoesNotChangeResults) {
  const char *Source = "int f(int pos a, int pos b, int c) {\n"
                       "  int pos x = a * b * a * b;\n"
                       "  int pos y = a * (b * a) * b;\n"
                       "  int pos bad = c * c;\n"
                       "  return x + y + bad;\n"
                       "}\n";
  auto R1 = check({"pos", "neg"}, Source);
  CheckerOptions NoMemo;
  NoMemo.Memoize = false;
  auto R2 = check({"pos", "neg"}, Source, NoMemo);
  EXPECT_EQ(R1->Result.QualErrors, R2->Result.QualErrors);
  EXPECT_EQ(R1->Result.QualErrors, 1u);
  EXPECT_EQ(R2->Result.Stats.MemoHits, 0u);
}

//===----------------------------------------------------------------------===//
// Flow-sensitive narrowing (the section 8 future-work extension, opt-in)
//===----------------------------------------------------------------------===//

CheckerOptions narrowing() {
  CheckerOptions Options;
  Options.FlowSensitiveNarrowing = true;
  return Options;
}

TEST(CheckerNarrowing, OffByDefault) {
  // The paper's system is flow-insensitive: the guarded dereference still
  // errors.
  auto R = check({"nonnull"},
                 "int f(int* p) { if (p != NULL) { return *p; } return 0; }");
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNarrowing, NullCheckGuardsDereference) {
  auto R = check({"nonnull"},
                 "int f(int* p) { if (p != NULL) { return *p; } return 0; }",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, GrepIdiomFromSection61) {
  // The exact imprecision example from the paper: the array index is
  // guarded by the NULL check.
  auto R = check({"nonnull"},
                 "struct dfa { int* trans; };\n"
                 "int f(struct dfa* nonnull d, int works) {\n"
                 "  int* t;\n"
                 "  t = d->trans;\n"
                 "  if (t != NULL) {\n"
                 "    works = t[works];\n"
                 "  }\n"
                 "  return works;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, ElseBranchOfEqNull) {
  auto R = check({"nonnull"},
                 "int f(int* p) {\n"
                 "  if (p == NULL) { return 0; } else { return *p; }\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, ThenBranchOfEqNullStillErrors) {
  auto R = check({"nonnull"},
                 "int f(int* p) {\n"
                 "  if (p == NULL) { return *p; }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNarrowing, PointerTruthinessCondition) {
  auto R = check({"nonnull"},
                 "int f(int* p) { if (p) { return *p; } return 0; }",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, ConjunctionNarrowsBoth) {
  auto R = check({"nonnull"},
                 "int f(int* p, int* q) {\n"
                 "  if (p != NULL && q != NULL) { return *p + *q; }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, DisjunctionDoesNotNarrowThen) {
  auto R = check({"nonnull"},
                 "int f(int* p, int* q) {\n"
                 "  if (p != NULL || q != NULL) { return *p; }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNarrowing, NegatedDisjunctionNarrowsElse) {
  // !(p == NULL || q == NULL) in the else: both non-null.
  auto R = check({"nonnull"},
                 "int f(int* p, int* q) {\n"
                 "  if (p == NULL || q == NULL) { return 0; }\n"
                 "  else { return *p + *q; }\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, AssignmentInBranchKillsNarrowing) {
  // p is reassigned inside the branch, so the narrowing must not apply.
  auto R = check({"nonnull"},
                 "int* g();\n"
                 "int f(int* p) {\n"
                 "  if (p != NULL) {\n"
                 "    p = g();\n"
                 "    return *p;\n"
                 "  }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNarrowing, AddressTakenInBranchKillsNarrowing) {
  auto R = check({"nonnull"},
                 "void reseat(int** pp);\n"
                 "int f(int* p) {\n"
                 "  if (p != NULL) {\n"
                 "    reseat(&p);\n"
                 "    return *p;\n"
                 "  }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 1u);
}

TEST(CheckerNarrowing, WhileConditionNarrowsBody) {
  auto R = check({"nonnull"},
                 "struct node { int v; struct node* next; };\n"
                 "int sum(struct node* n) {\n"
                 "  int s = 0;\n"
                 "  while (n != NULL) {\n"
                 "    s = s + n->v;\n"
                 "    n = n->next;\n"
                 "  }\n"
                 "  return s;\n"
                 "}\n",
                 narrowing());
  // n is assigned in the loop body, so the conservative kill applies and
  // the dereferences still error: linked-list traversal needs the
  // stronger flow-sensitive system of Foster et al. [20].
  EXPECT_GE(R->Result.QualErrors, 1u);

  auto R2 = check({"nonnull"},
                  "int drain(int* q) {\n"
                  "  int s = 0;\n"
                  "  while (q != NULL && s < 10) { s = s + *q; }\n"
                  "  return s;\n"
                  "}\n",
                  narrowing());
  EXPECT_EQ(R2->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, IntegerRangeNarrowsPos) {
  auto R = check({"pos", "neg"},
                 "int g(int pos x);\n"
                 "int f(int n) {\n"
                 "  if (n > 0) { return g(n); }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
  // n >= 0 is not enough for pos.
  auto R2 = check({"pos", "neg"},
                  "int g(int pos x);\n"
                  "int f(int n) {\n"
                  "  if (n >= 0) { return g(n); }\n"
                  "  return 0;\n"
                  "}\n",
                  narrowing());
  EXPECT_EQ(R2->Result.QualErrors, 1u);
  // But n >= 1 is.
  auto R3 = check({"pos", "neg"},
                  "int g(int pos x);\n"
                  "int f(int n) {\n"
                  "  if (n >= 1) { return g(n); }\n"
                  "  return 0;\n"
                  "}\n",
                  narrowing());
  EXPECT_EQ(R3->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, NonzeroGuardOnDivision) {
  auto R = check({"pos", "neg", "nonzero"},
                 "int f(int a, int b) {\n"
                 "  if (b != 0) { return a / b; }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerNarrowing, ReversedComparisonNormalized) {
  // `0 < n` is `n > 0`.
  auto R = check({"pos", "neg"},
                 "int g(int pos x);\n"
                 "int f(int n) {\n"
                 "  if (0 < n) { return g(n); }\n"
                 "  return 0;\n"
                 "}\n",
                 narrowing());
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

//===----------------------------------------------------------------------===//
// Stats plumbing
//===----------------------------------------------------------------------===//

TEST(CheckerStatsTest, DerefSitesCounted) {
  auto R = check({"nonnull"},
                 "struct s { int a; int* nonnull q; };\n"
                 "int f(struct s* nonnull p) {\n"
                 "  int x = p->a;\n"
                 "  int y = *(p->q);\n"
                 "  return x + y;\n"
                 "}\n");
  // Deref sites: p->a, p->q (inner), *(p->q) (outer).
  EXPECT_EQ(R->Result.Stats.DerefSites, 3u);
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

TEST(CheckerStatsTest, QueriesAndChecksReported) {
  auto R = check({"pos", "neg"},
                 "int f(int pos a) { int pos x = a * a; return x; }\n");
  EXPECT_GT(R->Result.Stats.HasQualQueries, 0u);
  EXPECT_GT(R->Result.Stats.AssignChecks, 0u);
}

} // namespace

namespace {

TEST(CheckerUnique, AddressOfDerefDoesNotLaunderUniqueness) {
  // &*p (and &p->f) reproduce p's value/derived addresses; allowing them
  // would let the unique pointer escape despite the disallow rule.
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "void f() { int* q = &(*p); }\n");
  EXPECT_GE(R->Result.QualErrors, 1u);
  auto R2 = check({"unique"},
                  "struct s { int a; };\n"
                  "struct s* unique p;\n"
                  "void f() { int* q = &(p->a); }\n");
  EXPECT_GE(R2->Result.QualErrors, 1u);
}

TEST(CheckerUnique, PlainDerefStillExempt) {
  auto R = check({"unique"},
                 "int* unique p;\n"
                 "int f() { return *p; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
}

} // namespace

namespace {

TEST(CheckerUnique, DerefOfAddrOfCollapsesToRead) {
  // CIL's *&lv simplification: *&table IS a read of table, so the
  // disallow rule fires rather than being laundered through the deref
  // exemption.
  auto R = check({"unique"},
                 "int* unique table;\n"
                 "void f() { int* q = *&table; }\n");
  EXPECT_GE(R->Result.QualErrors, 1u);
  EXPECT_GE(R->Result.Stats.DisallowFailures, 1u);
}

TEST(CheckerNonnull, DerefOfAddrOfNeedsNoNonnull) {
  // After the collapse there is no dereference left to check.
  auto R = check({"nonnull"},
                 "int f() { int x = 3; return *&x; }\n");
  EXPECT_EQ(R->Result.QualErrors, 0u);
  EXPECT_EQ(R->Result.Stats.DerefSites, 0u);
}

} // namespace
