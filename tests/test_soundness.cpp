//===- test_soundness.cpp - Tests for the automated soundness checker -----===//
//
// The headline capability of the paper: every builtin qualifier is proven
// sound automatically, and the paper's deliberately-broken variants (pos
// with E1 - E2, unique without its disallow clause, unaliased without its
// disallow clause) are rejected.
//
//===----------------------------------------------------------------------===//

#include "soundness/Soundness.h"

#include "qual/Builtins.h"
#include "qual/QualParser.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::soundness;

namespace {

qual::QualifierSet loadBuiltins(const std::vector<std::string> &Names) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(qual::loadBuiltinQualifiers(Names, Set, Diags));
  return Set;
}

qual::QualifierSet parseSet(const std::string &Source) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(qual::parseQualifiers(Source, Set, Diags));
  EXPECT_TRUE(qual::checkWellFormed(Set, Diags));
  return Set;
}

SoundnessReport checkOne(const qual::QualifierSet &Set,
                         const std::string &Name) {
  SoundnessChecker SC(Set);
  return SC.checkQualifier(Name);
}

//===----------------------------------------------------------------------===//
// Value qualifiers (figures 1, 3, 12)
//===----------------------------------------------------------------------===//

TEST(SoundnessValue, PosIsSound) {
  auto Set = loadBuiltins({"pos", "neg"});
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  EXPECT_EQ(R.Obligations.size(), 3u); // One per case clause.
}

TEST(SoundnessValue, NegIsSound) {
  auto Set = loadBuiltins({"pos", "neg"});
  SoundnessReport R = checkOne(Set, "neg");
  EXPECT_TRUE(R.sound()) << formatReports({R});
}

TEST(SoundnessValue, NonzeroIsSound) {
  auto Set = loadBuiltins({"pos", "neg", "nonzero"});
  SoundnessReport R = checkOne(Set, "nonzero");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  // restrict clauses are ignored by the soundness checker.
  EXPECT_EQ(R.Obligations.size(), 3u);
}

TEST(SoundnessValue, NonnullIsSound) {
  auto Set = loadBuiltins({"nonnull"});
  SoundnessReport R = checkOne(Set, "nonnull");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  EXPECT_EQ(R.Obligations.size(), 1u);
}

TEST(SoundnessValue, FlowQualifiersAreVacuouslySound) {
  auto Set = loadBuiltins({"tainted", "untainted"});
  SoundnessReport T = checkOne(Set, "tainted");
  EXPECT_TRUE(T.IsFlowQualifier);
  EXPECT_TRUE(T.sound());
  EXPECT_TRUE(T.Obligations.empty());
  SoundnessReport U = checkOne(Set, "untainted");
  EXPECT_TRUE(U.IsFlowQualifier);
}

TEST(SoundnessValue, PaperBogusSubtractionRuleRejected) {
  // Section 2.1.3: replacing E1 * E2 by E1 - E2 must be caught, since the
  // difference of two positives need not be positive.
  auto Set = parseSet(R"(
value qualifier neg(int Expr E)
  case E of
    decl int Const C:
      C, where C < 0
  invariant value(E) < 0
value qualifier pos(int Expr E)
  case E of
    decl int Const C:
      C, where C > 0
  | decl int Expr E1, E2:
      E1 - E2, where pos(E1) && pos(E2)
  | decl int Expr E1:
      -E1, where neg(E1)
  invariant value(E) > 0
)");
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_FALSE(R.sound());
  EXPECT_EQ(R.failedCount(), 1u);
  // Specifically the subtraction clause.
  EXPECT_FALSE(R.Obligations[1].proved());
  EXPECT_TRUE(R.Obligations[0].proved());
  EXPECT_TRUE(R.Obligations[2].proved());
}

TEST(SoundnessValue, WrongConstantBoundRejected) {
  // C >= 0 admits zero, violating value(E) > 0.
  auto Set = parseSet("value qualifier pos(int Expr E)\n"
                      "  case E of\n"
                      "    decl int Const C:\n"
                      "      C, where C >= 0\n"
                      "  invariant value(E) > 0\n");
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_FALSE(R.sound());
}

TEST(SoundnessValue, AdditionRuleForPosProvable) {
  // An extension the paper mentions is expressible: the sum of positives
  // is positive.
  auto Set = parseSet("value qualifier pos(int Expr E)\n"
                      "  case E of\n"
                      "    decl int Const C:\n"
                      "      C, where C > 0\n"
                      "  | decl int Expr E1, E2:\n"
                      "      E1 + E2, where pos(E1) && pos(E2)\n"
                      "  invariant value(E) > 0\n");
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_TRUE(R.sound()) << formatReports({R});
}

TEST(SoundnessValue, DisjunctivePredicatesHandled) {
  // neg's builtin definition uses (pos && neg) || (neg && pos).
  auto Set = loadBuiltins({"pos", "neg"});
  SoundnessReport R = checkOne(Set, "neg");
  ASSERT_EQ(R.Obligations.size(), 3u);
  EXPECT_TRUE(R.Obligations[2].proved());
}

TEST(SoundnessValue, SubtypeEncodingClauseProvable) {
  // nonzero's clause "E1 where pos(E1)" is the subtyping encoding:
  // pos's invariant implies nonzero's.
  auto Set = loadBuiltins({"pos", "neg", "nonzero"});
  SoundnessReport R = checkOne(Set, "nonzero");
  ASSERT_GE(R.Obligations.size(), 2u);
  EXPECT_TRUE(R.Obligations[1].proved());
}

TEST(SoundnessValue, BogusSubtypeEncodingRejected) {
  // "nonzero implies pos" is false.
  auto Set = parseSet(R"(
value qualifier nonzero(int Expr E)
  case E of
    decl int Const C:
      C, where C != 0
  invariant value(E) != 0
value qualifier pos(int Expr E)
  case E of
    decl int Expr E1:
      E1, where nonzero(E1)
  invariant value(E) > 0
)");
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_FALSE(R.sound());
}

TEST(SoundnessValue, RelyingOnFlowQualifierGivesNothing) {
  // untainted has no invariant, so a rule deriving pos from untainted is
  // unsound and must be rejected.
  auto Set = parseSet(R"(
value qualifier untainted(T Expr E)
  case E of
    decl T Const C:
      C
value qualifier pos(int Expr E)
  case E of
    decl int Expr E1:
      E1, where untainted(E1)
  invariant value(E) > 0
)");
  SoundnessReport R = checkOne(Set, "pos");
  EXPECT_FALSE(R.sound());
}

//===----------------------------------------------------------------------===//
// Reference qualifiers (figures 5, 7)
//===----------------------------------------------------------------------===//

TEST(SoundnessRef, UniqueIsSound) {
  auto Set = loadBuiltins({"unique"});
  SoundnessReport R = checkOne(Set, "unique");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  // 2 assign clauses + 5 preservation cases.
  EXPECT_EQ(R.Obligations.size(), 7u);
}

TEST(SoundnessRef, UnaliasedIsSound) {
  auto Set = loadBuiltins({"unaliased"});
  SoundnessReport R = checkOne(Set, "unaliased");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  // ondecl + 5 preservation cases.
  EXPECT_EQ(R.Obligations.size(), 6u);
}

TEST(SoundnessRef, UniqueWithoutDisallowRejected) {
  // Section 2.2.3: dropping the disallow clause makes preservation fail
  // (storing the value of a unique l-value elsewhere breaks uniqueness).
  auto Set = parseSet(R"(
ref qualifier unique(T* LValue L)
  assign L
    NULL
  | new
  invariant value(L) == NULL ||
            (isHeapLoc(value(L)) &&
             forall T** P: *P == value(L) => P == location(L))
)");
  SoundnessReport R = checkOne(Set, "unique");
  EXPECT_FALSE(R.sound());
  // The failing case is the read preservation case.
  bool ReadCaseFailed = false;
  for (const Obligation &O : R.Obligations)
    if (!O.proved() && O.Description.find("read") != std::string::npos)
      ReadCaseFailed = true;
  EXPECT_TRUE(ReadCaseFailed) << formatReports({R});
}

TEST(SoundnessRef, UnaliasedWithoutDisallowRejected) {
  auto Set = parseSet("ref qualifier unaliased(T Var X)\n"
                      "  ondecl\n"
                      "  invariant forall T** P: *P != location(X)\n");
  SoundnessReport R = checkOne(Set, "unaliased");
  EXPECT_FALSE(R.sound());
  bool AddrCaseFailed = false;
  for (const Obligation &O : R.Obligations)
    if (!O.proved() && O.Description.find("address") != std::string::npos)
      AddrCaseFailed = true;
  EXPECT_TRUE(AddrCaseFailed) << formatReports({R});
}

TEST(SoundnessRef, BogusAssignClauseRejected) {
  // Allowing an arbitrary expression to initialize a unique l-value is
  // unsound.
  auto Set = parseSet(R"(
ref qualifier unique(T* LValue L)
  assign L
    decl T* Expr E1:
      E1
  disallow L
  invariant value(L) == NULL ||
            (isHeapLoc(value(L)) &&
             forall T** P: *P == value(L) => P == location(L))
)");
  SoundnessReport R = checkOne(Set, "unique");
  EXPECT_FALSE(R.sound());
  EXPECT_FALSE(R.Obligations[0].proved());
}

TEST(SoundnessRef, NullIsAlwaysSafeForUnique) {
  auto Set = loadBuiltins({"unique"});
  SoundnessReport R = checkOne(Set, "unique");
  ASSERT_GE(R.Obligations.size(), 2u);
  EXPECT_EQ(R.Obligations[0].Kind, "assign");
  EXPECT_TRUE(R.Obligations[0].proved()); // NULL clause.
  EXPECT_TRUE(R.Obligations[1].proved()); // new clause.
}

TEST(SoundnessRef, FailureReportsCounterexampleSketch) {
  auto Set = parseSet("ref qualifier unaliased(T Var X)\n"
                      "  ondecl\n"
                      "  invariant forall T** P: *P != location(X)\n");
  DiagnosticEngine Diags;
  SoundnessChecker SC(Set, prover::ProverOptions{}, &Diags);
  SoundnessReport R = SC.checkQualifier("unaliased");
  EXPECT_FALSE(R.sound());
  EXPECT_GT(Diags.countInPhase("soundness"), 0u);
}

//===----------------------------------------------------------------------===//
// Timing shape (section 4: value < 1s each, reference < 30s each)
//===----------------------------------------------------------------------===//

TEST(SoundnessTiming, ValueQualifiersFast) {
  auto Set = loadBuiltins({"pos", "neg", "nonzero", "nonnull"});
  SoundnessChecker SC(Set);
  for (const char *Name : {"pos", "neg", "nonzero", "nonnull"}) {
    SoundnessReport R = SC.checkQualifier(Name);
    EXPECT_TRUE(R.sound()) << Name;
    EXPECT_LT(R.TotalSeconds, 1.0) << Name;
  }
}

TEST(SoundnessTiming, ReferenceQualifiersWithinPaperBound) {
  auto Set = loadBuiltins({"unique", "unaliased"});
  SoundnessChecker SC(Set);
  for (const char *Name : {"unique", "unaliased"}) {
    SoundnessReport R = SC.checkQualifier(Name);
    EXPECT_TRUE(R.sound()) << Name;
    EXPECT_LT(R.TotalSeconds, 30.0) << Name;
  }
}

TEST(SoundnessAll, EveryBuiltinQualifierVerifies) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadAllBuiltinQualifiers(Set, Diags));
  SoundnessChecker SC(Set);
  auto Reports = SC.checkAll();
  ASSERT_EQ(Reports.size(), 9u);
  for (const SoundnessReport &R : Reports)
    EXPECT_TRUE(R.sound()) << formatReports({R});
}

} // namespace

namespace {

TEST(SoundnessValue, NonnegIsSound) {
  auto Set = loadBuiltins({"pos", "neg", "nonneg"});
  SoundnessReport R = checkOne(Set, "nonneg");
  EXPECT_TRUE(R.sound()) << formatReports({R});
  EXPECT_EQ(R.Obligations.size(), 4u);
}

TEST(SoundnessValue, NonnegSumRuleRequiresBothOperands) {
  // nonneg(E1) alone does not make E1 + E2 nonneg.
  auto Set = parseSet("value qualifier nonneg(int Expr E)\n"
                      "  case E of\n"
                      "    decl int Const C:\n"
                      "      C, where C >= 0\n"
                      "  | decl int Expr E1, E2:\n"
                      "      E1 + E2, where nonneg(E1)\n"
                      "  invariant value(E) >= 0\n");
  SoundnessReport R = checkOne(Set, "nonneg");
  EXPECT_FALSE(R.sound());
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Generic assign clauses (beyond the paper's NULL/new patterns)
//===----------------------------------------------------------------------===//

TEST(SoundnessRef, PredicatedAssignClauseProvable) {
  // A "never-null cell": establishment via address-of, preservation for
  // free (the invariant has no quantifier).
  auto Set = parseSet("ref qualifier nncell(T* LValue L)\n"
                      "  assign L\n"
                      "    decl T LValue L2:\n"
                      "      &L2\n"
                      "  invariant value(L) != NULL\n");
  SoundnessReport R = checkOne(Set, "nncell");
  EXPECT_TRUE(R.sound()) << formatReports({R});
}

TEST(SoundnessRef, NullAssignToNonNullCellRejected) {
  auto Set = parseSet("ref qualifier nncell(T* LValue L)\n"
                      "  assign L\n"
                      "    NULL\n"
                      "  invariant value(L) != NULL\n");
  SoundnessReport R = checkOne(Set, "nncell");
  EXPECT_FALSE(R.sound());
  EXPECT_FALSE(R.Obligations[0].proved()); // The NULL assign clause.
}

TEST(SoundnessRef, AssignClauseWithQualifierPredicate) {
  // Establishment may lean on a value qualifier's invariant: assigning an
  // expression known nonnull establishes the cell's invariant.
  auto Set = parseSet(R"(
value qualifier nonnull(T* Expr E)
  case E of
    decl T LValue L:
      &L
  invariant value(E) != NULL
ref qualifier nncell(T* LValue L)
  assign L
    decl T* Expr E1:
      E1, where nonnull(E1)
  invariant value(L) != NULL
)");
  SoundnessReport R = checkOne(Set, "nncell");
  EXPECT_TRUE(R.sound()) << formatReports({R});
}

TEST(SoundnessRef, AssignClauseWithoutPredicateRejected) {
  // The same clause without the nonnull requirement is unsound.
  auto Set = parseSet("ref qualifier nncell(T* LValue L)\n"
                      "  assign L\n"
                      "    decl T* Expr E1:\n"
                      "      E1\n"
                      "  invariant value(L) != NULL\n");
  SoundnessReport R = checkOne(Set, "nncell");
  EXPECT_FALSE(R.sound());
}

TEST(SoundnessRef, HeapOnlyCellSound) {
  // A cell that only ever holds fresh allocations (or NULL), without the
  // uniqueness part of unique's invariant.
  auto Set = parseSet("ref qualifier heapcell(T* LValue L)\n"
                      "  assign L\n"
                      "    NULL\n"
                      "  | new\n"
                      "  invariant value(L) == NULL ||"
                      " isHeapLoc(value(L))\n");
  SoundnessReport R = checkOne(Set, "heapcell");
  EXPECT_TRUE(R.sound()) << formatReports({R});
}

TEST(SoundnessRef, StackAddressIntoHeapCellRejected) {
  // Allowing &L2 (a stack or unknown location) breaks the heap-only
  // invariant.
  auto Set = parseSet("ref qualifier heapcell(T* LValue L)\n"
                      "  assign L\n"
                      "    new\n"
                      "  | decl T LValue L2:\n"
                      "      &L2\n"
                      "  invariant value(L) == NULL ||"
                      " isHeapLoc(value(L))\n");
  SoundnessReport R = checkOne(Set, "heapcell");
  EXPECT_FALSE(R.sound());
}

//===----------------------------------------------------------------------===//
// Prover resource limits
//===----------------------------------------------------------------------===//

TEST(SoundnessResources, ZeroRoundsCannotProve) {
  auto Set = loadBuiltins({"pos", "neg"});
  prover::ProverOptions Options;
  Options.MaxRounds = 0;
  SoundnessChecker SC(Set, Options);
  SoundnessReport R = SC.checkQualifier("pos");
  EXPECT_FALSE(R.sound()); // Needs instantiation of the eval axioms.
}

TEST(SoundnessResources, TightTimeoutReportsResourceOut) {
  auto Set = loadBuiltins({"unique"});
  prover::ProverOptions Options;
  Options.TimeoutSeconds = 0.0; // Instantly exhausted.
  SoundnessChecker SC(Set, Options);
  SoundnessReport R = SC.checkQualifier("unique");
  EXPECT_FALSE(R.sound());
  bool SawResourceOut = false;
  for (const Obligation &O : R.Obligations)
    SawResourceOut =
        SawResourceOut || O.Result == prover::ProofResult::ResourceOut;
  EXPECT_TRUE(SawResourceOut);
}

TEST(SoundnessResources, DefaultBudgetsAmple) {
  auto Set = loadBuiltins({"unique", "unaliased"});
  SoundnessChecker SC(Set);
  for (const char *Name : {"unique", "unaliased"}) {
    SoundnessReport R = SC.checkQualifier(Name);
    for (const Obligation &O : R.Obligations) {
      EXPECT_LT(O.Stats.Rounds, 6u) << Name;
      EXPECT_LT(O.Stats.Instantiations, 5000u) << Name;
    }
  }
}

} // namespace
