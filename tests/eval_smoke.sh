#!/bin/sh
# eval_smoke.sh — end-to-end run of the paper-table replication harness
# (stq-eval + the checked-in §6 corpus tree), driven with the real
# binaries the way CI runs them.
#
# Part of the stq project: a reproduction of "Semantic Type Qualifiers"
# (Chin, Markstrum, Millstein; PLDI 2005).
#
# Usage: eval_smoke.sh STQ_EVAL STQD STQC CORPUS_DIR
#
# Exercises:
#   1. --verify-sync: the checked-in tree matches its generators;
#   2. each corpus program checked with stqc against its golden
#      check.out.expected / check.err.expected (bftpd exits 1 with the
#      planted directory-listing hole, the others exit 0);
#   3. the rendered tables against TABLES.expected, and a corrupted
#      golden failing with a readable line diff and a nonzero exit;
#   4. --format json byte-identical across --jobs 1 / --jobs 4 and
#      across one-shot vs a live stqd daemon (`eval` RPC);
#   5. --update-golden reproducing the checked-in golden byte-for-byte.
set -u

STQ_EVAL=${1:?usage: eval_smoke.sh STQ_EVAL STQD STQC CORPUS_DIR}
STQD=${2:?usage: eval_smoke.sh STQ_EVAL STQD STQC CORPUS_DIR}
STQC=${3:?usage: eval_smoke.sh STQ_EVAL STQD STQC CORPUS_DIR}
CORPUS=${4:?usage: eval_smoke.sh STQ_EVAL STQD STQC CORPUS_DIR}

# check_case cds into each corpus dir, so every path must be absolute.
abspath() { echo "$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"; }
STQ_EVAL=$(abspath "$STQ_EVAL") || exit 1
STQD=$(abspath "$STQD") || exit 1
STQC=$(abspath "$STQC") || exit 1
CORPUS=$(cd "$CORPUS" && pwd) || exit 1

WORK=$(mktemp -d /tmp/stq-eval-XXXXXX) || exit 1
SOCK="$WORK/stqd.sock"
DAEMON_PID=

FAILURES=0
fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

# --- 1. the checked-in tree matches the generators --------------------------
"$STQ_EVAL" --corpus "$CORPUS" --verify-sync >"$WORK/sync.out" 2>&1 \
  || fail "--verify-sync failed: $(cat "$WORK/sync.out")"

# --- 2. each corpus program through stqc against its goldens ----------------
# check_case NAME EXPECTED_EXIT INCLUDES UNITS...
check_case() {
  NAME=$1 WANT=$2 INCLUDES=$3
  shift 3
  (
    cd "$CORPUS/$NAME" || exit 9
    # shellcheck disable=SC2086
    "$STQC" check $INCLUDES "$@" --qualfile quals.stq \
      >"$WORK/$NAME.out" 2>"$WORK/$NAME.err"
  )
  GOT=$?
  [ "$GOT" = "$WANT" ] || fail "$NAME: exit $GOT, want $WANT"
  cmp -s "$CORPUS/$NAME/check.out.expected" "$WORK/$NAME.out" \
    || fail "$NAME: stdout differs from golden"
  cmp -s "$CORPUS/$NAME/check.err.expected" "$WORK/$NAME.err" \
    || fail "$NAME: diagnostics differ from golden"
}

check_case grep-dfa 0 "-I include" dfa_analyze.c dfa_lookup.c dfa_build.c main.c
check_case bftpd 1 "-I include -I lib" log.c commands.c list.c main.c
check_case mingetty 0 "-I include -I lib" log.c getty.c main.c
check_case identd 0 "-I include -I lib" request.c reply.c main.c

# --- 3. the rendered tables against the golden document ---------------------
"$STQ_EVAL" --golden "$CORPUS/TABLES.expected" >"$WORK/tables.out" \
  2>"$WORK/tables.err"
[ $? = 0 ] || fail "tables golden run failed: $(cat "$WORK/tables.err")"
cmp -s "$CORPUS/TABLES.expected" "$WORK/tables.out" \
  || fail "rendered tables differ from TABLES.expected"

# A corrupted golden must fail with a readable diff, not silently pass.
sed 's/grep-dfa/grep-zfa/' "$CORPUS/TABLES.expected" >"$WORK/bad.expected"
"$STQ_EVAL" --golden "$WORK/bad.expected" >/dev/null 2>"$WORK/bad.err"
GOT=$?
[ "$GOT" = 1 ] || fail "corrupted golden: exit $GOT, want 1"
grep -q "differs from golden" "$WORK/bad.err" \
  || fail "corrupted golden: no drift message"
grep -q -- "- grep-zfa" "$WORK/bad.err" \
  || fail "corrupted golden: diff is missing the expected line"
grep -q -- "+ grep-dfa" "$WORK/bad.err" \
  || fail "corrupted golden: diff is missing the actual line"

# --- 4. JSON byte-identity: jobs 1 vs 4, one-shot vs daemon -----------------
"$STQ_EVAL" --format json --jobs 1 >"$WORK/j1.json" 2>/dev/null \
  || fail "json jobs-1 run failed"
"$STQ_EVAL" --format json --jobs 4 >"$WORK/j4.json" 2>/dev/null \
  || fail "json jobs-4 run failed"
cmp -s "$WORK/j1.json" "$WORK/j4.json" \
  || fail "json output differs between --jobs 1 and --jobs 4"

"$STQD" --socket "$SOCK" --workers 2 --jobs 2 2>"$WORK/stqd.err" &
DAEMON_PID=$!
i=0
while [ $i -lt 100 ]; do
  "$STQC" status --server "$SOCK" >/dev/null 2>&1 && break
  sleep 0.1
  i=$((i + 1))
done
[ $i -lt 100 ] || { fail "daemon did not come up"; exit 1; }

"$STQ_EVAL" --format json --jobs 2 --server "$SOCK" >"$WORK/srv.json" \
  2>"$WORK/srv.err"
[ $? = 0 ] || fail "server json run failed: $(cat "$WORK/srv.err")"
cmp -s "$WORK/j1.json" "$WORK/srv.json" \
  || fail "json output differs between one-shot and --server"

"$STQ_EVAL" --jobs 2 --server "$SOCK" >"$WORK/srv.tables" 2>/dev/null \
  || fail "server tables run failed"
cmp -s "$WORK/tables.out" "$WORK/srv.tables" \
  || fail "table output differs between one-shot and --server"

"$STQC" shutdown --server "$SOCK" >/dev/null 2>&1 || fail "shutdown failed"
wait "$DAEMON_PID"
[ $? = 0 ] || fail "daemon exited non-zero"
DAEMON_PID=

# --- 5. --update-golden round-trips --------------------------------------
"$STQ_EVAL" --golden "$WORK/fresh.expected" --update-golden >/dev/null 2>&1 \
  || fail "--update-golden run failed"
cmp -s "$CORPUS/TABLES.expected" "$WORK/fresh.expected" \
  || fail "--update-golden output differs from checked-in golden"

if [ "$FAILURES" -ne 0 ]; then
  echo "eval_smoke: $FAILURES failure(s)" >&2
  exit 1
fi
echo "eval_smoke: all checks passed"
