//===- test_prover.cpp - Tests for the automatic theorem prover -----------===//

#include "prover/Prover.h"
#include "prover/ProverCache.h"
#include "prover/Theory.h"

#include "TestTempDir.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace stq::prover;

namespace {

//===----------------------------------------------------------------------===//
// Terms
//===----------------------------------------------------------------------===//

TEST(TermArena, HashConsing) {
  TermArena A;
  TermId X1 = A.app("f", {A.intConst(1)});
  TermId X2 = A.app("f", {A.intConst(1)});
  TermId X3 = A.app("f", {A.intConst(2)});
  EXPECT_EQ(X1, X2);
  EXPECT_NE(X1, X3);
  EXPECT_EQ(A.intConst(5), A.intConst(5));
  EXPECT_EQ(A.var("v"), A.var("v"));
  EXPECT_NE(A.var("v"), A.app("v"));
}

TEST(TermArena, GroundnessAndVars) {
  TermArena A;
  TermId G = A.app("f", {A.intConst(1), A.app("c")});
  TermId V = A.app("f", {A.var("x"), A.app("c")});
  EXPECT_TRUE(A.isGround(G));
  EXPECT_FALSE(A.isGround(V));
  std::vector<std::string> Vars;
  A.collectVars(V, Vars);
  ASSERT_EQ(Vars.size(), 1u);
  EXPECT_EQ(Vars[0], "x");
}

TEST(TermArena, Substitution) {
  TermArena A;
  TermId Pattern = A.app("f", {A.var("x"), A.var("y")});
  Subst S{{"x", A.intConst(1)}, {"y", A.app("c")}};
  TermId Result = A.substitute(Pattern, S);
  EXPECT_EQ(Result, A.app("f", {A.intConst(1), A.app("c")}));
}

TEST(TermArena, Matching) {
  TermArena A;
  TermId Pattern = A.app("f", {A.var("x"), A.app("g", {A.var("x")})});
  TermId Good = A.app("f", {A.app("c"), A.app("g", {A.app("c")})});
  TermId Bad = A.app("f", {A.app("c"), A.app("g", {A.app("d")})});
  Subst S;
  EXPECT_TRUE(A.match(Pattern, Good, S));
  EXPECT_EQ(S["x"], A.app("c"));
  Subst S2;
  EXPECT_FALSE(A.match(Pattern, Bad, S2));
}

//===----------------------------------------------------------------------===//
// Congruence closure
//===----------------------------------------------------------------------===//

TEST(CongruenceClosureTest, BasicEquality) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y"), Z = A.app("z");
  CongruenceClosure CC(A);
  EXPECT_TRUE(CC.assertEq(X, Y));
  EXPECT_TRUE(CC.assertEq(Y, Z));
  EXPECT_TRUE(CC.isEqual(X, Z));
}

TEST(CongruenceClosureTest, CongruencePropagation) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  TermId FX = A.app("f", {X}), FY = A.app("f", {Y});
  CongruenceClosure CC(A);
  CC.assertEq(X, Y);
  // f(x) = f(y) by congruence even though never asserted.
  EXPECT_TRUE(CC.isEqual(FX, FY));
}

TEST(CongruenceClosureTest, NestedCongruence) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  TermId GFX = A.app("g", {A.app("f", {X})});
  TermId GFY = A.app("g", {A.app("f", {Y})});
  CongruenceClosure CC(A);
  CC.assertEq(X, Y);
  EXPECT_TRUE(CC.isEqual(GFX, GFY));
}

TEST(CongruenceClosureTest, DisequalityConflict) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  CongruenceClosure CC(A);
  EXPECT_TRUE(CC.assertNe(X, Y));
  EXPECT_FALSE(CC.assertEq(X, Y));
  EXPECT_TRUE(CC.inConflict());
}

TEST(CongruenceClosureTest, CongruenceInducedDisequalityConflict) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  TermId FX = A.app("f", {X}), FY = A.app("f", {Y});
  CongruenceClosure CC(A);
  EXPECT_TRUE(CC.assertNe(FX, FY));
  EXPECT_FALSE(CC.assertEq(X, Y));
}

TEST(CongruenceClosureTest, DistinctIntConstantsConflict) {
  TermArena A;
  TermId X = A.app("x");
  CongruenceClosure CC(A);
  EXPECT_TRUE(CC.assertEq(X, A.intConst(1)));
  EXPECT_FALSE(CC.assertEq(X, A.intConst(2)));
}

TEST(CongruenceClosureTest, TrueFalseDistinct) {
  TermArena A;
  CongruenceClosure CC(A);
  EXPECT_FALSE(CC.assertEq(A.trueTerm(), A.falseTerm()));
}

TEST(CongruenceClosureTest, ClassIntValue) {
  TermArena A;
  TermId X = A.app("x");
  CongruenceClosure CC(A);
  CC.assertEq(X, A.intConst(7));
  auto V = CC.classIntValue(X);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 7);
}

//===----------------------------------------------------------------------===//
// Ground theory combination
//===----------------------------------------------------------------------===//

TEST(TheoryTest, OrderCycleConflict) {
  TermArena A;
  TermId X = A.app("x");
  // x > 0 and x <= 0.
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Lt, A.intConst(0), X},
      Lit{false, Lit::Op::Le, X, A.intConst(0)},
  };
  EXPECT_TRUE(theoryConflict(A, Units));
}

TEST(TheoryTest, OrderConsistent) {
  TermArena A;
  TermId X = A.app("x");
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Lt, A.intConst(0), X},
      Lit{false, Lit::Op::Le, X, A.intConst(10)},
  };
  EXPECT_FALSE(theoryConflict(A, Units));
}

TEST(TheoryTest, EqualityFeedsArithmetic) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  // x = y, y > 0, x <= 0: conflict through the equality.
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Eq, X, Y},
      Lit{false, Lit::Op::Lt, A.intConst(0), Y},
      Lit{false, Lit::Op::Le, X, A.intConst(0)},
  };
  EXPECT_TRUE(theoryConflict(A, Units));
}

TEST(TheoryTest, ConstantBoundsConflict) {
  TermArena A;
  TermId X = A.app("x");
  // x = 3 (via CC) and x < 2.
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Eq, X, A.intConst(3)},
      Lit{false, Lit::Op::Lt, X, A.intConst(2)},
  };
  EXPECT_TRUE(theoryConflict(A, Units));
}

TEST(TheoryTest, IntegerTightness) {
  TermArena A;
  TermId X = A.app("x");
  // 0 < x and x < 1 has no integer solution.
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Lt, A.intConst(0), X},
      Lit{false, Lit::Op::Lt, X, A.intConst(1)},
  };
  EXPECT_TRUE(theoryConflict(A, Units));
}

TEST(TheoryTest, ForcedEqualityVsDisequality) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  // x <= y, y <= x, x != y.
  std::vector<Lit> Units = {
      Lit{false, Lit::Op::Le, X, Y},
      Lit{false, Lit::Op::Le, Y, X},
      Lit{true, Lit::Op::Eq, X, Y},
  };
  EXPECT_TRUE(theoryConflict(A, Units));
}

//===----------------------------------------------------------------------===//
// End-to-end proving
//===----------------------------------------------------------------------===//

TEST(ProverTest, GroundModusPonens) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x");
  P.addHypothesis(fImplies(fPred(A, "p", {X}), fPred(A, "q", {X})));
  P.addHypothesis(fPred(A, "p", {X}));
  EXPECT_EQ(P.prove(fPred(A, "q", {X})), ProofResult::Proved);
}

TEST(ProverTest, UnprovableGoalIsUnknown) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x");
  P.addHypothesis(fPred(A, "p", {X}));
  EXPECT_EQ(P.prove(fPred(A, "q", {X})), ProofResult::Unknown);
}

TEST(ProverTest, EqualitySubstitution) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x"), Y = A.app("y");
  P.addHypothesis(fEq(X, Y));
  EXPECT_EQ(P.prove(fEq(A.app("f", {X}), A.app("f", {Y}))),
            ProofResult::Proved);
}

TEST(ProverTest, DisjunctionCaseSplit) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x");
  // (p \/ q) /\ (p => r) /\ (q => r) |- r.
  P.addHypothesis(fOr({fPred(A, "p", {X}), fPred(A, "q", {X})}));
  P.addHypothesis(fImplies(fPred(A, "p", {X}), fPred(A, "r", {X})));
  P.addHypothesis(fImplies(fPred(A, "q", {X}), fPred(A, "r", {X})));
  EXPECT_EQ(P.prove(fPred(A, "r", {X})), ProofResult::Proved);
}

TEST(ProverTest, QuantifiedAxiomInstantiation) {
  Prover P;
  TermArena &A = P.arena();
  // forall x. p(x) => q(x); p(c) |- q(c).
  TermId Vx = A.var("x");
  P.addAxiom("pq", fForall({"x"}, fImplies(fPred(A, "p", {Vx}),
                                           fPred(A, "q", {Vx}))));
  TermId C = A.app("c");
  P.addHypothesis(fPred(A, "p", {C}));
  EXPECT_EQ(P.prove(fPred(A, "q", {C})), ProofResult::Proved);
  EXPECT_GE(P.stats().Instantiations, 1u);
}

TEST(ProverTest, ChainedInstantiationRounds) {
  Prover P;
  TermArena &A = P.arena();
  // forall x. p(x) => p(f(x)); p(c) |- p(f(f(c))).
  // Needs two rounds: f(f(c)) only exists after the first instantiation.
  TermId Vx = A.var("x");
  P.addAxiom("step",
             fForall({"x"}, fImplies(fPred(A, "p", {Vx}),
                                     fPred(A, "p", {A.app("f", {Vx})}))));
  TermId C = A.app("c");
  P.addHypothesis(fPred(A, "p", {C}));
  TermId FFC = A.app("f", {A.app("f", {C})});
  EXPECT_EQ(P.prove(fPred(A, "p", {FFC})), ProofResult::Proved);
  EXPECT_GE(P.stats().Rounds, 2u);
}

TEST(ProverTest, SelectUpdateSameKey) {
  Prover P;
  TermArena &A = P.arena();
  TermId Vm = A.var("m"), Vk = A.var("k"), Vv = A.var("v");
  TermId Upd = A.app("update", {Vm, Vk, Vv});
  P.addAxiom("select-update-eq",
             fForall({"m", "k", "v"},
                     fEq(A.app("select", {Upd, Vk}), Vv),
                     {MultiPattern{Upd}}));
  TermId M = A.app("m0"), K = A.app("k0"), V = A.app("v0");
  TermId Sel = A.app("select", {A.app("update", {M, K, V}), K});
  EXPECT_EQ(P.prove(fEq(Sel, V)), ProofResult::Proved);
}

TEST(ProverTest, SelectUpdateOtherKeyViaCaseSplit) {
  Prover P;
  TermArena &A = P.arena();
  TermId Vm = A.var("m"), Vk = A.var("k"), Vv = A.var("v"), Vj = A.var("j");
  TermId Upd = A.app("update", {Vm, Vk, Vv});
  P.addAxiom("select-update-eq",
             fForall({"m", "k", "v"},
                     fEq(A.app("select", {Upd, Vk}), Vv),
                     {MultiPattern{Upd}}));
  P.addAxiom("select-update-other",
             fForall({"m", "k", "v", "j"},
                     fOr({fEq(Vj, Vk),
                          fEq(A.app("select", {Upd, Vj}),
                              A.app("select", {Vm, Vj}))}),
                     {MultiPattern{A.app("select", {Upd, Vj})}}));
  TermId M = A.app("m0"), K = A.app("k0"), V = A.app("v0"), J = A.app("j0");
  P.addHypothesis(fNe(J, K));
  TermId Sel = A.app("select", {A.app("update", {M, K, V}), J});
  EXPECT_EQ(P.prove(fEq(Sel, A.app("select", {M, J}))), ProofResult::Proved);
}

TEST(ProverTest, ProductSignRule) {
  Prover P;
  P.addArithmeticSignAxioms();
  TermArena &A = P.arena();
  TermId X = A.app("x"), Y = A.app("y");
  P.addHypothesis(fGt(X, A.intConst(0)));
  P.addHypothesis(fGt(Y, A.intConst(0)));
  EXPECT_EQ(P.prove(fGt(A.app("times", {X, Y}), A.intConst(0))),
            ProofResult::Proved);
}

TEST(ProverTest, ProductOfMixedSignsIsNegative) {
  Prover P;
  P.addArithmeticSignAxioms();
  TermArena &A = P.arena();
  TermId X = A.app("x"), Y = A.app("y");
  P.addHypothesis(fGt(X, A.intConst(0)));
  P.addHypothesis(fLt(Y, A.intConst(0)));
  EXPECT_EQ(P.prove(fLt(A.app("times", {X, Y}), A.intConst(0))),
            ProofResult::Proved);
}

TEST(ProverTest, DifferenceOfPositivesNotProvablePositive) {
  // The paper's running example of a bogus rule: pos(a), pos(b) does not
  // imply pos(a - b). The prover must fail to prove it.
  Prover P;
  P.addArithmeticSignAxioms();
  TermArena &A = P.arena();
  TermId X = A.app("x"), Y = A.app("y");
  P.addHypothesis(fGt(X, A.intConst(0)));
  P.addHypothesis(fGt(Y, A.intConst(0)));
  EXPECT_NE(P.prove(fGt(A.app("minus", {X, Y}), A.intConst(0))),
            ProofResult::Proved);
}

TEST(ProverTest, NegatedGoalWithForallSkolemizes) {
  Prover P;
  TermArena &A = P.arena();
  // p(k) for all k is not provable from p(c) alone.
  TermId Vk = A.var("k");
  TermId C = A.app("c");
  P.addHypothesis(fPred(A, "p", {C}));
  EXPECT_NE(P.prove(fForall({"k"}, fPred(A, "p", {Vk}))),
            ProofResult::Proved);
  // But it is provable from the matching axiom.
  Prover P2;
  TermArena &A2 = P2.arena();
  TermId Vk2 = A2.var("k");
  P2.addAxiom("all-p", fForall({"k"}, fPred(A2, "p", {Vk2})));
  EXPECT_EQ(P2.prove(fForall({"k"}, fPred(A2, "p", {Vk2}))),
            ProofResult::Proved);
}

TEST(ProverTest, HypothesisWithNestedForallUsesProxy) {
  // hyp: q(c) \/ (forall k. p(k)); goal p(d) is NOT provable (the model
  // may choose the q(c) disjunct).
  Prover P;
  TermArena &A = P.arena();
  TermId C = A.app("c"), D = A.app("d");
  TermId Vk = A.var("k");
  P.addHypothesis(fOr({fPred(A, "q", {C}),
                       fForall({"k"}, fPred(A, "p", {Vk}))}));
  EXPECT_NE(P.prove(fPred(A, "p", {D})), ProofResult::Proved);

  // With !q(c) the forall branch is forced and the goal follows via the
  // proxy-guarded axiom.
  Prover P2;
  TermArena &A2 = P2.arena();
  TermId C2 = A2.app("c"), D2 = A2.app("d");
  TermId Vk2 = A2.var("k");
  P2.addHypothesis(fOr({fPred(A2, "q", {C2}),
                        fForall({"k"}, fPred(A2, "p", {Vk2}))}));
  P2.addHypothesis(fNot(fPred(A2, "q", {C2})));
  EXPECT_EQ(P2.prove(fPred(A2, "p", {D2})), ProofResult::Proved);
}

TEST(ProverTest, MultiPatternTriggers) {
  Prover P;
  TermArena &A = P.arena();
  // forall x,y. p(x) /\ q(y) => r(x,y), with separate single patterns that
  // must be joined.
  TermId Vx = A.var("x"), Vy = A.var("y");
  P.addAxiom("join",
             fForall({"x", "y"},
                     fImplies(fAnd({fPred(A, "p", {Vx}),
                                    fPred(A, "q", {Vy})}),
                              fPred(A, "r", {Vx, Vy})),
                     {MultiPattern{A.app("p", {Vx}), A.app("q", {Vy})}}));
  TermId C = A.app("c"), D = A.app("d");
  P.addHypothesis(fPred(A, "p", {C}));
  P.addHypothesis(fPred(A, "q", {D}));
  EXPECT_EQ(P.prove(fPred(A, "r", {C, D})), ProofResult::Proved);
}

TEST(ProverTest, ContradictoryHypothesesProveAnything) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x");
  P.addHypothesis(fEq(X, A.intConst(1)));
  P.addHypothesis(fEq(X, A.intConst(2)));
  EXPECT_EQ(P.prove(fPred(A, "anything", {X})), ProofResult::Proved);
}

TEST(ProverTest, StatsArePopulated) {
  Prover P;
  TermArena &A = P.arena();
  TermId Vx = A.var("x");
  P.addAxiom("pq", fForall({"x"}, fImplies(fPred(A, "p", {Vx}),
                                           fPred(A, "q", {Vx}))));
  TermId C = A.app("c");
  P.addHypothesis(fPred(A, "p", {C}));
  ASSERT_EQ(P.prove(fPred(A, "q", {C})), ProofResult::Proved);
  EXPECT_GT(P.stats().TheoryChecks, 0u);
  EXPECT_GT(P.stats().Clauses, 0u);
  EXPECT_GE(P.stats().Seconds, 0.0);
}

TEST(ProverTest, ModelReportedOnFailure) {
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x");
  P.addHypothesis(fPred(A, "p", {X}));
  ASSERT_EQ(P.prove(fPred(A, "q", {X})), ProofResult::Unknown);
  EXPECT_FALSE(P.stats().Model.empty());
}

TEST(ProverTest, IncrementalEngineStatsArePopulated) {
  // Both branches of the split die only at the difference-bound check, so
  // the trail must push decisions, propagate implied units, and pop theory
  // state on every backtrack.
  Prover P;
  TermArena &A = P.arena();
  TermId X = A.app("x"), Y = A.app("y"), W = A.app("w");
  P.addHypothesis(fLt(Y, X));
  P.addHypothesis(fOr({fPred(A, "p", {W}), fPred(A, "q", {W})}));
  P.addHypothesis(fImplies(fPred(A, "p", {W}), fLt(X, Y)));
  P.addHypothesis(fImplies(fPred(A, "q", {W}), fLt(X, Y)));
  ASSERT_EQ(P.prove(fPred(A, "r", {W})), ProofResult::Proved);
  EXPECT_GT(P.stats().Propagations, 0u);
  EXPECT_GT(P.stats().MaxTrailDepth, 0u);
  EXPECT_GT(P.stats().TheoryPops, 0u);
  EXPECT_GT(P.stats().Splits, 0u);
}

//===----------------------------------------------------------------------===//
// TheorySolver: backtrackable congruence + order state
//===----------------------------------------------------------------------===//

TEST(TheorySolverTest, PopRestoresEqualityState) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  TermId Fx = A.app("f", {X}), Fy = A.app("f", {Y});
  TheorySolver TS(A);
  EXPECT_FALSE(TS.find(X) == TS.find(Y));

  TS.push();
  EXPECT_TRUE(TS.assertLit(Lit{false, Lit::Op::Eq, X, Y}));
  // Congruence: f(x) joins f(y).
  EXPECT_EQ(TS.find(Fx), TS.find(Fy));
  TS.pop();
  EXPECT_NE(TS.find(X), TS.find(Y));
  EXPECT_NE(TS.find(Fx), TS.find(Fy));
  EXPECT_EQ(TS.pops(), 1u);
}

TEST(TheorySolverTest, PopRestoresConflictFlag) {
  TermArena A;
  TermId X = A.app("x");
  TermId One = A.intConst(1), Two = A.intConst(2);
  TheorySolver TS(A);
  TS.push();
  EXPECT_TRUE(TS.assertLit(Lit{false, Lit::Op::Eq, X, One}));
  TS.push();
  // x = 1 and x = 2: distinct integer constants clash.
  EXPECT_FALSE(TS.assertLit(Lit{false, Lit::Op::Eq, X, Two}));
  EXPECT_TRUE(TS.inConflict());
  TS.pop();
  EXPECT_FALSE(TS.inConflict());
  EXPECT_EQ(TS.classIntValue(X), std::optional<int64_t>(1));
  TS.pop();
  EXPECT_FALSE(TS.classIntValue(X).has_value());
}

TEST(TheorySolverTest, PopRestoresDisequalitiesAndOrderLits) {
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y");
  TheorySolver TS(A);

  TS.push();
  // x < y and y < x: a difference-bound cycle.
  EXPECT_TRUE(TS.assertLit(Lit{false, Lit::Op::Lt, X, Y}));
  TS.push();
  EXPECT_TRUE(TS.assertLit(Lit{false, Lit::Op::Lt, Y, X}));
  EXPECT_TRUE(TS.conflictNow());
  TS.pop();
  EXPECT_FALSE(TS.conflictNow());

  TS.push();
  EXPECT_TRUE(TS.assertLit(Lit{true, Lit::Op::Eq, X, Y}));
  TS.push();
  EXPECT_FALSE(TS.assertLit(Lit{false, Lit::Op::Eq, X, Y}));
  TS.pop();
  EXPECT_FALSE(TS.inConflict());
  TS.pop();
  TS.pop();
  // Back at level 0: x and y are unconstrained again.
  EXPECT_TRUE(TS.assertLit(Lit{false, Lit::Op::Eq, X, Y}));
  EXPECT_FALSE(TS.conflictNow());
}

TEST(TheorySolverTest, DeepPushPopMirrorsReference) {
  // Random-ish literal stacks: after any push/pop sequence the solver's
  // verdict matches a fresh reference theoryConflict over the same prefix.
  TermArena A;
  TermId X = A.app("x"), Y = A.app("y"), Z = A.app("z");
  TermId Fx = A.app("f", {X}), Fz = A.app("f", {Z});
  std::vector<Lit> Stack = {
      Lit{false, Lit::Op::Eq, X, Y},  Lit{false, Lit::Op::Le, Y, Z},
      Lit{true, Lit::Op::Eq, Fx, Fz}, Lit{false, Lit::Op::Le, Z, X},
  };
  TheorySolver TS(A);
  for (unsigned Prefix = 1; Prefix <= Stack.size(); ++Prefix) {
    for (unsigned Rep = 0; Rep < 2; ++Rep) {
      unsigned Asserted = 0;
      bool Ok = true;
      for (unsigned I = 0; I < Prefix; ++I) {
        TS.push();
        ++Asserted;
        if (!TS.assertLit(Stack[I])) {
          Ok = false;
          break;
        }
      }
      bool IncConflict = !Ok || TS.conflictNow();
      std::vector<Lit> Ref(Stack.begin(), Stack.begin() + Prefix);
      EXPECT_EQ(IncConflict, theoryConflict(A, Ref))
          << "prefix " << Prefix << " rep " << Rep;
      while (Asserted--)
        TS.pop();
    }
  }
}

//===----------------------------------------------------------------------===//
// ProverCache persistence
//===----------------------------------------------------------------------===//

TEST(ProverCachePersist, SaveLoadRoundtrip) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_cache_roundtrip.stqcache");
  ProverCache Cache;
  ProverStats Stats;
  Stats.Seconds = 0.25;
  Stats.Propagations = 7;
  Stats.Instantiations = 3;
  // Keys with embedded newlines, as canonicalTaskKey produces.
  Cache.insert("axiom:a\ngoal:g1", ProofResult::Proved, Stats);
  Cache.insert("axiom:a\ngoal:g2", ProofResult::Unknown, Stats);
  Cache.insert("goal:g3", ProofResult::ResourceOut, Stats);
  std::string Error;
  ASSERT_TRUE(Cache.save(Path, &Error)) << Error;

  ProverCache Reloaded;
  ASSERT_TRUE(Reloaded.load(Path, &Error)) << Error;
  EXPECT_EQ(Reloaded.stats().PersistLoaded, 3u);
  auto Hit = Reloaded.lookup("axiom:a\ngoal:g1");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, ProofResult::Proved);
  EXPECT_TRUE(Hit->FromDisk);
  EXPECT_EQ(Hit->Stats.Propagations, 7u);
  EXPECT_DOUBLE_EQ(Hit->Stats.Seconds, 0.25);
  Hit = Reloaded.lookup("axiom:a\ngoal:g2");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, ProofResult::Unknown);
  Hit = Reloaded.lookup("goal:g3");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, ProofResult::ResourceOut);
  EXPECT_EQ(Reloaded.stats().PersistHits, 3u);
}

TEST(ProverCachePersist, SaveCreatesMissingParentDirectories) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  // A --cache-file under a directory that does not exist yet is a normal
  // cold start (e.g. a per-project .cache/ tree): save() creates it.
  const std::string Path = Tmp.path("a/b/c/nested.stqcache");
  ProverCache Cache;
  ProverStats Stats;
  Cache.insert("goal:g", ProofResult::Proved, Stats);
  std::string Error;
  ASSERT_TRUE(Cache.save(Path, &Error)) << Error;

  ProverCache Reloaded;
  ASSERT_TRUE(Reloaded.load(Path, &Error)) << Error;
  EXPECT_TRUE(Reloaded.lookup("goal:g").has_value());
}

TEST(ProverCachePersist, SaveIntoUnwritableParentFails) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  // A *file* where a parent directory is needed: create_directories cannot
  // succeed, and save() must report rather than crash.
  const std::string Blocker = Tmp.path("blocker");
  { std::ofstream Out(Blocker); }
  ProverCache Cache;
  ProverStats Stats;
  Cache.insert("goal:g", ProofResult::Proved, Stats);
  std::string Error;
  EXPECT_FALSE(Cache.save(Blocker + "/sub/c.stqcache", &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(ProverCachePersist, InMemoryEntriesWinOverFile) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_cache_merge.stqcache");
  ProverStats Stats;
  {
    ProverCache Cache;
    Cache.insert("goal:g", ProofResult::Unknown, Stats);
    ASSERT_TRUE(Cache.save(Path));
  }
  ProverCache Cache;
  Cache.insert("goal:g", ProofResult::Proved, Stats);
  ASSERT_TRUE(Cache.load(Path));
  auto Hit = Cache.lookup("goal:g");
  ASSERT_TRUE(Hit.has_value());
  // This run's fresher answer survives the merge.
  EXPECT_EQ(Hit->Result, ProofResult::Proved);
  EXPECT_FALSE(Hit->FromDisk);
  EXPECT_EQ(Cache.stats().PersistLoaded, 0u);
}

TEST(ProverCachePersist, WrongVersionHeaderIsIgnored) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_cache_badversion.stqcache");
  {
    std::ofstream Out(Path);
    Out << "stq-prover-cache-v999\n1\nkey 6\ngoal:g\n"
        << "verdict proved 0.1 1 0 0 1 1 0 0 0 0\n";
  }
  ProverCache Cache;
  std::string Error;
  EXPECT_FALSE(Cache.load(Path, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
  EXPECT_FALSE(Cache.lookup("goal:g").has_value());
  EXPECT_EQ(Cache.stats().PersistLoaded, 0u);
}

TEST(ProverCachePersist, CorruptFileIsDiscardedWholesale) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_cache_corrupt.stqcache");
  ProverStats Stats;
  {
    ProverCache Cache;
    Cache.insert("goal:g1", ProofResult::Proved, Stats);
    Cache.insert("goal:g2", ProofResult::Proved, Stats);
    ASSERT_TRUE(Cache.save(Path));
  }
  // Truncate the tail: even the entries before the cut must not load.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Contents((std::istreambuf_iterator<char>(In)),
                         std::istreambuf_iterator<char>());
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Contents.substr(0, Contents.size() - 20);
  }
  ProverCache Cache;
  std::string Error;
  EXPECT_FALSE(Cache.load(Path, &Error));
  EXPECT_FALSE(Cache.lookup("goal:g1").has_value());
  EXPECT_FALSE(Cache.lookup("goal:g2").has_value());
  EXPECT_EQ(Cache.stats().PersistLoaded, 0u);
  std::remove(Path.c_str());
  // Garbage verdict text is rejected the same way.
  {
    std::ofstream Out(Path);
    Out << ProverCache::PersistVersion << "\n1\nkey 7\ngoal:gx\n"
        << "verdict banana 0.1 1 0 0 1 1 0 0 0 0\n";
  }
  EXPECT_FALSE(Cache.load(Path, &Error));
  EXPECT_FALSE(Cache.lookup("goal:gx").has_value());
  std::remove(Path.c_str());
}

} // namespace
