//===- test_support.cpp - Tests for the support library -------------------===//

#include "support/Diagnostics.h"
#include "support/Lexer.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace stq;

namespace {

std::vector<Token> lex(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer L(Source, Diags);
  return L.tokenize();
}

std::vector<Token> lexOk(const std::string &Source) {
  DiagnosticEngine Diags;
  auto Toks = lex(Source, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Source;
  return Toks;
}

TEST(SourceLoc, InvalidByDefault) {
  SourceLoc Loc;
  EXPECT_FALSE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "<unknown>");
}

TEST(SourceLoc, StrFormatsLineColon) {
  SourceLoc Loc(3, 14);
  EXPECT_TRUE(Loc.isValid());
  EXPECT_EQ(Loc.str(), "3:14");
}

TEST(SourceLoc, Equality) {
  EXPECT_EQ(SourceLoc(1, 2), SourceLoc(1, 2));
  EXPECT_NE(SourceLoc(1, 2), SourceLoc(1, 3));
  EXPECT_NE(SourceLoc(1, 2), SourceLoc(2, 2));
}

TEST(Diagnostics, CountsBySeverity) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 1), "parse", "bad");
  Diags.warning(SourceLoc(2, 1), "qualcheck", "iffy");
  Diags.note(SourceLoc(3, 1), "qualcheck", "fyi");
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Diags.warningCount(), 1u);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, CountInPhase) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 1), "parse", "a");
  Diags.warning(SourceLoc(2, 1), "qualcheck", "b");
  Diags.warning(SourceLoc(3, 1), "qualcheck", "c");
  EXPECT_EQ(Diags.countInPhase("qualcheck"), 2u);
  EXPECT_EQ(Diags.countInPhase("parse"), 1u);
  EXPECT_EQ(Diags.countInPhase("soundness"), 0u);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(1, 1), "parse", "a");
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(Diags.diagnostics().empty());
}

TEST(Diagnostics, PrintFormat) {
  DiagnosticEngine Diags;
  Diags.error(SourceLoc(4, 7), "sema", "bad thing");
  std::ostringstream OS;
  Diags.print(OS);
  EXPECT_EQ(OS.str(), "4:7: error [sema]: bad thing\n");
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto Toks = lexOk("");
  ASSERT_EQ(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, Identifiers) {
  auto Toks = lexOk("foo _bar baz9");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].Text, "foo");
  EXPECT_EQ(Toks[1].Text, "_bar");
  EXPECT_EQ(Toks[2].Text, "baz9");
}

TEST(Lexer, DecimalAndHexIntegers) {
  auto Toks = lexOk("0 42 0x1F");
  ASSERT_EQ(Toks.size(), 4u);
  EXPECT_EQ(Toks[0].IntValue, 0);
  EXPECT_EQ(Toks[1].IntValue, 42);
  EXPECT_EQ(Toks[2].IntValue, 31);
}

TEST(Lexer, StringLiteralEscapes) {
  auto Toks = lexOk("\"a\\n\\t\\\"b\"");
  ASSERT_GE(Toks.size(), 1u);
  EXPECT_TRUE(Toks[0].is(TokenKind::StringLiteral));
  EXPECT_EQ(Toks[0].Text, "a\n\t\"b");
}

TEST(Lexer, CharLiteral) {
  auto Toks = lexOk("'x' '\\n'");
  ASSERT_GE(Toks.size(), 2u);
  EXPECT_EQ(Toks[0].IntValue, 'x');
  EXPECT_EQ(Toks[1].IntValue, '\n');
}

TEST(Lexer, MultiCharPunctuation) {
  auto Toks = lexOk("-> && || == != <= >= => ...");
  std::vector<TokenKind> Expected = {
      TokenKind::Arrow,     TokenKind::AmpAmp, TokenKind::PipePipe,
      TokenKind::EqEq,      TokenKind::BangEq, TokenKind::LessEq,
      TokenKind::GreaterEq, TokenKind::FatArrow, TokenKind::Ellipsis,
      TokenKind::EndOfFile};
  ASSERT_EQ(Toks.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Toks[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, SingleCharPunctuationDoesNotGreedilyMerge) {
  auto Toks = lexOk("= = < > ! & |");
  std::vector<TokenKind> Expected = {
      TokenKind::Eq,   TokenKind::Eq,   TokenKind::Less, TokenKind::Greater,
      TokenKind::Bang, TokenKind::Amp,  TokenKind::Pipe,
      TokenKind::EndOfFile};
  ASSERT_EQ(Toks.size(), Expected.size());
  for (size_t I = 0; I < Expected.size(); ++I)
    EXPECT_EQ(Toks[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, LineCommentsSkipped) {
  auto Toks = lexOk("a // comment with * and / stuff\nb");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
}

TEST(Lexer, BlockCommentsSkipped) {
  auto Toks = lexOk("a /* multi\nline */ b");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, UnterminatedBlockCommentErrors) {
  DiagnosticEngine Diags;
  lex("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnterminatedStringErrors) {
  DiagnosticEngine Diags;
  lex("\"abc", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, UnknownCharacterErrors) {
  DiagnosticEngine Diags;
  auto Toks = lex("a $ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues past the bad character.
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[1].Text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  auto Toks = lexOk("ab\n  cd");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Loc, SourceLoc(1, 1));
  EXPECT_EQ(Toks[1].Loc, SourceLoc(2, 3));
}

} // namespace
