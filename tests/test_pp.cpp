//===- test_pp.cpp - Preprocessor and multi-TU front-end tests ------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// The preprocessor's hardening contracts (include cycles, recursive
// macros, conditional nesting, missing headers, diagnostic floods: all
// capped and diagnosed, never crashed on), its macro/conditional
// semantics, the line map's provenance, and the multi-TU front end's
// diagnostic remapping and link-time qualifier-signature checks.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "pp/Preprocessor.h"

#include "TestTempDir.h"

#include <fstream>
#include <gtest/gtest.h>

using namespace stq;

namespace {

struct PpRun {
  DiagnosticEngine Diags;
  pp::PpResult Result;
};

/// Preprocesses \p Main against an in-memory file map.
PpRun run(const std::string &Main, const pp::FileMap &Files,
          pp::PpOptions Options = {}) {
  PpRun R;
  pp::MemoryResolver Resolver(Files);
  R.Result = pp::preprocess("main.c", Main, Resolver, Options, R.Diags);
  return R;
}

bool anyDiagContains(const DiagnosticEngine &Diags, const std::string &Text) {
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find(Text) != std::string::npos)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Macro semantics
//===----------------------------------------------------------------------===//

TEST(PpMacros, ObjectAndFunctionLike) {
  PpRun R = run("#define N 10\n"
                "#define SQ(x) ((x) * (x))\n"
                "int v = SQ(N);\n",
                {});
  EXPECT_TRUE(R.Result.Ok);
  EXPECT_NE(R.Result.Text.find("( ( 10 ) * ( 10 ) )"), std::string::npos);
  EXPECT_EQ(R.Result.Stats.MacrosDefined, 2u);
  EXPECT_GE(R.Result.Stats.Expansions, 2u);
}

TEST(PpMacros, UndefStopsExpansion) {
  PpRun R = run("#define N 10\n"
                "int a = N;\n"
                "#undef N\n"
                "int b = N;\n",
                {});
  EXPECT_TRUE(R.Result.Ok);
  EXPECT_NE(R.Result.Text.find("int a = 10 ;"), std::string::npos);
  EXPECT_NE(R.Result.Text.find("int b = N;"), std::string::npos);
}

TEST(PpMacros, SelfReferentialMacroDoesNotLoop) {
  // C99 no-reexpansion: FOO inside its own expansion is not rescanned.
  PpRun R = run("#define FOO (FOO + 1)\n"
                "int v = FOO;\n",
                {});
  EXPECT_TRUE(R.Result.Ok);
  EXPECT_NE(R.Result.Text.find("( FOO + 1 )"), std::string::npos);
}

TEST(PpMacros, MutuallyRecursiveMacrosDoNotLoop) {
  PpRun R = run("#define A B\n"
                "#define B A\n"
                "int v = A;\n",
                {});
  EXPECT_TRUE(R.Result.Ok);
  // A -> B -> A, and the rescan of A is blocked: the token survives.
  EXPECT_NE(R.Result.Text.find("int v = A ;"), std::string::npos);
}

TEST(PpMacros, ExpansionsPerLineCapped) {
  // Each Xk doubles the work; X8 needs 2^8 - 1 > 16 expansions.
  std::string Src = "#define X0 z\n";
  for (int K = 1; K <= 8; ++K)
    Src += "#define X" + std::to_string(K) + " X" + std::to_string(K - 1) +
           " X" + std::to_string(K - 1) + "\n";
  Src += "int v = X8;\n";
  pp::PpOptions Options;
  Options.MaxExpansionsPerLine = 16;
  PpRun R = run(Src, {}, Options);
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_GE(R.Result.Stats.Expansions, 1u);
}

//===----------------------------------------------------------------------===//
// Includes
//===----------------------------------------------------------------------===//

TEST(PpIncludes, SearchPathAndLineMap) {
  pp::FileMap Files = {{"inc/ten.h", "#define TEN 10\nint ten = TEN;\n"}};
  pp::PpOptions Options;
  Options.IncludeDirs = {"inc"};
  PpRun R = run("#include \"ten.h\"\nint v = TEN;\n", Files, Options);
  ASSERT_TRUE(R.Result.Ok);
  EXPECT_EQ(R.Result.Stats.Includes, 1u);
  EXPECT_NE(R.Result.Text.find("int ten = 10 ;"), std::string::npos);

  // The spliced line's provenance points into the header, include stack
  // rooted at the main file.
  size_t Line = 0, At = 0;
  std::istringstream In(R.Result.Text);
  for (std::string L; std::getline(In, L);) {
    ++At;
    if (L.find("int ten") != std::string::npos)
      Line = At;
  }
  ASSERT_NE(Line, 0u);
  const pp::LineInfo *Info = R.Result.Map.info(static_cast<unsigned>(Line));
  ASSERT_NE(Info, nullptr);
  EXPECT_EQ(R.Result.Map.file(*Info), "inc/ten.h");
  ASSERT_EQ(R.Result.Map.stack(*Info).size(), 1u);
  EXPECT_EQ(R.Result.Map.stack(*Info)[0].File, "main.c");
}

TEST(PpIncludes, QuotedIncludeTriesIncluderDirFirst) {
  pp::FileMap Files = {{"sub/near.h", "int which = 1;\n"},
                       {"far/near.h", "int which = 2;\n"},
                       {"sub/main2.c", "#include \"near.h\"\n"}};
  pp::PpOptions Options;
  Options.IncludeDirs = {"far"};
  pp::MemoryResolver Resolver(Files);
  DiagnosticEngine Diags;
  pp::PpResult Result = pp::preprocess("sub/main2.c", Files["sub/main2.c"],
                                       Resolver, Options, Diags);
  ASSERT_TRUE(Result.Ok);
  EXPECT_NE(Result.Text.find("int which = 1;"), std::string::npos);
}

TEST(PpIncludes, QuotedIncludeFallsBackToSearchPath) {
  // Lookup order for `#include "x.h"`: the including file's directory
  // first, then each -I dir in command-line order. Here the includer's
  // directory (sub/) has no nested.h, so resolution must fall through to
  // the -I dirs — and must take them in order (first/ before second/).
  pp::FileMap Files = {{"first/nested.h", "int which = 1;\n"},
                       {"second/nested.h", "int which = 2;\n"},
                       {"sub/main3.c", "#include \"nested.h\"\n"}};
  pp::PpOptions Options;
  Options.IncludeDirs = {"first", "second"};
  pp::MemoryResolver Resolver(Files);
  DiagnosticEngine Diags;
  pp::PpResult Result = pp::preprocess("sub/main3.c", Files["sub/main3.c"],
                                       Resolver, Options, Diags);
  ASSERT_TRUE(Result.Ok);
  EXPECT_NE(Result.Text.find("int which = 1;"), std::string::npos);
  EXPECT_EQ(Result.Text.find("int which = 2;"), std::string::npos);
}

TEST(PpIncludes, DirectoryDoesNotSatisfyQuotedInclude) {
  // POSIX lets ifstream "open" a directory (it just reads zero bytes). A
  // subdirectory named like the header must not shadow the real one: the
  // includer-dir candidate fails and the -I fallback finds include/util.h.
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  namespace fs = std::filesystem;
  fs::create_directories(Tmp.path("include"));
  fs::create_directories(Tmp.path("util.h")); // decoy directory
  {
    std::ofstream H(Tmp.path("include/util.h"));
    H << "#define FROM_INCLUDE 1\nint util_marker = FROM_INCLUDE;\n";
  }
  std::string Main = "#include \"util.h\"\nint v = util_marker;\n";
  pp::PpOptions Options;
  Options.IncludeDirs = {Tmp.path("include")};
  pp::DiskResolver Resolver;
  DiagnosticEngine Diags;
  pp::PpResult Result =
      pp::preprocess(Tmp.path("main.c"), Main, Resolver, Options, Diags);
  ASSERT_TRUE(Result.Ok);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_NE(Result.Text.find("int util_marker = 1 ;"), std::string::npos);
}

TEST(PpIncludes, MissingHeaderDiagnosedAndRecovered) {
  PpRun R = run("#include \"nope.h\"\nint after = 1;\n", {});
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_TRUE(anyDiagContains(R.Diags, "nope.h"));
  // Processing continues past the bad directive.
  EXPECT_NE(R.Result.Text.find("int after = 1;"), std::string::npos);
}

TEST(PpIncludes, IncludeCycleCapped) {
  pp::FileMap Files = {{"a.h", "#include \"b.h\"\nint a;\n"},
                       {"b.h", "#include \"a.h\"\nint b;\n"}};
  pp::PpOptions Options;
  Options.MaxIncludeDepth = 8;
  PpRun R = run("#include \"a.h\"\n", Files, Options);
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(PpIncludes, SelfIncludeCapped) {
  pp::FileMap Files = {{"self.h", "#include \"self.h\"\n"}};
  pp::PpOptions Options;
  Options.MaxIncludeDepth = 4;
  PpRun R = run("#include \"self.h\"\n", Files, Options);
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(PpIncludes, GuardedHeaderIncludedTwiceIsIdempotent) {
  pp::FileMap Files = {
      {"g.h", "#ifndef G_H\n#define G_H\nint g = 1;\n#endif\n"}};
  PpRun R = run("#include \"g.h\"\n#include \"g.h\"\nint v = g;\n", Files);
  ASSERT_TRUE(R.Result.Ok);
  size_t First = R.Result.Text.find("int g = 1;");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(R.Result.Text.find("int g = 1;", First + 1), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Conditionals
//===----------------------------------------------------------------------===//

TEST(PpConditionals, ElifChainAndDefined) {
  PpRun R = run("#define A 3\n"
                "#if A > 5\n"
                "int picked = 1;\n"
                "#elif (A * 2) == 6 && defined(A)\n"
                "int picked = 2;\n"
                "#else\n"
                "int picked = 3;\n"
                "#endif\n",
                {});
  ASSERT_TRUE(R.Result.Ok);
  EXPECT_NE(R.Result.Text.find("int picked = 2;"), std::string::npos);
  EXPECT_EQ(R.Result.Text.find("int picked = 1;"), std::string::npos);
  EXPECT_EQ(R.Result.Text.find("int picked = 3;"), std::string::npos);
}

TEST(PpConditionals, PredefinesFromOptions) {
  pp::PpOptions Options;
  Options.Defines = {"FLAG", "VAL=7"};
  PpRun R = run("#ifdef FLAG\nint v = VAL;\n#endif\n", {}, Options);
  ASSERT_TRUE(R.Result.Ok);
  EXPECT_NE(R.Result.Text.find("int v = 7 ;"), std::string::npos);
}

TEST(PpConditionals, NestingDepthCapped) {
  pp::PpOptions Options;
  Options.MaxConditionalDepth = 4;
  std::string Src;
  for (int I = 0; I < 6; ++I)
    Src += "#if 1\n";
  Src += "int v = 1;\n";
  for (int I = 0; I < 6; ++I)
    Src += "#endif\n";
  PpRun R = run(Src, {}, Options);
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(PpConditionals, UnterminatedConditionalDiagnosed) {
  PpRun R = run("#if 1\nint v = 1;\n", {});
  EXPECT_FALSE(R.Result.Ok);
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(PpConditionals, ErrorDirectiveOnlyFiresInLiveBranch) {
  PpRun Skipped = run("#if 0\n#error dead\n#endif\nint v = 1;\n", {});
  EXPECT_TRUE(Skipped.Result.Ok);
  PpRun Live = run("#error boom\n", {});
  EXPECT_FALSE(Live.Result.Ok);
  EXPECT_TRUE(anyDiagContains(Live.Diags, "boom"));
}

//===----------------------------------------------------------------------===//
// Robustness and hashing
//===----------------------------------------------------------------------===//

TEST(PpRobustness, DiagnosticFloodCapped) {
  pp::PpOptions Options;
  Options.MaxErrors = 3;
  std::string Src;
  for (int I = 0; I < 20; ++I)
    Src += "#include \"missing" + std::to_string(I) + ".h\"\n";
  PpRun R = run(Src, {}, Options);
  EXPECT_FALSE(R.Result.Ok);
  // Capped: nowhere near one error per missing header (the +1 allows a
  // trailing "too many errors" style note).
  EXPECT_LE(R.Diags.diagnostics().size(), 8u);
}

TEST(PpRobustness, CommentBytesBecomeSpaces) {
  PpRun R = run("int /* gone */ x = 1;\n", {});
  ASSERT_TRUE(R.Result.Ok);
  // Line length and the column of 'x' survive comment stripping.
  EXPECT_NE(R.Result.Text.find("int            x = 1;"), std::string::npos);
}

TEST(PpRobustness, StreamHashTracksHeaderEdits) {
  pp::FileMap V1 = {{"h.h", "#define TEN 10\n"}};
  pp::FileMap V2 = {{"h.h", "#define TEN 12\n"}};
  std::string Main = "#include \"h.h\"\nint v = TEN;\n";
  PpRun A = run(Main, V1);
  PpRun B = run(Main, V2);
  PpRun C = run(Main, V1);
  ASSERT_TRUE(A.Result.Ok);
  ASSERT_TRUE(B.Result.Ok);
  EXPECT_TRUE(A.Result.StreamHashA != B.Result.StreamHashA ||
              A.Result.StreamHashB != B.Result.StreamHashB);
  EXPECT_EQ(A.Result.StreamHashA, C.Result.StreamHashA);
  EXPECT_EQ(A.Result.StreamHashB, C.Result.StreamHashB);
}

TEST(PpRobustness, CollectIncludeClosureRecordsHeaders) {
  stq::testing::TempDir Dir;
  ASSERT_TRUE(Dir.valid());
  {
    std::ofstream H(Dir.path("dep.h"));
    H << "int dep = 1;\n";
  }
  pp::PpOptions Options;
  Options.IncludeDirs = {Dir.str()};
  pp::FileMap Closure = pp::collectIncludeClosure(
      {{"main.c", "#include \"dep.h\"\nint v = dep;\n"}}, Options);
  ASSERT_EQ(Closure.size(), 1u);
  EXPECT_EQ(Closure.begin()->first, Dir.path("dep.h"));
  EXPECT_EQ(Closure.begin()->second, "int dep = 1;\n");
}

//===----------------------------------------------------------------------===//
// Multi-TU front end: remapping and link checks
//===----------------------------------------------------------------------===//

frontend::CompileOptions compileOpts(const pp::FileMap *Files = nullptr) {
  frontend::CompileOptions CO;
  CO.Files = Files;
  CO.QualNames = {"pos", "neg"};
  return CO;
}

TEST(Frontend, RemapAddsMacroExpansionNote) {
  // BAD expands to a parse error, so the TU-local diagnostic lands on a
  // macro-rewritten line; the remap must attribute it to tu.c line 2 and
  // append the macro-expansion note.
  pp::FileMap Files = {{"m.h", "#define BAD ] ]\n"}};
  frontend::CompileOptions CO = compileOpts(&Files);
  DiagnosticEngine Diags;
  frontend::TUnit U = frontend::compileUnit(
      "tu.c", "#include \"m.h\"\nint v = BAD;\n", CO, Diags);
  EXPECT_FALSE(U.FrontEndOk);
  ASSERT_FALSE(Diags.diagnostics().empty());
  std::vector<Diagnostic> Ds = Diags.diagnostics();
  frontend::remapDiagnostics(Ds, 0, U.Name, U.Pp.Map);
  bool SawRemapped = false, SawNote = false;
  for (const Diagnostic &D : Ds) {
    if (D.Severity == DiagSeverity::Error && D.File == "tu.c" &&
        D.Loc.Line == 2)
      SawRemapped = true;
    if (D.Severity == DiagSeverity::Note &&
        D.Message.find("macro 'BAD'") != std::string::npos)
      SawNote = true;
  }
  EXPECT_TRUE(SawRemapped);
  EXPECT_TRUE(SawNote);
}

TEST(Frontend, LinkAcceptsAgreeingPrototype) {
  frontend::CompileOptions CO = compileOpts();
  DiagnosticEngine D1, D2;
  std::vector<frontend::TUnit> TUs;
  TUs.push_back(frontend::compileUnit(
      "def.c", "int pos f(int pos a) { return a; }\n", CO, D1));
  TUs.push_back(frontend::compileUnit(
      "use.c", "int pos f(int pos a);\nint main() { return f(3) % 2; }\n", CO,
      D2));
  ASSERT_TRUE(TUs[0].FrontEndOk);
  ASSERT_TRUE(TUs[1].FrontEndOk);
  DiagnosticEngine Link;
  EXPECT_TRUE(frontend::linkUnits(TUs, Link));
  EXPECT_EQ(Link.countInPhase("link"), 0u);
}

TEST(Frontend, LinkRejectsQualifierSignatureMismatch) {
  frontend::CompileOptions CO = compileOpts();
  DiagnosticEngine D1, D2;
  std::vector<frontend::TUnit> TUs;
  TUs.push_back(frontend::compileUnit(
      "def.c", "int pos f(int pos a) { return a; }\n", CO, D1));
  // The caller's prototype drops the return qualifier: exactly the
  // cross-TU bug the link step exists to catch.
  TUs.push_back(frontend::compileUnit(
      "use.c", "int f(int pos a);\nint main() { return f(3) % 2; }\n", CO,
      D2));
  ASSERT_TRUE(TUs[0].FrontEndOk);
  ASSERT_TRUE(TUs[1].FrontEndOk);
  DiagnosticEngine Link;
  EXPECT_FALSE(frontend::linkUnits(TUs, Link));
  EXPECT_GE(Link.countInPhase("link"), 1u);
}

TEST(Frontend, LinkRejectsDuplicateDefinition) {
  frontend::CompileOptions CO = compileOpts();
  DiagnosticEngine D1, D2;
  std::vector<frontend::TUnit> TUs;
  TUs.push_back(frontend::compileUnit(
      "one.c", "int pos f(int pos a) { return a; }\n", CO, D1));
  TUs.push_back(frontend::compileUnit(
      "two.c", "int pos f(int pos a) { return a * a; }\n", CO, D2));
  ASSERT_TRUE(TUs[0].FrontEndOk);
  ASSERT_TRUE(TUs[1].FrontEndOk);
  DiagnosticEngine Link;
  EXPECT_FALSE(frontend::linkUnits(TUs, Link));
  EXPECT_GE(Link.countInPhase("link"), 1u);
}

} // namespace
