//===- test_properties.cpp - Cross-module property tests ------------------===//
//
// Property-based tests that cut across modules:
//
//  * the ground theory solver never reports a conflict for a satisfiable
//    conjunction (soundness of the prover's core, checked against brute
//    force over small domains);
//  * printing and reparsing a generated workload preserves the checker's
//    observable behavior;
//  * the parser survives arbitrary token garbage;
//  * a user-defined qualifier suite (the kernel/user qualifiers of Johnson
//    and Wagner, which the paper cites) works end to end without any
//    builtin support.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Printer.h"
#include "cminus/Sema.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "prover/ProverCache.h"
#include "prover/Theory.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// Theory-solver soundness vs brute force
//===----------------------------------------------------------------------===//

/// Random conjunctions over 4 integer variables with values in [-2, 2].
/// If the solver reports a conflict, brute force must find no model.
class TheorySoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TheorySoundness, NoFalseConflicts) {
  std::mt19937_64 Rng(GetParam());
  unsigned ConflictsFound = 0, Cases = 0;
  for (unsigned Iter = 0; Iter < 400; ++Iter) {
    prover::TermArena A;
    std::vector<prover::TermId> Vars = {A.app("v0"), A.app("v1"),
                                        A.app("v2"), A.app("v3")};
    auto Pick = [&](unsigned N) {
      return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
    };
    unsigned NumLits = 3 + Pick(5);
    std::vector<prover::Lit> Lits;
    // Mirror each literal as a closure over concrete assignments.
    struct ConcreteLit {
      bool Neg;
      prover::Lit::Op O;
      int L, R;       // Variable indices, or -1 when a constant.
      int64_t LC, RC; // Constant values when L/R is -1.
    };
    std::vector<ConcreteLit> Concrete;
    for (unsigned I = 0; I < NumLits; ++I) {
      ConcreteLit C;
      C.Neg = Pick(2) == 0;
      unsigned OpPick = Pick(3);
      C.O = OpPick == 0   ? prover::Lit::Op::Eq
            : OpPick == 1 ? prover::Lit::Op::Le
                          : prover::Lit::Op::Lt;
      C.L = static_cast<int>(Pick(4));
      if (Pick(2) == 0) {
        C.R = static_cast<int>(Pick(4));
      } else {
        C.R = -1;
        C.RC = static_cast<int64_t>(Pick(5)) - 2;
      }
      Concrete.push_back(C);
      prover::TermId Lt = Vars[C.L];
      prover::TermId Rt = C.R >= 0 ? Vars[C.R] : A.intConst(C.RC);
      Lits.push_back(prover::Lit{C.Neg, C.O, Lt, Rt});
    }

    bool SolverConflict = prover::theoryConflict(A, Lits);
    ++Cases;
    if (!SolverConflict)
      continue; // Solver may be incomplete; only conflicts are claims.
    ++ConflictsFound;

    // Brute force all 5^4 assignments.
    bool Satisfiable = false;
    for (int V0 = -2; V0 <= 2 && !Satisfiable; ++V0)
      for (int V1 = -2; V1 <= 2 && !Satisfiable; ++V1)
        for (int V2 = -2; V2 <= 2 && !Satisfiable; ++V2)
          for (int V3 = -2; V3 <= 2 && !Satisfiable; ++V3) {
            int64_t Vals[4] = {V0, V1, V2, V3};
            bool All = true;
            for (const ConcreteLit &C : Concrete) {
              int64_t L = Vals[C.L];
              int64_t R = C.R >= 0 ? Vals[C.R] : C.RC;
              bool Holds = C.O == prover::Lit::Op::Eq   ? L == R
                           : C.O == prover::Lit::Op::Le ? L <= R
                                                        : L < R;
              if (C.Neg)
                Holds = !Holds;
              if (!Holds) {
                All = false;
                break;
              }
            }
            Satisfiable = All;
          }
    // A solver conflict claims unsatisfiability over ALL integers, so any
    // model inside the box refutes it. (The converse is not asserted:
    // no box model does not mean no integer model, and the solver is
    // allowed to be incomplete anyway.)
    EXPECT_FALSE(Satisfiable)
        << "solver reported a conflict for a satisfiable conjunction";
  }
  // The generator should produce a healthy mix.
  EXPECT_GT(ConflictsFound, 10u);
  EXPECT_LT(ConflictsFound, Cases);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheorySoundness,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

//===----------------------------------------------------------------------===//
// Print / reparse round trip
//===----------------------------------------------------------------------===//

struct PipelineResult {
  unsigned QualErrors = 0;
  unsigned DerefSites = 0;
  bool Ok = false;
};

PipelineResult runPipeline(const std::string &Source,
                           const qual::QualifierSet &Quals) {
  PipelineResult Out;
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Source, Quals.names(), Diags);
  if (Diags.hasErrors())
    return Out;
  if (!cminus::runSema(*Prog, Quals.refNames(), Diags))
    return Out;
  if (!cminus::lowerProgram(*Prog, Diags))
    return Out;
  checker::QualChecker Checker(*Prog, Quals, Diags, {});
  auto Result = Checker.run();
  Out.QualErrors = Result.QualErrors;
  Out.DerefSites = Result.Stats.DerefSites;
  Out.Ok = true;
  return Out;
}

TEST(RoundTrip, WorkloadsSurvivePrintAndReparse) {
  // The taint workloads mention untainted in their prelude, so register
  // the full qualifier vocabulary.
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers(
      {"nonnull", "tainted", "untainted"}, Quals, Diags));

  for (const workloads::GeneratedWorkload &W :
       {workloads::makeGrepDfa(), workloads::makeMingetty(),
        workloads::makeIdentd()}) {
    // Parse the original (unlowered: print before lowering to keep the
    // program in surface form).
    DiagnosticEngine D1;
    auto Prog = cminus::parseProgram(W.Source, Quals.names(), D1);
    ASSERT_FALSE(D1.hasErrors()) << W.Name;
    ASSERT_TRUE(cminus::runSema(*Prog, Quals.refNames(), D1));
    std::string Printed = cminus::printProgram(*Prog);

    PipelineResult Original = runPipeline(W.Source, Quals);
    PipelineResult Reparsed = runPipeline(Printed, Quals);
    ASSERT_TRUE(Original.Ok) << W.Name;
    ASSERT_TRUE(Reparsed.Ok) << W.Name << "\n" << Printed.substr(0, 2000);
    // The checker sees the same program.
    EXPECT_EQ(Original.QualErrors, Reparsed.QualErrors) << W.Name;
    EXPECT_EQ(Original.DerefSites, Reparsed.DerefSites) << W.Name;
  }
}

//===----------------------------------------------------------------------===//
// Parser robustness
//===----------------------------------------------------------------------===//

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, GarbageNeverCrashes) {
  // Token soup from the fuzz library's C-minus vocabulary (the same
  // generator the stq-fuzz robustness oracle drives).
  fuzz::Rng Rng(GetParam());
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    unsigned Len = 5 + static_cast<unsigned>(Rng.pick(60));
    std::string Source = fuzz::tokenSoup(Rng, fuzz::Vocab::CMinus, Len);
    DiagnosticEngine Diags;
    auto Prog = cminus::parseProgram(Source, {"pos"}, Diags);
    ASSERT_NE(Prog, nullptr);
    // If it parsed cleanly, the rest of the pipeline must also not crash.
    if (!Diags.hasErrors()) {
      cminus::runSema(*Prog, {}, Diags);
      if (!Diags.hasErrors())
        cminus::lowerProgram(*Prog, Diags);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(7, 77, 777));

TEST(QualParserFuzz, GarbageNeverCrashes) {
  fuzz::Rng Rng(99);
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    unsigned Len = 5 + static_cast<unsigned>(Rng.pick(50));
    std::string Source = fuzz::tokenSoup(Rng, fuzz::Vocab::QualDsl, Len);
    qual::QualifierSet Set;
    DiagnosticEngine Diags;
    if (qual::parseQualifiers(Source, Set, Diags))
      qual::checkWellFormed(Set, Diags);
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedProgramsNeverCrash) {
  // Byte-level mutations of a valid generated program: exercises lexer and
  // error recovery near well-formed input rather than in pure soup.
  fuzz::Rng Rng(4242);
  for (unsigned Iter = 0; Iter < 100; ++Iter) {
    fuzz::Rng GenRng(Rng.next());
    std::string Valid = fuzz::generateProgram(GenRng);
    std::string Mutated = fuzz::mutateBytes(Valid, Rng);
    DiagnosticEngine Diags;
    auto Prog =
        cminus::parseProgram(Mutated, fuzz::programQualifiers(), Diags);
    ASSERT_NE(Prog, nullptr);
    if (!Diags.hasErrors()) {
      cminus::runSema(*Prog, {"unique", "unaliased"}, Diags);
      if (!Diags.hasErrors())
        cminus::lowerProgram(*Prog, Diags);
    }
  }
}

//===----------------------------------------------------------------------===//
// A user-defined qualifier suite: kernel/user pointers
//===----------------------------------------------------------------------===//

TEST(UserDefinedSuite, KernelUserPointersEndToEnd) {
  // The flow qualifiers of Johnson and Wagner (cited in section 2.1.4):
  // pointers from user space must never be dereferenced in kernel space.
  // Entirely user-defined - no builtin involvement.
  const char *Defs = R"(
value qualifier kernel(T* Expr E)
  case E of
    decl T LValue L:
      &L
  restrict
    decl T* Expr E1:
      *E1, where kernel(E1)
value qualifier user(T* Expr E)
  case E of
    E
)";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::parseQualifiers(Defs, Set, Diags));
  ASSERT_TRUE(qual::checkWellFormed(Set, Diags));

  // Dereferencing a user pointer in the kernel is rejected; copy_from_user
  // launders it through a kernel buffer.
  const char *Code = "void copy_from_user(int* kernel dst, int* user src);\n"
                     "int syscall_handler(int* user ubuf) {\n"
                     "  int kbuf;\n"
                     "  copy_from_user(&kbuf, ubuf);\n"
                     "  return kbuf;\n"
                     "}\n"
                     "int bad_handler(int* user ubuf) {\n"
                     "  return *ubuf;\n"
                     "}\n";
  DiagnosticEngine D2;
  std::unique_ptr<cminus::Program> Prog;
  auto Result = checker::checkSource(Code, Set, D2, Prog);
  ASSERT_FALSE(D2.hasErrors());
  // Exactly one error: the direct dereference in bad_handler. (And the
  // dereference inside copy_from_user's contract is the callee's
  // problem; it has no body here.)
  EXPECT_EQ(Result.QualErrors, 1u);
}

TEST(UserDefinedSuite, KernelQualifierProvesSound) {
  // kernel's case rule (&L is a kernel pointer) establishes... nothing
  // (flow qualifier, no invariant) - it is vacuously sound, like
  // tainted/untainted.
  const char *Defs = "value qualifier kernel(T* Expr E)\n"
                     "  case E of\n"
                     "    decl T LValue L:\n"
                     "      &L\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::parseQualifiers(Defs, Set, Diags));
  ASSERT_TRUE(qual::checkWellFormed(Set, Diags));
  // No invariant: no obligations, guaranteed by subtyping.
  EXPECT_FALSE(Set.find("kernel")->Invariant.has_value());
}

//===----------------------------------------------------------------------===//
// Canonical formula hashing (the prover cache's key function)
//===----------------------------------------------------------------------===//
//
// The memoized prover cache replays an answer whenever two proof tasks
// canonicalize identically, so the canonical form must be (a) injective on
// structurally distinct ground terms and formulas — collisions would replay
// wrong answers — and (b) invariant under exactly the transformations the
// prover itself cannot observe: alpha-renaming of bound variables and the
// orientation of symmetric equalities.

/// Canonical form of one formula in its own throwaway canonicalizer.
std::string keyOf(const prover::TermArena &A, const prover::FormulaPtr &F) {
  return prover::Canonicalizer(A).formula(F);
}

TEST(CanonicalizerProperty, GroundTermInjectivityBruteForce) {
  // Brute-force the space of ground terms of depth <= 2 over two atoms,
  // two integer literals, one unary and one binary symbol. Hash-consing
  // makes TermIds structure-unique, so injectivity is exactly "number of
  // distinct canonical strings == number of distinct TermIds".
  prover::TermArena A;
  std::vector<prover::TermId> All = {A.app("a"), A.app("b"), A.intConst(0),
                                     A.intConst(1)};
  for (unsigned Depth = 0; Depth < 2; ++Depth) {
    std::vector<prover::TermId> Snapshot = All;
    for (prover::TermId T : Snapshot)
      All.push_back(A.app("f", {T}));
    for (prover::TermId L : Snapshot)
      for (prover::TermId R : Snapshot)
        All.push_back(A.app("g", {L, R}));
  }
  std::set<prover::TermId> Unique(All.begin(), All.end());
  std::set<std::string> Keys;
  for (prover::TermId T : Unique)
    Keys.insert(prover::Canonicalizer(A).term(T));
  EXPECT_GT(Unique.size(), 600u); // The space is genuinely brute-forced.
  EXPECT_EQ(Keys.size(), Unique.size());
}

TEST(CanonicalizerProperty, GroundFormulaInjectivity) {
  prover::TermArena A;
  std::vector<prover::TermId> Terms = {A.app("a"), A.app("b"), A.intConst(0),
                                       A.app("f", {A.app("a")})};

  // Ordered comparisons and connectives: no two distinct formulas may
  // share a key.
  std::vector<prover::FormulaPtr> Formulas = {prover::fTrue(),
                                              prover::fFalse()};
  for (prover::TermId L : Terms)
    for (prover::TermId R : Terms) {
      Formulas.push_back(prover::fLt(L, R));
      Formulas.push_back(prover::fLe(L, R));
      Formulas.push_back(prover::fNot(prover::fLt(L, R)));
    }
  prover::FormulaPtr P = prover::fLt(Terms[0], Terms[1]);
  prover::FormulaPtr Q = prover::fLt(Terms[1], Terms[0]);
  Formulas.push_back(prover::fAnd({P, Q}));
  Formulas.push_back(prover::fAnd({Q, P}));
  Formulas.push_back(prover::fOr({P, Q}));
  Formulas.push_back(prover::fOr({Q, P}));
  Formulas.push_back(prover::fImplies(P, Q));
  Formulas.push_back(prover::fImplies(Q, P));

  std::set<std::string> Keys;
  for (const prover::FormulaPtr &F : Formulas)
    Keys.insert(keyOf(A, F));
  EXPECT_EQ(Keys.size(), Formulas.size());
}

TEST(CanonicalizerProperty, EqualityOrientationCollapsesSwapsOnly) {
  prover::TermArena A;
  std::vector<prover::TermId> Terms = {A.app("a"), A.app("b"), A.intConst(0),
                                       A.intConst(1)};
  // a = b and b = a are the same constraint; the canonical form orients
  // them identically — and collapses nothing else. Over all 16 ordered
  // pairs that leaves exactly the 10 unordered pairs (incl. diagonal).
  std::set<std::string> Keys;
  for (prover::TermId L : Terms)
    for (prover::TermId R : Terms) {
      EXPECT_EQ(keyOf(A, prover::fEq(L, R)), keyOf(A, prover::fEq(R, L)));
      Keys.insert(keyOf(A, prover::fEq(L, R)));
    }
  EXPECT_EQ(Keys.size(), 10u);
}

TEST(CanonicalizerProperty, AlphaRenamingInvariance) {
  // forall X Y. p(X, Y) => q(Y), built with arbitrary binder names and in
  // arbitrary binder-list order, always canonicalizes identically — the
  // whole point of the cache key being usable across prover sessions.
  auto Build = [](const std::string &X, const std::string &Y, bool SwapVars) {
    prover::TermArena A;
    prover::FormulaPtr Body =
        prover::fImplies(prover::fPred(A, "p", {A.var(X), A.var(Y)}),
                         prover::fPred(A, "q", {A.var(Y)}));
    std::vector<std::string> Vars =
        SwapVars ? std::vector<std::string>{Y, X}
                 : std::vector<std::string>{X, Y};
    return prover::Canonicalizer(A).formula(prover::fForall(Vars, Body));
  };
  std::string Reference = Build("x", "y", false);
  EXPECT_EQ(Reference, Build("u", "v", false));
  EXPECT_EQ(Reference, Build("lhs", "rhs", false));
  // Binder-list order is immaterial: indices come from first use.
  EXPECT_EQ(Reference, Build("x", "y", true));

  // Renaming must be consistent: forall x y. p(x, x) is a different
  // formula and must not collide.
  prover::TermArena A;
  prover::FormulaPtr Diag = prover::fForall(
      {"x", "y"}, prover::fImplies(prover::fPred(A, "p", {A.var("x"), A.var("x")}),
                                   prover::fPred(A, "q", {A.var("x")})));
  EXPECT_NE(Reference, prover::Canonicalizer(A).formula(Diag));
}

TEST(CanonicalizerProperty, ShadowingAndFreeVariables) {
  // Inner binders shadow outer ones; renaming only the inner binder keeps
  // the key, renaming a *free* variable changes it (free names are part of
  // the task's meaning).
  auto Nested = [](const std::string &Inner) {
    prover::TermArena A;
    prover::FormulaPtr InnerF =
        prover::fForall({Inner}, prover::fPred(A, "q", {A.var(Inner)}));
    return prover::Canonicalizer(A).formula(prover::fForall(
        {"x"}, prover::fImplies(prover::fPred(A, "p", {A.var("x")}), InnerF)));
  };
  EXPECT_EQ(Nested("x"), Nested("z"));

  auto Free = [](const std::string &Name) {
    prover::TermArena A;
    return prover::Canonicalizer(A).formula(
        prover::fPred(A, "p", {A.var(Name)}));
  };
  EXPECT_NE(Free("x"), Free("y"));
}

TEST(CanonicalizerProperty, SymmetricEqualityUnderBinders) {
  // The orientation decision must itself be alpha-invariant: the probe
  // serialization renders not-yet-numbered binders as a wildcard, so
  // forall x. x = a and forall x. a = x orient the same way.
  auto Build = [](bool Swap) {
    prover::TermArena A;
    prover::TermId X = A.var("x"), C = A.app("a");
    prover::FormulaPtr Body =
        Swap ? prover::fEq(C, X) : prover::fEq(X, C);
    return prover::Canonicalizer(A).formula(prover::fForall({"x"}, Body));
  };
  EXPECT_EQ(Build(false), Build(true));

  // Two unnumbered binders tie in the probe and keep their order; the
  // formulas are alpha-plus-symmetry equivalent, so collapsing is correct.
  auto Pair = [](bool Swap) {
    prover::TermArena A;
    prover::TermId X = A.var("x"), Y = A.var("y");
    prover::FormulaPtr Body =
        Swap ? prover::fEq(Y, X) : prover::fEq(X, Y);
    return prover::Canonicalizer(A).formula(prover::fForall({"x", "y"}, Body));
  };
  EXPECT_EQ(Pair(false), Pair(true));
}

TEST(CanonicalizerProperty, TaskKeyStableAcrossArenas) {
  // The full task key (axioms + hypotheses + goal) must not depend on the
  // arena's interning order — that is what lets one session replay
  // another's answer.
  auto Build = [](bool WarmArena, const std::string &BinderName) {
    auto A = std::make_unique<prover::TermArena>();
    if (WarmArena) {
      // Interning unrelated junk first shifts every TermId.
      A->app("junk", {A->intConst(42), A->app("more")});
    }
    prover::TermId C = A->app("c");
    prover::FormulaPtr Axiom = prover::fForall(
        {BinderName},
        prover::fImplies(prover::fPred(*A, "p", {A->var(BinderName)}),
                         prover::fPred(*A, "q", {A->var(BinderName)})));
    prover::FormulaPtr Hyp = prover::fPred(*A, "p", {C});
    prover::FormulaPtr Goal = prover::fPred(*A, "q", {C});
    std::vector<prover::ProverInput> Inputs = {{"axiom:imp", Axiom},
                                               {"hyp", Hyp}};
    return prover::canonicalTaskKey(*A, Inputs, Goal);
  };
  std::string Reference = Build(false, "x");
  EXPECT_EQ(Reference, Build(true, "x"));
  EXPECT_EQ(Reference, Build(true, "v"));
  EXPECT_EQ(Reference, Build(false, "binder"));
}

TEST(CanonicalizerProperty, RandomAlphaRenamings) {
  // Randomized variant: random small formulas, random fresh binder names;
  // the key never changes under renaming.
  std::mt19937 Rng(99);
  auto Pick = [&](unsigned N) {
    return std::uniform_int_distribution<unsigned>(0, N - 1)(Rng);
  };
  for (unsigned Iter = 0; Iter < 200; ++Iter) {
    // A random body over two binders: a conjunction of 1-3 predicate
    // literals, each over a random choice of the binders.
    unsigned Lits = 1 + Pick(3);
    std::vector<std::pair<unsigned, unsigned>> Shape;
    for (unsigned L = 0; L < Lits; ++L)
      Shape.push_back({Pick(2), Pick(2)});
    auto Build = [&](const std::string &V0, const std::string &V1) {
      prover::TermArena A;
      std::vector<prover::FormulaPtr> Kids;
      const std::string Names[2] = {V0, V1};
      for (auto [I, J] : Shape)
        Kids.push_back(prover::fPred(
            A, "p" + std::to_string(Kids.size()),
            {A.var(Names[I]), A.var(Names[J])}));
      return prover::Canonicalizer(A).formula(
          prover::fForall({V0, V1}, prover::fAnd(Kids)));
    };
    std::string N0 = "a" + std::to_string(Pick(1000));
    std::string N1 = "b" + std::to_string(Pick(1000));
    ASSERT_EQ(Build("x", "y"), Build(N0, N1)) << "iteration " << Iter;
  }
}

} // namespace
