//===- test_fuzz.cpp - Unit tests for the fuzz library --------------------===//
//
// The stq-fuzz campaign (src/fuzz) is itself load-bearing test
// infrastructure, so its pieces get their own unit tests: the program and
// qualifier-set generators must uphold the promises the oracles rely on
// (Sound mode is checker-accepted, Mixed mode plants diagnostics, generated
// qualifier sets always load), the shrinker must actually minimize, and a
// whole campaign must be deterministic in its seed.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "fuzz/Campaign.h"
#include "fuzz/Mutator.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/ProverSessionGen.h"
#include "fuzz/QualGen.h"
#include "fuzz/Shrinker.h"
#include "qual/QualParser.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(FuzzRng, DeterministicAndSeedSensitive) {
  fuzz::Rng A(7), B(7), C(8);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  fuzz::Rng A2(7);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(FuzzRng, RangeStaysInBounds) {
  fuzz::Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    long V = R.range(-4, 17);
    EXPECT_GE(V, -4);
    EXPECT_LE(V, 17);
    EXPECT_LT(R.pick(9), 9u);
  }
}

//===----------------------------------------------------------------------===//
// Program generator: the promises the oracles rest on
//===----------------------------------------------------------------------===//

TEST(FuzzProgramGen, EqualSeedsYieldIdenticalPrograms) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    fuzz::Rng A(Seed), B(Seed);
    EXPECT_EQ(fuzz::generateProgram(A), fuzz::generateProgram(B));
  }
}

TEST(FuzzProgramGen, SoundModeIsFrontEndCleanAndAccepted) {
  // Sound mode arms the Theorem 5.1 oracle, which is only meaningful if
  // the checker actually accepts the programs.
  SessionOptions SO;
  SO.Builtins = fuzz::programQualifiers();
  Session S(SO);
  for (uint64_t Seed = 100; Seed < 160; ++Seed) {
    fuzz::Rng R(Seed);
    std::string Src = fuzz::generateProgram(R);
    Session::CheckOutcome Out = S.check(Src);
    EXPECT_TRUE(Out.FrontEndOk) << "seed " << Seed << "\n" << Src;
    EXPECT_EQ(Out.Result.QualErrors, 0u) << "seed " << Seed << "\n" << Src;
  }
}

TEST(FuzzProgramGen, MixedModeIsFrontEndCleanAndPlantsErrors) {
  SessionOptions SO;
  SO.Builtins = fuzz::programQualifiers();
  Session S(SO);
  unsigned WithErrors = 0;
  for (uint64_t Seed = 0; Seed < 40; ++Seed) {
    fuzz::Rng R(Seed);
    fuzz::ProgramGenOptions Opts;
    Opts.GenMode = fuzz::ProgramGenOptions::Mode::Mixed;
    std::string Src = fuzz::generateProgram(R, Opts);
    Session::CheckOutcome Out = S.check(Src);
    EXPECT_TRUE(Out.FrontEndOk) << "seed " << Seed << "\n" << Src;
    WithErrors += Out.Result.QualErrors > 0;
  }
  // The differential oracle needs diagnostics to compare; most Mixed
  // programs must carry at least one.
  EXPECT_GT(WithErrors, 20u);
}

TEST(FuzzProgramGen, AcceptedSoundProgramsAuditCleanly) {
  // A direct (small-scale) statement of the campaign's soundness oracle.
  SessionOptions SO;
  SO.Builtins = fuzz::programQualifiers();
  SO.Interp.AuditQualifiedStores = true;
  SO.Interp.Fuel = 200000;
  Session S(SO);
  unsigned Audited = 0;
  for (uint64_t Seed = 500; Seed < 520; ++Seed) {
    fuzz::Rng R(Seed);
    std::string Src = fuzz::generateProgram(R);
    Session::RunOutcome Out = S.run(Src);
    ASSERT_EQ(Out.Check.Result.QualErrors, 0u) << Src;
    EXPECT_NE(Out.Run.Status, interp::RunStatus::Trap)
        << "seed " << Seed << ": " << Out.Run.TrapMessage << "\n" << Src;
    EXPECT_TRUE(Out.Run.AuditFailures.empty()) << "seed " << Seed << "\n"
                                               << Src;
    Audited += Out.Run.AuditChecks > 0;
  }
  // The oracle is vacuous unless audits actually execute.
  EXPECT_GT(Audited, 10u);
}

//===----------------------------------------------------------------------===//
// Qualifier-set generator
//===----------------------------------------------------------------------===//

TEST(FuzzQualGen, GeneratedSetsAlwaysLoad) {
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    fuzz::Rng R(Seed);
    fuzz::GeneratedQualSet Set = fuzz::generateQualSet(R);
    ASSERT_FALSE(Set.Quals.empty());
    qual::QualifierSet Parsed;
    DiagnosticEngine Diags;
    EXPECT_TRUE(qual::parseQualifiers(Set.Source, Parsed, Diags))
        << "seed " << Seed << "\n" << Set.Source;
    EXPECT_TRUE(qual::checkWellFormed(Parsed, Diags))
        << "seed " << Seed << "\n" << Set.Source;
  }
}

TEST(FuzzQualGen, DerivableConstSatisfiesConstCase) {
  auto Holds = [](long C, const std::string &Op, long Bound) {
    if (Op == ">")
      return C > Bound;
    if (Op == ">=")
      return C >= Bound;
    if (Op == "<")
      return C < Bound;
    if (Op == "<=")
      return C <= Bound;
    if (Op == "==")
      return C == Bound;
    return C != Bound;
  };
  unsigned ValueQuals = 0;
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    fuzz::Rng R(Seed);
    fuzz::GeneratedQualSet Set = fuzz::generateQualSet(R);
    for (const fuzz::GeneratedQualifier &Q : Set.Quals) {
      long C = 0;
      if (Q.IsRef) {
        EXPECT_FALSE(fuzz::derivableConst(Q, C));
        continue;
      }
      ++ValueQuals;
      ASSERT_TRUE(fuzz::derivableConst(Q, C)) << Q.Name;
      EXPECT_TRUE(Holds(C, Q.ConstOp, Q.Bound))
          << Q.Name << ": " << C << " !" << Q.ConstOp << " " << Q.Bound;
    }
  }
  EXPECT_GT(ValueQuals, 30u);
}

//===----------------------------------------------------------------------===//
// Mutator
//===----------------------------------------------------------------------===//

TEST(FuzzMutator, SoupAndMutationsAreDeterministic) {
  fuzz::Rng A(5), B(5);
  EXPECT_EQ(fuzz::tokenSoup(A, fuzz::Vocab::CMinus, 30),
            fuzz::tokenSoup(B, fuzz::Vocab::CMinus, 30));
  EXPECT_EQ(fuzz::tokenSoup(A, fuzz::Vocab::QualDsl, 30),
            fuzz::tokenSoup(B, fuzz::Vocab::QualDsl, 30));
  std::string In = "int main() { return 0; }\n";
  EXPECT_EQ(fuzz::mutateBytes(In, A), fuzz::mutateBytes(In, B));
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

TEST(FuzzShrinker, MinimizesToTheFailingFragment) {
  std::string Input;
  for (int I = 0; I < 50; ++I)
    Input += "filler line " + std::to_string(I) + "\n";
  Input += "the NEEDLE line\n";
  for (int I = 50; I < 100; ++I)
    Input += "more filler " + std::to_string(I) + "\n";

  unsigned Evals = 0;
  auto Fails = [&Evals](const std::string &S) {
    ++Evals;
    return S.find("NEEDLE") != std::string::npos;
  };
  std::string Min = fuzz::shrink(Input, Fails);
  EXPECT_NE(Min.find("NEEDLE"), std::string::npos);
  // Line phase alone gets it to one line; the char phase trims further.
  EXPECT_LE(Min.size(), 10u) << "got: '" << Min << "'";
  EXPECT_LE(Evals, 2000u);
}

TEST(FuzzShrinker, NonFailingInputIsReturnedUnchanged) {
  auto Never = [](const std::string &) { return false; };
  EXPECT_EQ(fuzz::shrink("hello\nworld\n", Never), "hello\nworld\n");
}

//===----------------------------------------------------------------------===//
// Prover sessions
//===----------------------------------------------------------------------===//

TEST(FuzzProverSession, DeterministicPerSeedAndEngine) {
  for (unsigned Seed = 0; Seed < 20; ++Seed) {
    prover::ProofResult A =
        fuzz::runProverSession(Seed, prover::EngineKind::Incremental);
    prover::ProofResult B =
        fuzz::runProverSession(Seed, prover::EngineKind::Incremental);
    EXPECT_EQ(A, B) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Whole campaigns
//===----------------------------------------------------------------------===//

TEST(FuzzCampaign, SmallCampaignHoldsAllOracles) {
  fuzz::CampaignOptions Opts;
  Opts.Seed = 3;
  Opts.Runs = 25;
  Opts.Jobs = 2;
  stats::Registry Stats;
  fuzz::CampaignResult R = fuzz::runCampaign(Opts, Stats, nullptr);
  EXPECT_TRUE(R.ok()) << (R.Failures.empty()
                              ? ""
                              : R.Failures.front().Detail + "\n" +
                                    R.Failures.front().Input);
  EXPECT_EQ(R.RunsExecuted, 25u);
  stats::Registry::Snapshot Snap = Stats.snapshot();
  EXPECT_EQ(Snap.Counters.at("fuzz.runs"), 25u);
}

TEST(FuzzCampaign, SameSeedReplaysByteIdentically) {
  auto Run = [](std::string &LogOut) {
    fuzz::CampaignOptions Opts;
    Opts.Seed = 11;
    Opts.Runs = 30;
    stats::Registry Stats;
    std::ostringstream Log;
    fuzz::CampaignResult R = fuzz::runCampaign(Opts, Stats, &Log);
    LogOut = Log.str();
    return Stats.snapshot().Counters;
  };
  std::string LogA, LogB;
  auto CountersA = Run(LogA);
  auto CountersB = Run(LogB);
  EXPECT_EQ(LogA, LogB);
  EXPECT_EQ(CountersA, CountersB);
}

TEST(FuzzCampaign, DifferentSeedsDiverge) {
  auto Counters = [](uint64_t Seed) {
    fuzz::CampaignOptions Opts;
    Opts.Seed = Seed;
    Opts.Runs = 40;
    stats::Registry Stats;
    fuzz::runCampaign(Opts, Stats, nullptr);
    return Stats.snapshot().Counters;
  };
  // Scenario mixes differ across seeds (40 runs is plenty to separate).
  EXPECT_NE(Counters(21), Counters(22));
}

} // namespace
