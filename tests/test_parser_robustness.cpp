//===- test_parser_robustness.cpp - Error recovery on malformed input -----===//
//
// Both front ends (the C-minus parser and the qualifier-DSL parser) are
// fuzzed continuously by stq-fuzz; these tests pin the specific hardening
// contracts directly: recursion depth is capped (no native-stack overflow
// on adversarial nesting), diagnostic floods are capped, and truncated or
// byte-garbled input is diagnosed, never crashed on.
//
//===----------------------------------------------------------------------===//

#include "cminus/Parser.h"
#include "qual/QualParser.h"

#include <gtest/gtest.h>

#include <string>

using namespace stq;

namespace {

/// Parse diagnostics only (the recovery caps count per parser run).
unsigned countDiags(const DiagnosticEngine &Diags) {
  return static_cast<unsigned>(Diags.diagnostics().size());
}

//===----------------------------------------------------------------------===//
// C-minus parser: nesting depth
//===----------------------------------------------------------------------===//

TEST(ParserRobustness, DeepParensAreDiagnosedNotOverflowed) {
  std::string Src = "int main() {\n  int x = " + std::string(2000, '(') +
                    "1" + std::string(2000, ')') + ";\n  return x;\n}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserRobustness, DeepUnaryTowerIsDiagnosedNotOverflowed) {
  // Unary operators recurse into parseUnary directly, bypassing
  // parseExpr — the guard must cover that path too.
  std::string Src = "int main() {\n  int x = ";
  for (int I = 0; I < 2000; ++I)
    Src += "- ";
  Src += "1;\n  return x;\n}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserRobustness, DeepBlocksAreDiagnosedNotOverflowed) {
  std::string Src = "int main() {\n";
  for (int I = 0; I < 1500; ++I)
    Src += "{\n";
  Src += "int x = 1;\n";
  for (int I = 0; I < 1500; ++I)
    Src += "}\n";
  Src += "  return 0;\n}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(ParserRobustness, ModerateNestingStaysClean) {
  // The cap must not bite ordinary programs: 50 levels is deep by human
  // standards and far below the limit.
  std::string Src = "int main() {\n  int x = " + std::string(50, '(') + "1" +
                    std::string(50, ')') + ";\n  return x;\n}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_FALSE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// C-minus parser: floods, truncation, byte garbage
//===----------------------------------------------------------------------===//

TEST(ParserRobustness, DiagnosticFloodIsCapped) {
  // Thousands of malformed statements; without the cap this would emit
  // one diagnostic per token.
  std::string Src = "int main() {\n";
  for (int I = 0; I < 3000; ++I)
    Src += "  @ # $ ;\n";
  Src += "}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexer + parser each cap independently; the point is the flood stays
  // bounded instead of scaling with input size.
  EXPECT_LE(countDiags(Diags), 200u);
}

TEST(ParserRobustness, TruncatedProgramsNeverCrash) {
  const std::string Full = "struct S {\n"
                           "  int pos count;\n"
                           "  int* next;\n"
                           "};\n"
                           "int pos get(struct S* nonnull p) {\n"
                           "  return p->count;\n"
                           "}\n"
                           "int main() {\n"
                           "  struct S s;\n"
                           "  s.count = 3;\n"
                           "  return get(&s);\n"
                           "}\n";
  for (size_t Len = 0; Len <= Full.size(); Len += 7) {
    DiagnosticEngine Diags;
    auto Prog =
        cminus::parseProgram(Full.substr(0, Len), {"pos", "nonnull"}, Diags);
    ASSERT_NE(Prog, nullptr) << "prefix length " << Len;
  }
}

TEST(ParserRobustness, StrayBytesAreDiagnosedNotCrashedOn) {
  std::string Src = "int main() {\n  int x = 1;\n";
  Src += '\0';
  Src += "\xff\x01\x80";
  Src += "\n  return x;\n}\n";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram(Src, {}, Diags);
  ASSERT_NE(Prog, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Qualifier-DSL parser
//===----------------------------------------------------------------------===//

TEST(QualParserRobustness, DeepPredicateNestingIsDiagnosed) {
  std::string Src = "value qualifier deep(int Expr E)\n"
                    "  case E of\n"
                    "    decl int Const C:\n"
                    "      C, where " +
                    std::string(1200, '(') + "C > 0" +
                    std::string(1200, ')') + "\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_FALSE(qual::parseQualifiers(Src, Set, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(QualParserRobustness, DeepInvariantNestingIsDiagnosed) {
  std::string Src = "value qualifier deepinv(int Expr E)\n"
                    "  case E of\n"
                    "    decl int Const C:\n"
                    "      C, where C > 0\n"
                    "  invariant " +
                    std::string(1200, '(') + "value(E) > 0" +
                    std::string(1200, ')') + "\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_FALSE(qual::parseQualifiers(Src, Set, Diags));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(QualParserRobustness, ModeratePredicateNestingStaysClean) {
  std::string Src = "value qualifier ok(int Expr E)\n"
                    "  case E of\n"
                    "    decl int Const C:\n"
                    "      C, where " +
                    std::string(50, '(') + "C > 0" + std::string(50, ')') +
                    "\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(qual::parseQualifiers(Src, Set, Diags)) << "50 levels is fine";
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(QualParserRobustness, DiagnosticFloodIsCapped) {
  std::string Src;
  for (int I = 0; I < 2000; ++I)
    Src += "case where | : decl\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_FALSE(qual::parseQualifiers(Src, Set, Diags));
  EXPECT_LE(countDiags(Diags), 200u);
}

TEST(QualParserRobustness, TruncatedDefinitionsNeverCrash) {
  const std::string Full = "value qualifier q(int Expr E)\n"
                           "  case E of\n"
                           "    decl int Const C:\n"
                           "      C, where C > 0\n"
                           "  restrict\n"
                           "    decl int Expr E1, E2:\n"
                           "      E1 / E2, where q(E2)\n"
                           "  invariant value(E) > 0\n"
                           "ref qualifier r(T Ref R)\n"
                           "  ondecl\n"
                           "  disallow &X\n";
  for (size_t Len = 0; Len <= Full.size(); Len += 5) {
    qual::QualifierSet Set;
    DiagnosticEngine Diags;
    // Any verdict is fine; the contract is no crash, and a parse that
    // claims success must produce a set the well-formedness pass can read.
    if (qual::parseQualifiers(Full.substr(0, Len), Set, Diags))
      qual::checkWellFormed(Set, Diags);
  }
  SUCCEED();
}

} // namespace
