//===- test_lambda.cpp - Tests for the section 5 formal calculus ----------===//
//
// Includes the property-based test of Theorem 5.1: randomly generated
// well-typed programs preserve semantic conformance under the locally
// sound rule system, and the locally unsound variant (the bogus
// subtraction rule) yields counterexample programs.
//
//===----------------------------------------------------------------------===//

#include "lambda/Lambda.h"

#include <gtest/gtest.h>

using namespace stq::lambda;

namespace {

LTypePtr intQ(std::initializer_list<std::string> Quals) {
  return LType::withQuals(LType::intTy(), std::set<std::string>(Quals));
}

/// Typechecks, evaluates, and reports whether preservation held.
struct Outcome {
  bool WellTyped = false;
  bool Evaluated = false;
  bool Preserved = false;
  LTypePtr Ty;
  LValuePtr Value;
};

Outcome runTerm(const TermPtr &T, const QualSystem &Sys) {
  Outcome O;
  O.Ty = typecheck(T, Sys);
  if (!O.Ty)
    return O;
  O.WellTyped = true;
  Store S;
  EvalResult R = evaluate(T, S);
  if (!R.Ok)
    return O;
  O.Evaluated = true;
  O.Value = R.Value;
  O.Preserved = preservationHolds(R.Value, O.Ty, S, Sys);
  return O;
}

//===----------------------------------------------------------------------===//
// Subtyping (figure 9)
//===----------------------------------------------------------------------===//

TEST(LambdaSubtype, ValQualDropsAtTopLevel) {
  EXPECT_TRUE(LType::isSubtype(intQ({"pos"}), LType::intTy()));
  EXPECT_FALSE(LType::isSubtype(LType::intTy(), intQ({"pos"})));
  EXPECT_TRUE(LType::isSubtype(intQ({"pos", "nonzero"}), intQ({"nonzero"})));
}

TEST(LambdaSubtype, QualOrderIrrelevant) {
  EXPECT_TRUE(LType::equals(intQ({"pos", "nonzero"}),
                            intQ({"nonzero", "pos"})));
}

TEST(LambdaSubtype, RefTypesInvariant) {
  LTypePtr RefPos = LType::ref(intQ({"pos"}));
  LTypePtr RefInt = LType::ref(LType::intTy());
  EXPECT_FALSE(LType::isSubtype(RefPos, RefInt));
  EXPECT_FALSE(LType::isSubtype(RefInt, RefPos));
  EXPECT_TRUE(LType::isSubtype(RefPos, RefPos));
}

TEST(LambdaSubtype, FunctionContravariance) {
  // (int -> int pos) <= (int pos -> int).
  LTypePtr Sub = LType::fun(LType::intTy(), intQ({"pos"}));
  LTypePtr Super = LType::fun(intQ({"pos"}), LType::intTy());
  EXPECT_TRUE(LType::isSubtype(Sub, Super));
  EXPECT_FALSE(LType::isSubtype(Super, Sub));
}

//===----------------------------------------------------------------------===//
// Typechecking with qualifier rules (figure 10)
//===----------------------------------------------------------------------===//

TEST(LambdaTypecheck, ConstantsGetDerivedQuals) {
  QualSystem Sys = QualSystem::posNegNonzero();
  TermPtr T = tConst(5);
  LTypePtr Ty = typecheck(T, Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_TRUE(Ty->Quals.count("pos"));
  EXPECT_TRUE(Ty->Quals.count("nonzero")); // Via the subtype encoding.
  EXPECT_FALSE(Ty->Quals.count("neg"));
}

TEST(LambdaTypecheck, ProductOfPosIsPos) {
  QualSystem Sys = QualSystem::posNegNonzero();
  LTypePtr Ty = typecheck(tBin(LBinOp::Mul, tConst(2), tConst(3)), Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_TRUE(Ty->Quals.count("pos"));
}

TEST(LambdaTypecheck, DifferenceIsNotPos) {
  QualSystem Sys = QualSystem::posNegNonzero();
  LTypePtr Ty = typecheck(tBin(LBinOp::Sub, tConst(5), tConst(3)), Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_FALSE(Ty->Quals.count("pos"));
}

TEST(LambdaTypecheck, NegationFlipsSign) {
  QualSystem Sys = QualSystem::posNegNonzero();
  LTypePtr Ty = typecheck(tUn(LUnOp::Neg, tConst(4)), Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_TRUE(Ty->Quals.count("neg"));
  EXPECT_FALSE(Ty->Quals.count("pos"));
}

TEST(LambdaTypecheck, LetPropagatesQualifiedTypes) {
  QualSystem Sys = QualSystem::posNegNonzero();
  // let x = 3 in x * x : int pos.
  TermPtr T = tLet("x", tConst(3), tBin(LBinOp::Mul, tVar("x"), tVar("x")));
  LTypePtr Ty = typecheck(T, Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_TRUE(Ty->Quals.count("pos"));
}

TEST(LambdaTypecheck, ApplicationUsesSubsumption) {
  QualSystem Sys = QualSystem::posNegNonzero();
  // (\x:int. x) applied to 3: int pos <= int, so this typechecks.
  TermPtr Fn = tLambda("x", LType::intTy(), tVar("x"));
  LTypePtr Ty = typecheck(tApp(Fn, tConst(3)), Sys);
  ASSERT_NE(Ty, nullptr);
  EXPECT_EQ(Ty->K, LType::Kind::Int);
}

TEST(LambdaTypecheck, ApplicationRequiringPosRejectsPlain) {
  QualSystem Sys = QualSystem::posNegNonzero();
  TermPtr Fn = tLambda("x", intQ({"pos"}), tVar("x"));
  // 0 is not pos.
  EXPECT_EQ(typecheck(tApp(Fn, tConst(0)), Sys), nullptr);
  // 7 is.
  EXPECT_NE(typecheck(tApp(Fn, tConst(7)), Sys), nullptr);
}

TEST(LambdaTypecheck, AssignmentRequiresPointeeSubtype) {
  QualSystem Sys = QualSystem::posNegNonzero();
  // let r = ref 5 in r := 0 must fail: 0 lacks pos/nonzero.
  TermPtr Bad = tLet("r", tRef(tConst(5)), tAssign(tVar("r"), tConst(0)));
  EXPECT_EQ(typecheck(Bad, Sys), nullptr);
  // r := 7 is fine.
  TermPtr Good = tLet("r", tRef(tConst(5)), tAssign(tVar("r"), tConst(7)));
  EXPECT_NE(typecheck(Good, Sys), nullptr);
}

TEST(LambdaTypecheck, IllTypedTermsRejected) {
  QualSystem Sys = QualSystem::posNegNonzero();
  EXPECT_EQ(typecheck(tVar("nope"), Sys), nullptr);
  EXPECT_EQ(typecheck(tDeref(tConst(1)), Sys), nullptr);
  EXPECT_EQ(typecheck(tApp(tConst(1), tConst(2)), Sys), nullptr);
  EXPECT_EQ(typecheck(tBin(LBinOp::Add, tUnit(), tConst(1)), Sys), nullptr);
}

//===----------------------------------------------------------------------===//
// Evaluation
//===----------------------------------------------------------------------===//

TEST(LambdaEval, Arithmetic) {
  QualSystem Sys = QualSystem::posNegNonzero();
  TermPtr T = tBin(LBinOp::Add, tConst(2), tBin(LBinOp::Mul, tConst(3),
                                                tConst(4)));
  ASSERT_NE(typecheck(T, Sys), nullptr);
  Store S;
  EvalResult R = evaluate(T, S);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value->Int, 14);
}

TEST(LambdaEval, RefAssignDeref) {
  QualSystem Sys = QualSystem::posNegNonzero();
  TermPtr T = tLet("r", tRef(tConst(5)),
                   tLet("u", tAssign(tVar("r"), tConst(9)),
                        tDeref(tVar("r"))));
  ASSERT_NE(typecheck(T, Sys), nullptr);
  Store S;
  EvalResult R = evaluate(T, S);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value->Int, 9);
  EXPECT_EQ(S.Cells.size(), 1u);
}

TEST(LambdaEval, ClosuresCaptureEnvironment) {
  QualSystem Sys = QualSystem::posNegNonzero();
  // let y = 10 in ((\x:int. x + y) 5).
  TermPtr T =
      tLet("y", tConst(10),
           tApp(tLambda("x", LType::intTy(),
                        tBin(LBinOp::Add, tVar("x"), tVar("y"))),
                tConst(5)));
  ASSERT_NE(typecheck(T, Sys), nullptr);
  Store S;
  EvalResult R = evaluate(T, S);
  ASSERT_TRUE(R.Ok);
  EXPECT_EQ(R.Value->Int, 15);
}

//===----------------------------------------------------------------------===//
// Semantic conformance (figure 11)
//===----------------------------------------------------------------------===//

TEST(LambdaConformance, IntAgainstQualifiedTypes) {
  QualSystem Sys = QualSystem::posNegNonzero();
  Store S;
  auto V = std::make_shared<LValue>();
  V->K = LValue::Kind::Int;
  V->Int = 7;
  EXPECT_TRUE(conforms(V, intQ({"pos"}), S, Sys));
  EXPECT_TRUE(conforms(V, intQ({"pos", "nonzero"}), S, Sys));
  EXPECT_FALSE(conforms(V, intQ({"neg"}), S, Sys));
  V->Int = -2;
  EXPECT_FALSE(conforms(V, intQ({"pos"}), S, Sys));
  EXPECT_TRUE(conforms(V, intQ({"neg", "nonzero"}), S, Sys));
}

TEST(LambdaConformance, RefFollowsStore) {
  QualSystem Sys = QualSystem::posNegNonzero();
  Store S;
  auto Cell = std::make_shared<LValue>();
  Cell->K = LValue::Kind::Int;
  Cell->Int = 3;
  S.Cells.push_back(Cell);
  S.CellTypes.push_back(intQ({"pos"}));
  auto Loc = std::make_shared<LValue>();
  Loc->K = LValue::Kind::Loc;
  Loc->Loc = 0;
  EXPECT_TRUE(conforms(Loc, LType::ref(intQ({"pos"})), S, Sys));
  // Mutate the cell to a negative value: conformance at ref (int pos) is
  // lost.
  Cell->Int = -1;
  EXPECT_FALSE(conforms(Loc, LType::ref(intQ({"pos"})), S, Sys));
}

//===----------------------------------------------------------------------===//
// Theorem 5.1 (type preservation) as a property
//===----------------------------------------------------------------------===//

TEST(LambdaPreservation, HandwrittenProgramsPreserve) {
  QualSystem Sys = QualSystem::posNegNonzero();
  std::vector<TermPtr> Programs = {
      tBin(LBinOp::Mul, tConst(3), tConst(4)),
      tLet("x", tConst(5), tBin(LBinOp::Mul, tVar("x"), tVar("x"))),
      tLet("r", tRef(tConst(2)),
           tLet("u", tAssign(tVar("r"), tConst(8)), tDeref(tVar("r")))),
      tApp(tLambda("x", intQ({"pos"}),
                   tBin(LBinOp::Mul, tVar("x"), tVar("x"))),
           tConst(6)),
      tUn(LUnOp::Neg, tBin(LBinOp::Mul, tConst(2), tConst(-3))),
  };
  for (const TermPtr &T : Programs) {
    Outcome O = runTerm(T, Sys);
    ASSERT_TRUE(O.WellTyped) << T->str();
    ASSERT_TRUE(O.Evaluated) << T->str();
    EXPECT_TRUE(O.Preserved) << T->str() << " : " << O.Ty->str()
                             << " evaluated to " << O.Value->str();
  }
}

TEST(LambdaPreservation, BogusRuleHasConcreteCounterexample) {
  QualSystem Bogus = QualSystem::withBogusSubtractionRule();
  // 3 - 5 synthesizes int pos under the bogus rule but evaluates to -2.
  Outcome O = runTerm(tBin(LBinOp::Sub, tConst(3), tConst(5)), Bogus);
  ASSERT_TRUE(O.WellTyped);
  EXPECT_TRUE(O.Ty->Quals.count("pos"));
  ASSERT_TRUE(O.Evaluated);
  EXPECT_FALSE(O.Preserved);
}

TEST(LambdaPreservation, BogusRuleBreaksStoreConformance) {
  QualSystem Bogus = QualSystem::withBogusSubtractionRule();
  // The store cell typed int pos ends up holding a non-positive value.
  TermPtr T = tLet("r", tRef(tConst(5)),
                   tLet("u", tAssign(tVar("r"),
                                     tBin(LBinOp::Sub, tConst(3), tConst(9))),
                        tDeref(tVar("r"))));
  Outcome O = runTerm(T, Bogus);
  ASSERT_TRUE(O.WellTyped);
  ASSERT_TRUE(O.Evaluated);
  EXPECT_FALSE(O.Preserved);
}

/// Property sweep: every randomly generated well-typed program preserves
/// conformance under the sound rule system.
class LambdaPreservationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LambdaPreservationSweep, RandomProgramsPreserve) {
  QualSystem Sys = QualSystem::posNegNonzero();
  unsigned WellTyped = 0;
  for (uint64_t I = 0; I < 200; ++I) {
    GenOptions Options;
    Options.Seed = GetParam() * 100000 + I;
    Options.MaxDepth = 3 + static_cast<unsigned>(I % 3);
    TermPtr T = generateTerm(Options);
    Outcome O = runTerm(T, Sys);
    if (!O.WellTyped || !O.Evaluated)
      continue;
    ++WellTyped;
    EXPECT_TRUE(O.Preserved)
        << "counterexample: " << T->str() << " : " << O.Ty->str()
        << " evaluated to " << O.Value->str();
  }
  // The generator must produce a healthy fraction of well-typed programs
  // for the property to have teeth.
  EXPECT_GT(WellTyped, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LambdaPreservationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LambdaPreservation, SweepFindsBogusRuleCounterexamples) {
  QualSystem Bogus = QualSystem::withBogusSubtractionRule();
  unsigned Counterexamples = 0;
  for (uint64_t Seed = 0; Seed < 2000 && Counterexamples == 0; ++Seed) {
    GenOptions Options;
    Options.Seed = Seed;
    Options.MaxDepth = 4;
    TermPtr T = generateTerm(Options);
    Outcome O = runTerm(T, Bogus);
    if (O.WellTyped && O.Evaluated && !O.Preserved)
      ++Counterexamples;
  }
  EXPECT_GT(Counterexamples, 0u)
      << "the unsound rule system should break preservation on random "
         "programs";
}

} // namespace
