//===- test_qual.cpp - Tests for the qualifier-definition language --------===//

#include "qual/Builtins.h"
#include "qual/QualAST.h"
#include "qual/QualParser.h"

#include "cminus/Type.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::qual;
using cminus::BinaryOp;
using cminus::Type;
using cminus::UnaryOp;

namespace {

QualifierSet parseOk(const std::string &Source) {
  QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(parseQualifiers(Source, Set, Diags));
  EXPECT_FALSE(Diags.hasErrors()) << Source;
  return Set;
}

bool parseFails(const std::string &Source) {
  QualifierSet Set;
  DiagnosticEngine Diags;
  return !parseQualifiers(Source, Set, Diags);
}

bool wellFormed(const std::string &Source) {
  QualifierSet Set;
  DiagnosticEngine Diags;
  if (!parseQualifiers(Source, Set, Diags))
    return false;
  return checkWellFormed(Set, Diags);
}

//===----------------------------------------------------------------------===//
// Type patterns
//===----------------------------------------------------------------------===//

TEST(TypePattern, AnyMatchesEverything) {
  TypePattern P = TypePattern::any();
  EXPECT_TRUE(P.matches(Type::getInt()));
  EXPECT_TRUE(P.matches(Type::getPointer(Type::getChar())));
  EXPECT_TRUE(P.matches(Type::getStruct("s")));
}

TEST(TypePattern, IntMatchesIntIgnoringQuals) {
  TypePattern P = TypePattern::intTy();
  EXPECT_TRUE(P.matches(Type::getInt()));
  EXPECT_TRUE(P.matches(Type::withQual(Type::getInt(), "pos")));
  EXPECT_FALSE(P.matches(Type::getChar()));
  EXPECT_FALSE(P.matches(Type::getPointer(Type::getInt())));
}

TEST(TypePattern, PointerPatternsMatchStructurally) {
  // T* matches any pointer.
  TypePattern AnyPtr = TypePattern::pointerTo(TypePattern::any());
  EXPECT_TRUE(AnyPtr.matches(Type::getPointer(Type::getInt())));
  EXPECT_TRUE(AnyPtr.matches(
      Type::getPointer(Type::getPointer(Type::getChar()))));
  EXPECT_FALSE(AnyPtr.matches(Type::getInt()));
  // T** matches only pointer-to-pointer.
  TypePattern AnyPtrPtr = TypePattern::pointerTo(AnyPtr);
  EXPECT_FALSE(AnyPtrPtr.matches(Type::getPointer(Type::getInt())));
  EXPECT_TRUE(AnyPtrPtr.matches(
      Type::getPointer(Type::getPointer(Type::getInt()))));
}

TEST(TypePattern, QualifiersIgnoredAtEveryLevel) {
  TypePattern IntPtr = TypePattern::pointerTo(TypePattern::intTy());
  cminus::TypePtr T = Type::withQual(
      Type::getPointer(Type::withQual(Type::getInt(), "pos")), "unique");
  EXPECT_TRUE(IntPtr.matches(T));
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

TEST(QualParser, ParsesFigure1Pos) {
  QualifierSet Set = parseOk(builtinQualifierSource("pos"));
  const QualifierDef *Pos = Set.find("pos");
  ASSERT_NE(Pos, nullptr);
  EXPECT_TRUE(Pos->isValue());
  EXPECT_EQ(Pos->SubjectVar, "E");
  EXPECT_EQ(Pos->SubjectCls, Classifier::Expr);
  ASSERT_EQ(Pos->Cases.size(), 3u);

  // Clause 1: C, where C > 0.
  const Clause &C1 = Pos->Cases[0];
  ASSERT_EQ(C1.Decls.size(), 1u);
  EXPECT_EQ(C1.Decls[0].Cls, Classifier::Const);
  EXPECT_EQ(C1.Pattern.K, ExprPattern::Kind::Var);
  EXPECT_EQ(C1.Where.K, Pred::Kind::Compare);
  EXPECT_EQ(C1.Where.CmpOp, BinaryOp::Gt);

  // Clause 2: E1 * E2 where pos(E1) && pos(E2).
  const Clause &C2 = Pos->Cases[1];
  EXPECT_EQ(C2.Pattern.K, ExprPattern::Kind::Binary);
  EXPECT_EQ(C2.Pattern.Bop, BinaryOp::Mul);
  EXPECT_EQ(C2.Where.K, Pred::Kind::And);

  // Clause 3: -E1 where neg(E1).
  const Clause &C3 = Pos->Cases[2];
  EXPECT_EQ(C3.Pattern.K, ExprPattern::Kind::Unary);
  EXPECT_EQ(C3.Pattern.Uop, UnaryOp::Neg);
  EXPECT_EQ(C3.Where.K, Pred::Kind::QualCheck);
  EXPECT_EQ(C3.Where.Qual, "neg");

  // Invariant: value(E) > 0.
  ASSERT_TRUE(Pos->Invariant.has_value());
  EXPECT_EQ(Pos->Invariant->K, InvPred::Kind::Compare);
  EXPECT_EQ(Pos->Invariant->A.K, InvTerm::Kind::ValueOf);
}

TEST(QualParser, ParsesFigure3NonzeroWithRestrict) {
  QualifierSet Set = parseOk(builtinQualifierSource("nonzero"));
  const QualifierDef *NZ = Set.find("nonzero");
  ASSERT_NE(NZ, nullptr);
  EXPECT_EQ(NZ->Cases.size(), 3u);
  // Two restrict clauses: both `/` and `%` trap on a zero divisor, so the
  // rule must guard both operators.
  ASSERT_EQ(NZ->Restricts.size(), 2u);
  EXPECT_EQ(NZ->Restricts[0].Pattern.K, ExprPattern::Kind::Binary);
  EXPECT_EQ(NZ->Restricts[0].Pattern.Bop, BinaryOp::Div);
  EXPECT_EQ(NZ->Restricts[0].Where.Qual, "nonzero");
  EXPECT_EQ(NZ->Restricts[1].Pattern.K, ExprPattern::Kind::Binary);
  EXPECT_EQ(NZ->Restricts[1].Pattern.Bop, BinaryOp::Rem);
  EXPECT_EQ(NZ->Restricts[1].Where.Qual, "nonzero");
}

TEST(QualParser, ParsesFigure12Nonnull) {
  QualifierSet Set = parseOk(builtinQualifierSource("nonnull"));
  const QualifierDef *NN = Set.find("nonnull");
  ASSERT_NE(NN, nullptr);
  ASSERT_EQ(NN->Cases.size(), 1u);
  EXPECT_EQ(NN->Cases[0].Pattern.K, ExprPattern::Kind::AddrOf);
  ASSERT_EQ(NN->Restricts.size(), 1u);
  EXPECT_EQ(NN->Restricts[0].Pattern.K, ExprPattern::Kind::Deref);
  // Invariant compares against NULL.
  ASSERT_TRUE(NN->Invariant.has_value());
  EXPECT_EQ(NN->Invariant->B.K, InvTerm::Kind::Null);
}

TEST(QualParser, ParsesFigure4FlowQualifiers) {
  QualifierSet Set = parseOk(builtinQualifierSource("tainted") +
                             builtinQualifierSource("untainted"));
  const QualifierDef *T = Set.find("tainted");
  ASSERT_NE(T, nullptr);
  ASSERT_EQ(T->Cases.size(), 1u);
  // Pattern is the subject variable itself: matches any expression.
  EXPECT_EQ(T->Cases[0].Pattern.K, ExprPattern::Kind::Var);
  EXPECT_EQ(T->Cases[0].Pattern.X, "E");
  EXPECT_FALSE(T->Invariant.has_value());

  const QualifierDef *U = Set.find("untainted");
  ASSERT_NE(U, nullptr);
  ASSERT_EQ(U->Cases.size(), 1u);
  EXPECT_EQ(U->Cases[0].Decls[0].Cls, Classifier::Const);
}

TEST(QualParser, ParsesFigure5Unique) {
  QualifierSet Set = parseOk(builtinQualifierSource("unique"));
  const QualifierDef *U = Set.find("unique");
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(U->IsRef);
  EXPECT_EQ(U->SubjectCls, Classifier::LValue);
  ASSERT_EQ(U->Assigns.size(), 2u);
  EXPECT_EQ(U->Assigns[0].Pattern.K, ExprPattern::Kind::Null);
  EXPECT_EQ(U->Assigns[1].Pattern.K, ExprPattern::Kind::New);
  EXPECT_TRUE(U->DisallowRead);
  EXPECT_FALSE(U->DisallowAddrOf);

  // Invariant: disjunction whose right side contains a forall.
  ASSERT_TRUE(U->Invariant.has_value());
  EXPECT_EQ(U->Invariant->K, InvPred::Kind::Or);
  const InvPred &RHS = *U->Invariant->RHS;
  EXPECT_EQ(RHS.K, InvPred::Kind::And);
  EXPECT_EQ(RHS.LHS->K, InvPred::Kind::IsHeapLoc);
  EXPECT_EQ(RHS.RHS->K, InvPred::Kind::Forall);
  EXPECT_EQ(RHS.RHS->Body->K, InvPred::Kind::Implies);
}

TEST(QualParser, ParsesFigure7Unaliased) {
  QualifierSet Set = parseOk(builtinQualifierSource("unaliased"));
  const QualifierDef *U = Set.find("unaliased");
  ASSERT_NE(U, nullptr);
  EXPECT_TRUE(U->IsRef);
  EXPECT_EQ(U->SubjectCls, Classifier::Var);
  EXPECT_TRUE(U->OnDecl);
  EXPECT_TRUE(U->DisallowAddrOf);
  EXPECT_FALSE(U->DisallowRead);
  ASSERT_TRUE(U->Invariant.has_value());
  EXPECT_EQ(U->Invariant->K, InvPred::Kind::Forall);
}

TEST(QualParser, AllBuiltinsLoadAndAreWellFormed) {
  QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(loadAllBuiltinQualifiers(Set, Diags));
  EXPECT_EQ(Set.all().size(), 9u);
  // Reference qualifiers reported for r-type stripping.
  auto Refs = Set.refNames();
  EXPECT_EQ(Refs.size(), 2u);
}

TEST(QualParser, SingleEqualsAcceptedInInvariants) {
  // The paper writes `*P = value(L)` inside unique's invariant.
  parseOk("ref qualifier q(T* LValue L)\n"
          "  invariant forall T** P: *P = value(L) => P = location(L)\n");
}

TEST(QualParser, MissingQualifierKeywordFails) {
  EXPECT_TRUE(parseFails("value pos(int Expr E)"));
}

TEST(QualParser, GarbageFails) { EXPECT_TRUE(parseFails("banana")); }

TEST(QualParser, MultipleDefsInOneSource) {
  QualifierSet Set = parseOk(builtinQualifierSource("pos") +
                             builtinQualifierSource("neg"));
  EXPECT_NE(Set.find("pos"), nullptr);
  EXPECT_NE(Set.find("neg"), nullptr);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

TEST(QualWF, ValueQualifierRequiresExprSubject) {
  EXPECT_FALSE(wellFormed("value qualifier q(int LValue L)\n"
                          "  invariant value(L) > 0\n"));
}

TEST(QualWF, RefQualifierRequiresLValueOrVarSubject) {
  EXPECT_FALSE(wellFormed("ref qualifier q(int Expr E)\n"));
  EXPECT_TRUE(wellFormed("ref qualifier q(T* LValue L)\n  disallow L\n"));
  EXPECT_TRUE(wellFormed("ref qualifier q(T Var X)\n  ondecl\n"));
}

TEST(QualWF, RefQualifierMayNotHaveCaseBlock) {
  EXPECT_FALSE(wellFormed("ref qualifier q(T* LValue L)\n"
                          "  case L of L\n"));
}

TEST(QualWF, ValueQualifierMayNotHaveAssignBlock) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  assign E NULL\n"));
}

TEST(QualWF, UndeclaredPatternVariableRejected) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of\n"
                          "    decl int Expr E1:\n"
                          "      E1 * E2\n"));
}

TEST(QualWF, UnknownQualifierInCheckRejected) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of\n"
                          "    decl int Expr E1:\n"
                          "      -E1, where mystery(E1)\n"));
}

TEST(QualWF, ComparisonRequiresConstClassifier) {
  // E1 has classifier Expr, so `E1 > 0` is not allowed in a where clause.
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of\n"
                          "    decl int Expr E1:\n"
                          "      -E1, where E1 > 0\n"));
}

TEST(QualWF, DuplicateQualifierNamesRejected) {
  QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(parseQualifiers("value qualifier q(int Expr E)\n"
                              "value qualifier q(int Expr E)\n",
                              Set, Diags));
  EXPECT_FALSE(checkWellFormed(Set, Diags));
}

TEST(QualWF, NewPatternOnlyInAssignBlocks) {
  // Calls are not expressions, so `new` cannot appear in a case pattern.
  EXPECT_FALSE(wellFormed("value qualifier q(T* Expr E)\n"
                          "  case E of new\n"));
}

TEST(QualWF, ForallRequiresPointerRange) {
  EXPECT_FALSE(wellFormed("ref qualifier q(T Var X)\n"
                          "  invariant forall T P: P != location(X)\n"));
}

TEST(QualWF, ForallOnlyForRefQualifiers) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of E\n"
                          "  invariant forall T** P: *P != value(E)\n"));
}

TEST(QualWF, LocationOnlyForRefQualifiers) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of E\n"
                          "  invariant location(E) != NULL\n"));
}

TEST(QualWF, SubjectShadowingRejected) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of\n"
                          "    decl int Expr E:\n"
                          "      -E\n"));
}

TEST(QualWF, DerefPatternRequiresPointerVariable) {
  EXPECT_FALSE(wellFormed("value qualifier q(int Expr E)\n"
                          "  case E of\n"
                          "    decl int Expr E1:\n"
                          "      *E1\n"));
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(QualAST, PatternStr) {
  QualifierSet Set = parseOk(builtinQualifierSource("pos"));
  const QualifierDef *Pos = Set.find("pos");
  EXPECT_EQ(Pos->Cases[1].Pattern.str(), "E1 * E2");
  EXPECT_EQ(Pos->Cases[2].Pattern.str(), "-E1");
}

TEST(QualAST, InvariantStr) {
  QualifierSet Set = parseOk(builtinQualifierSource("pos"));
  EXPECT_EQ(Set.find("pos")->Invariant->str(), "value(E) > 0");
}

TEST(QualAST, PredStr) {
  QualifierSet Set = parseOk(builtinQualifierSource("pos"));
  EXPECT_EQ(Set.find("pos")->Cases[1].Where.str(),
            "(pos(E1) && pos(E2))");
}

} // namespace
