//===- test_vm.cpp - Bytecode VM vs interpreter byte-identity -------------===//
//
// The VM's contract is byte-for-byte agreement with src/interp on every
// observable: status, exit value, output, trap message bytes, fired
// checks, audits, format violations, and the fuel step count. These tests
// pin the contract per trap class, across the fuel boundary, and for the
// prover-driven check-elision pass (which must never change observable
// behavior, only the executed-check count).
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "checker/Checker.h"
#include "interp/Interp.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"

#include <gtest/gtest.h>
#include <sstream>

using namespace stq;
using interp::RunResult;
using interp::RunStatus;

namespace {

qual::QualifierSet loadQuals(const std::vector<std::string> &Names,
                             const std::string &ExtraDsl = "") {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(qual::loadBuiltinQualifiers(Names, Set, Diags));
  if (!ExtraDsl.empty()) {
    EXPECT_TRUE(qual::parseQualifiers(ExtraDsl, Set, Diags));
  }
  return Set;
}

/// Everything observable about a run, as comparable text. The executed-
/// check count is optional: it is part of the interp/vm contract but
/// excluded when comparing elision on vs off.
std::string dump(const RunResult &R, bool WithCheckCount = true) {
  std::ostringstream OS;
  OS << "status=" << static_cast<int>(R.Status);
  if (R.ExitValue)
    OS << " exit=" << *R.ExitValue;
  OS << "\noutput=[" << R.Output << "]\ntrap=[" << R.TrapMessage << "]\n";
  for (const interp::CheckFailure &F : R.CheckFailures)
    OS << "check " << F.Loc.str() << " '" << F.Qual << "' " << F.ValueStr
       << "\n";
  for (const interp::FormatViolation &V : R.FormatViolations)
    OS << "format " << V.Loc.str() << " [" << V.Format << "] " << V.Supplied
       << "/" << V.Consumed << "\n";
  for (const interp::CheckFailure &F : R.AuditFailures)
    OS << "audit " << F.Loc.str() << " '" << F.Qual << "' " << F.ValueStr
       << "\n";
  OS << "steps=" << R.Steps << " audits=" << R.AuditChecks;
  if (WithCheckCount)
    OS << " checks=" << R.ChecksExecuted;
  return OS.str();
}

/// Front end + checker + all three engine configurations (interpreter,
/// VM without elision, VM with elision), asserting the identity contract
/// between them. Returns the interpreter result for further assertions.
struct EngineRuns {
  RunResult Interp;
  RunResult Vm;
  RunResult VmElided;
  vm::ElisionStats Elision;
  unsigned QualErrors = 0;
};

EngineRuns runAllEngines(const std::string &Source,
                         const std::vector<std::string> &QualNames,
                         interp::InterpOptions Options = {},
                         const std::string &ExtraDsl = "") {
  EngineRuns Out;
  qual::QualifierSet Quals = loadQuals(QualNames, ExtraDsl);
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Check =
      checker::checkSource(Source, Quals, Diags, Prog);
  EXPECT_FALSE(Diags.hasErrors()) << [&] {
    std::string S;
    for (const auto &D : Diags.diagnostics())
      S += D.str() + "\n";
    return S;
  }();
  if (!Prog || Diags.hasErrors())
    return Out;
  Out.QualErrors = Check.QualErrors;

  Out.Interp = interp::runProgram(*Prog, Quals, Check.RuntimeChecks, Options);

  vm::VmOptions VO;
  VO.Interp = Options;
  VO.ElideChecks = false;
  Out.Vm = vm::runProgram(*Prog, Quals, Check.RuntimeChecks, VO);

  VO.ElideChecks = true;
  VO.ProgramCheckedClean = Check.QualErrors == 0;
  auto CP = vm::compileProgram(*Prog, Quals, Check.RuntimeChecks, VO);
  Out.Elision = CP->Elision;
  Out.VmElided = vm::execute(*CP, Options);

  // The identity contract.
  EXPECT_EQ(dump(Out.Interp), dump(Out.Vm)) << "source:\n" << Source;
  EXPECT_EQ(dump(Out.Vm, false), dump(Out.VmElided, false))
      << "elision changed observable behavior; source:\n" << Source;
  return Out;
}

//===----------------------------------------------------------------------===//
// Execution agreement across program shapes
//===----------------------------------------------------------------------===//

TEST(VmExec, ProgramShapesMatchInterpreter) {
  const char *Programs[] = {
      "int main() { return 42; }",
      "int main() { return (2 + 3) * 4 - 20 / 5; }",
      "int main() { int x = 5; int y; y = x * 2; return y; }",
      "int g = 7;\n"
      "int bump(int d) { g = g + d; return g; }\n"
      "int main() { bump(3); bump(5); return g; }",
      "int main() {\n"
      "  int s = 0;\n"
      "  int i;\n"
      "  for (i = 1; i <= 10; i = i + 1) { if (i % 2 == 0) s = s + i; }\n"
      "  return s;\n"
      "}",
      "int main() {\n"
      "  int s = 0; int i = 0;\n"
      "  while (1) { i = i + 1; if (i > 6) break;\n"
      "              if (i == 3) continue; s = s + i; }\n"
      "  return s;\n"
      "}",
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
      "int main() { return fib(12); }",
      "struct Pt { int x; int y; };\n"
      "int main() { struct Pt p; p.x = 3; p.y = 4;\n"
      "             return p.x * p.x + p.y * p.y; }",
      "struct Pt { int x; int y; };\n"
      "int main() { struct Pt* p = malloc(sizeof(struct Pt));\n"
      "             p->x = 5; p->y = 6; int r = p->x + p->y; free(p);\n"
      "             return r; }",
      "int main() { int* a = malloc(4 * sizeof(int)); int i;\n"
      "             for (i = 0; i < 4; i = i + 1) a[i] = i * i;\n"
      "             return a[3]; }",
      "int main() { int x = 9; int* p = &x; *p = *p + 1; return x; }",
      "int main() { char* s = \"hey\"; return s[0] + s[2]; }",
      "int main() { printf(\"n=%d s=%s\\n\", 12, \"ok\"); return 0; }",
      "int main() { int x = 0; if (x != 0 && 10 / x > 1) return 1;\n"
      "             return 2; }",
      "int a = 2;\nint b = a * 3;\nint main() { return b; }",
  };
  for (const char *Source : Programs) {
    EngineRuns R = runAllEngines(Source, {"pos", "neg", "nonneg", "nonzero",
                                          "nonnull"});
    EXPECT_TRUE(R.Interp.ok()) << Source << "\n" << R.Interp.TrapMessage;
  }
}

TEST(VmExec, PrintfFormatViolationBytesMatch) {
  EngineRuns R = runAllEngines(
      "int main() { int secret = 99;\n"
      "             printf(\"%d %d\", 1); return 0; }",
      {});
  EXPECT_EQ(R.Interp.Status, RunStatus::Ok);
  ASSERT_EQ(R.Interp.FormatViolations.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Trap taxonomy: identical status AND identical diagnostic bytes
//===----------------------------------------------------------------------===//

struct TrapCase {
  const char *Source;
  const char *Message;
};

TEST(VmTrap, TaxonomyMatchesInterpreterByteForByte) {
  const TrapCase Cases[] = {
      {"int main() { int* p = NULL; return *p; }",
       "1:36: null pointer dereference"},
      {"int main() { int* a = malloc(2 * sizeof(int)); return a[5]; }",
       "1:56: out-of-bounds read at offset 5"},
      {"int main() { int* p = malloc(sizeof(int)); *p = 1; free(p);\n"
       "             return *p; }",
       "2:21: read from freed memory"},
      {"int z = 0;\nint main() { return 10 / z; }",
       "2:24: division by zero"},
      {"int z = 0;\nint main() { return 10 % z; }",
       "2:24: division by zero"},
  };
  for (const TrapCase &T : Cases) {
    EngineRuns R = runAllEngines(T.Source, {});
    EXPECT_EQ(R.Interp.Status, RunStatus::Trap) << T.Source;
    EXPECT_EQ(R.Interp.TrapMessage, T.Message) << T.Source;
    // dump() equality in runAllEngines already pinned vm == interp; this
    // re-states the two fields the taxonomy is about.
    EXPECT_EQ(R.Vm.Status, R.Interp.Status);
    EXPECT_EQ(R.Vm.TrapMessage, R.Interp.TrapMessage);
  }
}

TEST(VmTrap, MissingEntryPointIsSetupError) {
  EngineRuns R = runAllEngines("int helper() { return 1; }", {});
  EXPECT_EQ(R.Interp.Status, RunStatus::SetupError);
  EXPECT_EQ(R.Vm.Status, RunStatus::SetupError);
  EXPECT_EQ(R.Vm.TrapMessage, R.Interp.TrapMessage);
}

//===----------------------------------------------------------------------===//
// Engine-independent fuel semantics
//===----------------------------------------------------------------------===//

TEST(VmFuel, ExhaustionAgreesAtEveryBudget) {
  // Loops, calls, branches, and a mid-loop trap candidate: every spend
  // point the interpreter charges must map onto the bytecode stream.
  const char *Source =
      "int work(int n) {\n"
      "  int s = 0; int i;\n"
      "  for (i = 0; i < n; i = i + 1) {\n"
      "    if (i % 3 == 0) s = s + i; else s = s - 1;\n"
      "  }\n"
      "  return s;\n"
      "}\n"
      "int main() {\n"
      "  int t = 0; int k = 0;\n"
      "  while (k < 5) { t = t + work(k); k = k + 1; }\n"
      "  return t;\n"
      "}";
  // Unbounded run to learn the true cost, engine-agreement included.
  EngineRuns Full = runAllEngines(Source, {});
  ASSERT_TRUE(Full.Interp.ok());
  uint64_t Total = Full.Interp.Steps;
  ASSERT_GT(Total, 50u);
  // Sweep the budget through every prefix: FuelExhausted must fire after
  // exactly the same step count on both engines, at every boundary.
  for (uint64_t Fuel = 1; Fuel <= Total + 2; ++Fuel) {
    interp::InterpOptions O;
    O.Fuel = Fuel;
    EngineRuns R = runAllEngines(Source, {}, O);
    EXPECT_EQ(R.Interp.Status,
              Fuel < Total ? RunStatus::FuelExhausted : RunStatus::Ok)
        << "fuel=" << Fuel;
    EXPECT_EQ(R.Vm.Status, R.Interp.Status) << "fuel=" << Fuel;
    EXPECT_EQ(R.Vm.Steps, R.Interp.Steps) << "fuel=" << Fuel;
  }
}

TEST(VmFuel, InfiniteLoopExhaustsBothEngines) {
  interp::InterpOptions O;
  O.Fuel = 5000;
  EngineRuns R = runAllEngines("int main() { while (1) {} return 0; }", {}, O);
  EXPECT_EQ(R.Interp.Status, RunStatus::FuelExhausted);
  EXPECT_EQ(R.Vm.Status, RunStatus::FuelExhausted);
  EXPECT_EQ(R.Vm.Steps, R.Interp.Steps);
}

//===----------------------------------------------------------------------===//
// Run-time qualifier checks and audits
//===----------------------------------------------------------------------===//

TEST(VmChecks, FailingCastReportsIdenticalFailure) {
  EngineRuns R = runAllEngines(
      "int main() { int x = 0 - 5; int y; y = (int pos) x; return y; }",
      {"pos", "neg"});
  EXPECT_EQ(R.Interp.Status, RunStatus::CheckFailure);
  ASSERT_EQ(R.Interp.CheckFailures.size(), 1u);
  EXPECT_EQ(R.Interp.CheckFailures[0].Qual, "pos");
  EXPECT_EQ(R.Interp.CheckFailures[0].ValueStr, "-5");
  EXPECT_EQ(R.Vm.Status, RunStatus::CheckFailure);
}

TEST(VmChecks, PassingCastCountsChecksIdentically) {
  EngineRuns R = runAllEngines(
      "int nonneg dec(int nonneg b, int pos a) {\n"
      "  if (a > b) return b;\n"
      "  return (int nonneg) (b - a);\n"
      "}\n"
      "int main() { int r = dec(10, 3); return dec(r, 2); }",
      {"pos", "neg", "nonneg"});
  EXPECT_TRUE(R.Interp.ok());
  EXPECT_EQ(R.Interp.ChecksExecuted, 2u);
  EXPECT_EQ(R.Vm.ChecksExecuted, 2u);
}

TEST(VmAudit, AuditedStoresCountIdentically) {
  interp::InterpOptions O;
  O.AuditQualifiedStores = true;
  EngineRuns R = runAllEngines(
      "int nonneg balance = 100;\n"
      "void deposit(int pos amount) { balance = balance + amount; }\n"
      "int main() { deposit(30); deposit(12); return balance; }",
      {"pos", "neg", "nonneg"}, O);
  EXPECT_TRUE(R.Interp.ok());
  EXPECT_GT(R.Interp.AuditChecks, 0u);
  EXPECT_EQ(R.Vm.AuditChecks, R.Interp.AuditChecks);
  EXPECT_EQ(R.VmElided.AuditChecks, R.Interp.AuditChecks);
}

//===----------------------------------------------------------------------===//
// Prover-driven check elision
//===----------------------------------------------------------------------===//

TEST(VmElide, NegativeOperandDischargesNonzeroGuard) {
  // nonzero has no case rule for neg expressions, so the checker emits a
  // run-time check; the prover knows value < 0 entails value != 0.
  EngineRuns R = runAllEngines(
      "int f(int neg x) { return 10 / (int nonzero) x; }\n"
      "int main() { int i = 0; int acc = 0;\n"
      "             while (i < 8) { acc = acc + f(-5); i = i + 1; }\n"
      "             return acc + 40; }",
      {"pos", "neg", "nonneg", "nonzero"});
  EXPECT_EQ(R.QualErrors, 0u);
  EXPECT_TRUE(R.Interp.ok());
  EXPECT_EQ(R.Elision.GuardQuals, 1u);
  EXPECT_EQ(R.Elision.Elided, 1u);
  EXPECT_EQ(R.Elision.residual(), 0u);
  EXPECT_GT(R.Elision.ProverQueries, 0u);
  // Without elision both engines execute the check every iteration; with
  // it, never — while output/exit/steps stay identical (asserted in
  // runAllEngines).
  EXPECT_EQ(R.Interp.ChecksExecuted, 8u);
  EXPECT_EQ(R.Vm.ChecksExecuted, 8u);
  EXPECT_EQ(R.VmElided.ChecksExecuted, 0u);
}

TEST(VmElide, UnprovableGuardStaysResidualAndStillFires) {
  // balance - amount can be negative for all the prover knows: the guard
  // must stay, and it must still fail at run time when violated.
  EngineRuns R = runAllEngines(
      "int nonneg balance = 10;\n"
      "int main() { balance = (int nonneg) (balance - 25); return 0; }",
      {"pos", "neg", "nonneg"});
  EXPECT_EQ(R.Elision.Elided, 0u);
  EXPECT_EQ(R.Elision.residual(), 1u);
  EXPECT_EQ(R.Interp.Status, RunStatus::CheckFailure);
  EXPECT_EQ(R.VmElided.Status, RunStatus::CheckFailure);
  ASSERT_EQ(R.VmElided.CheckFailures.size(), 1u);
  EXPECT_EQ(R.VmElided.CheckFailures[0].ValueStr, "-15");
}

TEST(VmElide, ConcreteConstantOperandDischargesWithoutProver) {
  // A DSL qualifier with no case rules: the checker cannot derive it for
  // any expression, but a literal operand lets the compiler evaluate the
  // invariant outright. No soundness or checked-clean gate needed.
  EngineRuns R = runAllEngines(
      "int main() { int x; x = (int low) 5; return x; }", {},
      {},
      "value qualifier low(int Expr E)\n"
      "  invariant value(E) < 100\n");
  EXPECT_EQ(R.Elision.GuardQuals, 1u);
  EXPECT_EQ(R.Elision.ConcreteElided, 1u);
  EXPECT_EQ(R.Elision.ProverQueries, 0u);
  EXPECT_EQ(R.Vm.ChecksExecuted, 1u);
  EXPECT_EQ(R.VmElided.ChecksExecuted, 0u);
}

TEST(VmElide, ConcreteConstantViolationKeepsGuard) {
  EngineRuns R = runAllEngines(
      "int main() { int x; x = (int low) 500; return x; }", {},
      {},
      "value qualifier low(int Expr E)\n"
      "  invariant value(E) < 100\n");
  EXPECT_EQ(R.Elision.Elided, 0u);
  EXPECT_EQ(R.Interp.Status, RunStatus::CheckFailure);
  EXPECT_EQ(R.VmElided.Status, RunStatus::CheckFailure);
}

TEST(VmElide, RejectedProgramNeverTrustsStaticTypes) {
  // Same neg -> nonzero shape, but the program carries a qualifier error
  // elsewhere: ProgramCheckedClean is false, Theorem 5.1 gives nothing,
  // and the guard must stay.
  EngineRuns R = runAllEngines(
      "int f(int neg x) { return 10 / (int nonzero) x; }\n"
      "int g(int pos y) { return y; }\n"
      "int main() { int i = 0; g(i); return f(-5) + 2; }",
      {"pos", "neg", "nonneg", "nonzero"});
  EXPECT_GT(R.QualErrors, 0u);
  EXPECT_EQ(R.Elision.Elided, 0u);
  EXPECT_EQ(R.VmElided.ChecksExecuted, R.Vm.ChecksExecuted);
}

//===----------------------------------------------------------------------===//
// Compiled-program reuse
//===----------------------------------------------------------------------===//

TEST(VmExec, CompiledProgramIsReExecutable) {
  qual::QualifierSet Quals = loadQuals({"pos", "neg"});
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Check = checker::checkSource(
      "int g = 0;\nint main() { g = g + 1; return g; }", Quals, Diags, Prog);
  ASSERT_TRUE(Prog && !Diags.hasErrors());
  auto CP = vm::compileProgram(*Prog, Quals, Check.RuntimeChecks, {});
  // Each execution starts from fresh machine state: globals re-init.
  for (int I = 0; I < 3; ++I) {
    RunResult R = vm::execute(*CP, {});
    ASSERT_TRUE(R.ok());
    EXPECT_EQ(R.ExitValue, 1);
  }
}

} // namespace
