//===- test_workloads.cpp - Tests for workload generators and drivers -----===//
//
// Verifies the synthetic analogues of the paper's evaluation subjects and
// the automated annotation process whose outputs are Tables 1 and 2.
//
//===----------------------------------------------------------------------===//

#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "interp/Interp.h"
#include "qual/Builtins.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::workloads;

namespace {

/// The generated sources must be valid, executable C-minus.
void expectRunnable(const GeneratedWorkload &W,
                    const std::vector<std::string> &QualNames) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers(QualNames, Quals, Diags));
  interp::RunResult R = interp::runSource(W.Source, Quals, Diags, {});
  EXPECT_TRUE(R.ok()) << W.Name << ": " << R.TrapMessage;
}

TEST(Workloads, CountLines) {
  EXPECT_EQ(countLines(""), 0u);
  EXPECT_EQ(countLines("a\nb\n"), 2u);
  EXPECT_EQ(countLines("a\n\n  \nb"), 2u);
}

//===----------------------------------------------------------------------===//
// grep dfa (Table 1)
//===----------------------------------------------------------------------===//

TEST(WorkloadGrep, GeneratedProgramParsesAndRuns) {
  GeneratedWorkload W = makeGrepDfa();
  expectRunnable(W, {"nonnull"});
}

TEST(WorkloadGrep, StructuralStatisticsNearPaper) {
  GeneratedWorkload W = makeGrepDfa();
  // Paper: 2287 lines. Shape: same order of magnitude.
  EXPECT_GT(W.Lines, 1200u);
  EXPECT_LT(W.Lines, 3500u);
}

TEST(WorkloadGrep, NonnullExperimentShape) {
  GeneratedWorkload W = makeGrepDfa();
  Table1Row Row = runNonnullExperiment(W);

  // Paper's Table 1: 1072 dereferences, 114 annotations, 59 casts,
  // 0 errors. The shape that must reproduce:
  //  - every dereference is checked, and there are on the order of 1000;
  EXPECT_GT(Row.Dereferences, 500u);
  EXPECT_LT(Row.Dereferences, 2200u);
  //  - annotations are an order of magnitude fewer than dereferences;
  EXPECT_LT(Row.Annotations * 5, Row.Dereferences);
  EXPECT_GT(Row.Annotations, 40u);
  EXPECT_LT(Row.Annotations, 250u);
  //  - casts are fewer than annotations (flow-insensitivity tax);
  EXPECT_GT(Row.Casts, 10u);
  EXPECT_LT(Row.Casts, Row.Annotations);
  //  - the process converges with no residual errors.
  EXPECT_EQ(Row.Errors, 0u);
  //  - the unannotated program starts with an error per unproven deref.
  EXPECT_GT(Row.InitialErrors, Row.Annotations);
}

TEST(WorkloadGrep, FlowSensitivityRemovesGuardedCasts) {
  // The quantified version of the paper's section 8 claim: the casts come
  // from flow-insensitivity, so enabling the narrowing extension removes
  // the guarded-table casts (and the local annotations they forced).
  GeneratedWorkload W = makeGrepDfa();
  Table1Row Insensitive = runNonnullExperiment(W, /*FlowSensitive=*/false);
  Table1Row Sensitive = runNonnullExperiment(W, /*FlowSensitive=*/true);
  EXPECT_EQ(Sensitive.Errors, 0u);
  EXPECT_LT(Sensitive.Casts, Insensitive.Casts / 2);
  EXPECT_LT(Sensitive.Annotations, Insensitive.Annotations);
  // The dereference count is a property of the program, not the policy.
  EXPECT_EQ(Sensitive.Dereferences, Insensitive.Dereferences);
}

TEST(WorkloadGrep, ScaleGrowsTheProgram) {
  GeneratedWorkload W1 = makeGrepDfa(1);
  GeneratedWorkload W3 = makeGrepDfa(3);
  EXPECT_GT(W3.Lines, 2 * W1.Lines);
}

//===----------------------------------------------------------------------===//
// grep unique (section 6.2)
//===----------------------------------------------------------------------===//

TEST(WorkloadUnique, FortyNineReferencesValidated) {
  GeneratedWorkload W = makeGrepDfaUnique();
  EXPECT_EQ(W.UniqueRefSites, 49u); // The paper's count.
  UniqueRow Row = runUniqueExperiment(W);
  EXPECT_EQ(Row.Violations, 0u);
  EXPECT_EQ(Row.Casts, 1u); // The initialization cast.
}

TEST(WorkloadUnique, GlobalPassedAsArgumentViolates) {
  GeneratedWorkload W = makeGrepDfaUniqueViolating();
  UniqueRow Row = runUniqueExperiment(W);
  EXPECT_GE(Row.Violations, 1u);
}

TEST(WorkloadUnique, GeneratedProgramsParse) {
  // (They are not run: parser_result is external, as in grep where the
  // value comes from the parser module.)
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"unique"}, Quals, Diags));
  auto Prog = cminus::parseProgram(makeGrepDfaUnique().Source, Quals.names(),
                                   Diags);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_TRUE(cminus::runSema(*Prog, Quals.refNames(), Diags));
}

//===----------------------------------------------------------------------===//
// Taint workloads (Table 2)
//===----------------------------------------------------------------------===//

TEST(WorkloadTaint, PrintfCallCountsMatchPaper) {
  EXPECT_EQ(makeBftpd().PrintfCalls, 134u);
  EXPECT_EQ(makeMingetty().PrintfCalls, 23u);
  EXPECT_EQ(makeIdentd().PrintfCalls, 21u);
}

TEST(WorkloadTaint, LineCountsNearPaper) {
  // Paper: 750 / 293 / 228.
  GeneratedWorkload B = makeBftpd();
  GeneratedWorkload M = makeMingetty();
  GeneratedWorkload I = makeIdentd();
  EXPECT_GT(B.Lines, 400u);
  EXPECT_LT(B.Lines, 1100u);
  EXPECT_GT(M.Lines, 120u);
  EXPECT_LT(M.Lines, 450u);
  EXPECT_GT(I.Lines, 90u);
  EXPECT_LT(I.Lines, 350u);
  // Relative ordering preserved.
  EXPECT_GT(B.Lines, M.Lines);
  EXPECT_GT(M.Lines, I.Lines);
}

TEST(WorkloadTaint, BftpdExperimentFindsTheBug) {
  Table2Row Row = runUntaintedExperiment(makeBftpd());
  // Paper: 2 annotations, 0 casts, 1 error (the exploitable call).
  EXPECT_EQ(Row.Annotations, 2u);
  EXPECT_EQ(Row.Casts, 0u);
  EXPECT_EQ(Row.Errors, 1u);
}

TEST(WorkloadTaint, MingettyExperimentClean) {
  Table2Row Row = runUntaintedExperiment(makeMingetty());
  // Paper: 1 annotation, 0 casts, 0 errors.
  EXPECT_EQ(Row.Annotations, 1u);
  EXPECT_EQ(Row.Casts, 0u);
  EXPECT_EQ(Row.Errors, 0u);
}

TEST(WorkloadTaint, IdentdExperimentClean) {
  Table2Row Row = runUntaintedExperiment(makeIdentd());
  // Paper: 0 annotations, 0 casts, 0 errors.
  EXPECT_EQ(Row.Annotations, 0u);
  EXPECT_EQ(Row.Casts, 0u);
  EXPECT_EQ(Row.Errors, 0u);
}

TEST(WorkloadTaint, ProgramsExecuteAndExposeBugDynamically) {
  // The interpreter shows the bftpd bug is real: the d_name format string
  // reads nonexistent arguments.
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"tainted", "untainted"}, Quals,
                                          Diags));
  GeneratedWorkload B = makeBftpd();
  // Drive the vulnerable path directly.
  std::string Source = B.Source +
                       "\nint poc() {\n"
                       "  struct session* s = (struct session*) "
                       "malloc(sizeof(struct session));\n"
                       "  s->sock = 4;\n"
                       "  struct dirent* e = (struct dirent*) "
                       "malloc(sizeof(struct dirent));\n"
                       "  e->d_name = \"%s%s%s\";\n"
                       "  command_list_entry(s, e);\n"
                       "  return 0;\n"
                       "}\n";
  interp::InterpOptions Options;
  Options.EntryPoint = "poc";
  interp::RunResult R = interp::runSource(Source, Quals, Diags, Options);
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_GE(R.FormatViolations.size(), 1u);
}

TEST(WorkloadTaint, MingettyAndIdentdRun) {
  expectRunnable(makeMingetty(), {"tainted", "untainted"});
  expectRunnable(makeIdentd(), {"tainted", "untainted"});
}

} // namespace
