//===- test_metrics.cpp - Tests for the observability layer ---------------===//
//
// Stats registry (counters, gauges, histograms, scoped timers), the trace
// collector and its RAII spans, the text/JSON metrics emitters, the Chrome
// trace writer, JSON escaping, and the diagnostic consumers.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/MetricsEmitter.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

using namespace stq;

namespace {

// Crude structural validity check: quotes balanced, braces/brackets
// balanced and never negative outside strings.
void expectBalancedJson(const std::string &S) {
  int Braces = 0, Brackets = 0;
  bool InString = false, Escaped = false;
  for (char C : S) {
    if (Escaped) {
      Escaped = false;
      continue;
    }
    if (InString) {
      if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"': InString = true; break;
    case '{': ++Braces; break;
    case '}': --Braces; break;
    case '[': ++Brackets; break;
    case ']': --Brackets; break;
    default: break;
    }
    ASSERT_GE(Braces, 0);
    ASSERT_GE(Brackets, 0);
  }
  EXPECT_FALSE(InString);
  EXPECT_EQ(Braces, 0);
  EXPECT_EQ(Brackets, 0);
}

TEST(Stats, CounterAddSetGet) {
  stats::Registry R;
  R.add("a.b", 2);
  R.add("a.b", 3);
  EXPECT_EQ(R.counter("a.b").get(), 5u);
  R.set("a.b", 7);
  EXPECT_EQ(R.counter("a.b").get(), 7u);
}

TEST(Stats, LookupIsStable) {
  stats::Registry R;
  stats::Counter &C1 = R.counter("x");
  stats::Counter &C2 = R.counter("x");
  EXPECT_EQ(&C1, &C2);
}

TEST(Stats, GaugeLastWriteWins) {
  stats::Registry R;
  R.setGauge("rate", 0.25);
  R.setGauge("rate", 0.5);
  EXPECT_DOUBLE_EQ(R.gauge("rate").get(), 0.5);
}

TEST(Stats, HistogramSummary) {
  stats::Registry R;
  R.record("h", 1.0);
  R.record("h", 3.0);
  R.record("h", 2.0);
  stats::Histogram::Data D = R.histogram("h").data();
  EXPECT_EQ(D.Count, 3u);
  EXPECT_DOUBLE_EQ(D.Sum, 6.0);
  EXPECT_DOUBLE_EQ(D.Min, 1.0);
  EXPECT_DOUBLE_EQ(D.Max, 3.0);
  EXPECT_DOUBLE_EQ(D.mean(), 2.0);
  uint64_t Total = 0;
  for (uint64_t B : D.Buckets)
    Total += B;
  EXPECT_EQ(Total, 3u);
}

TEST(Stats, HistogramBucketsAreLog2Microseconds) {
  stats::Registry R;
  R.record("h", 0.0000005); // below 1us: bucket 0
  R.record("h", 0.000002);  // 2us: floor(log2(2)) = 1 -> bucket 2
  stats::Histogram::Data D = R.histogram("h").data();
  ASSERT_GE(D.Buckets.size(), 3u);
  EXPECT_EQ(D.Buckets[0], 1u);
  EXPECT_EQ(D.Buckets[2], 1u);
}

TEST(Stats, SnapshotIsSortedByName) {
  stats::Registry R;
  R.add("zeta", 1);
  R.add("alpha", 1);
  R.add("mid", 1);
  auto Snap = R.snapshot();
  std::vector<std::string> Names;
  for (const auto &[Name, V] : Snap.Counters)
    Names.push_back(Name);
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "alpha");
  EXPECT_EQ(Names[1], "mid");
  EXPECT_EQ(Names[2], "zeta");
}

TEST(Stats, ScopedTimerRecordsOnce) {
  stats::Registry R;
  {
    stats::ScopedTimer T(&R, "phase.x_seconds");
    T.stop();
    T.stop(); // idempotent
  }
  stats::Histogram::Data D = R.histogram("phase.x_seconds").data();
  EXPECT_EQ(D.Count, 1u);
  EXPECT_GE(D.Sum, 0.0);
}

TEST(Stats, ScopedTimerNullRegistryIsNoOp) {
  stats::ScopedTimer T(nullptr, "ignored");
  T.stop(); // must not crash
}

TEST(Stats, CountersAreThreadSafe) {
  stats::Registry R;
  stats::Counter &C = R.counter("hot");
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&C] {
      for (int I = 0; I < 1000; ++I)
        C.add(1);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.get(), 4000u);
}

TEST(Trace, DisabledByDefault) {
  EXPECT_FALSE(trace::Tracer::enabled());
  { trace::Span S("parse"); EXPECT_FALSE(S.active()); }
  trace::instant("probe");
  // Nothing was buffered: a start/stop cycle with no activity is empty.
  trace::Tracer::start();
  EXPECT_TRUE(trace::Tracer::stop().empty());
  EXPECT_FALSE(trace::Tracer::enabled());
}

TEST(Trace, RecordsNestedSpansAndInstants) {
  trace::Tracer::start();
  {
    trace::Span Outer("qualcheck");
    EXPECT_TRUE(Outer.active());
    {
      trace::Span Inner("check.unit");
      Inner.detail("main");
    }
    trace::instant("prover.cache.hit");
  }
  std::vector<trace::TraceEvent> Events = trace::Tracer::stop();
  ASSERT_EQ(Events.size(), 3u);

  const trace::TraceEvent *Outer = nullptr, *Inner = nullptr, *Hit = nullptr;
  for (const trace::TraceEvent &E : Events) {
    std::string Name = E.Name;
    if (Name == "qualcheck")
      Outer = &E;
    else if (Name == "check.unit")
      Inner = &E;
    else if (Name == "prover.cache.hit")
      Hit = &E;
  }
  ASSERT_TRUE(Outer && Inner && Hit);
  EXPECT_EQ(Outer->K, trace::TraceEvent::Kind::Span);
  EXPECT_EQ(Inner->Detail, "main");
  EXPECT_GT(Inner->Depth, Outer->Depth);
  EXPECT_EQ(Hit->K, trace::TraceEvent::Kind::Instant);
  EXPECT_EQ(Hit->DurUs, 0u);
  EXPECT_GE(Outer->DurUs, Inner->DurUs);
}

TEST(Trace, StartClearsPreviousBuffer) {
  trace::Tracer::start();
  { trace::Span S("parse"); }
  trace::Tracer::start(); // discard the first trace
  { trace::Span S("sema"); }
  std::vector<trace::TraceEvent> Events = trace::Tracer::stop();
  ASSERT_EQ(Events.size(), 1u);
  EXPECT_STREQ(Events[0].Name, "sema");
}

TEST(Metrics, ParseFormat) {
  EXPECT_EQ(metrics::parseFormat(""), metrics::Format::Text);
  EXPECT_EQ(metrics::parseFormat("text"), metrics::Format::Text);
  EXPECT_EQ(metrics::parseFormat("json"), metrics::Format::Json);
  EXPECT_FALSE(metrics::parseFormat("yaml").has_value());
  EXPECT_FALSE(metrics::parseFormat("JSON").has_value());
}

TEST(Metrics, TextEmitterFormat) {
  stats::Registry R;
  R.add("check.units", 2);
  R.setGauge("prover.cache.hit_rate", 0.5);
  R.record("phase.parse_seconds", 0.25);
  std::ostringstream OS;
  metrics::MetricsEmitter::create(metrics::Format::Text)
      ->emit(R.snapshot(), OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("check.units = 2\n"), std::string::npos);
  EXPECT_NE(Out.find("prover.cache.hit_rate = 0.500\n"), std::string::npos);
  EXPECT_NE(Out.find("phase.parse_seconds: count=1 sum=0.25"),
            std::string::npos);
}

TEST(Metrics, JsonEmitterSchemaAndBalance) {
  stats::Registry R;
  R.add("check.units", 2);
  R.setGauge("prover.cache.hit_rate", 0.5);
  R.record("phase.parse_seconds", 0.001);
  std::ostringstream OS;
  metrics::MetricsEmitter::create(metrics::Format::Json)
      ->emit(R.snapshot(), OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"schema\": \"stq-metrics-v1\""), std::string::npos);
  EXPECT_NE(Out.find("\"counters\""), std::string::npos);
  EXPECT_NE(Out.find("\"check.units\": 2"), std::string::npos);
  EXPECT_NE(Out.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Out.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Out.find("\"buckets\""), std::string::npos);
  expectBalancedJson(Out);
}

TEST(Metrics, JsonEmitterEmptySnapshotIsValid) {
  stats::Registry R;
  std::ostringstream OS;
  metrics::MetricsEmitter::create(metrics::Format::Json)
      ->emit(R.snapshot(), OS);
  expectBalancedJson(OS.str());
}

TEST(Metrics, JsonEscape) {
  EXPECT_EQ(metrics::jsonEscape("plain"), "plain");
  EXPECT_EQ(metrics::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(metrics::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(metrics::jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(metrics::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Metrics, ChromeTraceFormat) {
  std::vector<trace::TraceEvent> Events;
  trace::TraceEvent Span;
  Span.Name = "parse";
  Span.K = trace::TraceEvent::Kind::Span;
  Span.StartUs = 10;
  Span.DurUs = 5;
  Span.Tid = 0;
  Events.push_back(Span);
  trace::TraceEvent Instant;
  Instant.Name = "prover.cache.hit";
  Instant.Detail = "shard 3";
  Instant.K = trace::TraceEvent::Kind::Instant;
  Instant.StartUs = 12;
  Events.push_back(Instant);

  std::ostringstream OS;
  metrics::writeChromeTrace(Events, OS);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Out.find("\"name\": \"parse\", \"ph\": \"X\", \"ts\": 10, "
                     "\"dur\": 5"),
            std::string::npos);
  EXPECT_NE(Out.find("\"name\": \"prover.cache.hit shard 3\", \"ph\": \"i\""),
            std::string::npos);
  expectBalancedJson(Out);
}

TEST(Metrics, SchedulingDependentPrefixes) {
  const std::vector<std::string> &P =
      metrics::schedulingDependentCounterPrefixes();
  EXPECT_NE(std::find(P.begin(), P.end(), "pool."), P.end());
  EXPECT_NE(std::find(P.begin(), P.end(), "check.memo."), P.end());
  EXPECT_NE(std::find(P.begin(), P.end(), "prover.cache.contended"), P.end());
  // check.* totals themselves are part of the determinism contract.
  EXPECT_EQ(std::find(P.begin(), P.end(), "check."), P.end());
}

TEST(Diagnostics, TextConsumerMatchesHistoricalFormat) {
  DiagnosticEngine Diags;
  std::ostringstream OS;
  TextDiagnosticConsumer Consumer(OS);
  Diags.setConsumer(&Consumer);
  Diags.warning(SourceLoc(3, 7), "qualcheck", "cannot prove nonnull");
  Diags.error(SourceLoc(), "driver", "cannot open 'x.q'");
  Diags.setConsumer(nullptr);

  std::string Expected = Diags.diagnostics()[0].str() + "\n" +
                         Diags.diagnostics()[1].str() + "\n";
  EXPECT_EQ(OS.str(), Expected);
}

TEST(Diagnostics, TextConsumerPhaseFilter) {
  DiagnosticEngine Diags;
  std::ostringstream OS;
  TextDiagnosticConsumer Consumer(OS, "qualcheck");
  Diags.setConsumer(&Consumer);
  Diags.error(SourceLoc(1, 1), "parse", "dropped");
  Diags.warning(SourceLoc(2, 2), "qualcheck", "kept");
  Diags.setConsumer(nullptr);
  EXPECT_EQ(OS.str().find("dropped"), std::string::npos);
  EXPECT_NE(OS.str().find("kept"), std::string::npos);
}

TEST(Diagnostics, JsonConsumerEmitsSchemaOnFinish) {
  DiagnosticEngine Diags;
  std::ostringstream OS;
  JsonDiagnosticConsumer Consumer(OS);
  Diags.setConsumer(&Consumer);
  Diags.warning(SourceLoc(3, 7), "qualcheck", "cannot prove \"nonnull\"");
  Diags.note(SourceLoc(), "soundness", "no location");
  EXPECT_TRUE(OS.str().empty()); // buffered until finish()
  Consumer.finish();
  Diags.setConsumer(nullptr);

  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"schema\": \"stq-diagnostics-v1\""),
            std::string::npos);
  EXPECT_NE(Out.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(Out.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(Out.find("\"col\": 7"), std::string::npos);
  EXPECT_NE(Out.find("cannot prove \\\"nonnull\\\""), std::string::npos);
  // The invalid location must not produce line/col keys.
  size_t NotePos = Out.find("\"no location\"");
  ASSERT_NE(NotePos, std::string::npos);
  EXPECT_EQ(Out.find("\"line\"", NotePos), std::string::npos);
  expectBalancedJson(Out);
}

} // namespace
