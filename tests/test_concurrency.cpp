//===- test_concurrency.cpp - Thread-pool and cache stress tests ----------===//
//
// Hammers the concurrent pieces of the parallel pipeline: the
// work-stealing pool, the sharded prover cache, the sharded checker, and
// the fanned-out soundness obligations. These tests are most valuable
// under ThreadSanitizer (configure with -DSTQ_SANITIZE=thread); without a
// sanitizer they still catch lost tasks, lost wakeups, torn counters, and
// deadlocks (via the gtest timeout).
//
//===----------------------------------------------------------------------===//

#include "checker/Parallel.h"
#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"
#include "support/ThreadPool.h"

#include "TestTempDir.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolStress, EveryTaskRunsExactlyOnce) {
  ThreadPool Pool(8);
  constexpr unsigned N = 10000;
  std::vector<std::atomic<unsigned>> Ran(N);
  for (unsigned I = 0; I < N; ++I)
    Pool.submit([&Ran, I] { Ran[I].fetch_add(1, std::memory_order_relaxed); });
  Pool.wait();
  for (unsigned I = 0; I < N; ++I)
    ASSERT_EQ(Ran[I].load(), 1u) << "task " << I;
  EXPECT_EQ(Pool.stats().Executed, N);
}

TEST(ThreadPoolStress, TasksSubmittingTasks) {
  ThreadPool Pool(4);
  std::atomic<unsigned> Count{0};
  constexpr unsigned Roots = 64, Children = 16;
  for (unsigned I = 0; I < Roots; ++I)
    Pool.submit([&] {
      Count.fetch_add(1, std::memory_order_relaxed);
      for (unsigned C = 0; C < Children; ++C)
        Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  Pool.wait();
  EXPECT_EQ(Count.load(), Roots + Roots * Children);
}

TEST(ThreadPoolStress, RepeatedWaitCycles) {
  // wait() must be re-usable: submit, wait, submit again.
  ThreadPool Pool(4);
  std::atomic<unsigned> Count{0};
  for (unsigned Round = 0; Round < 50; ++Round) {
    for (unsigned I = 0; I < 20; ++I)
      Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    Pool.wait();
    ASSERT_EQ(Count.load(), (Round + 1) * 20);
  }
}

TEST(ThreadPoolStress, ConcurrentSubmitters) {
  // Multiple external threads feeding one pool.
  ThreadPool Pool(4);
  std::atomic<unsigned> Count{0};
  constexpr unsigned Feeders = 4, PerFeeder = 500;
  std::vector<std::thread> Threads;
  for (unsigned F = 0; F < Feeders; ++F)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I < PerFeeder; ++I)
        Pool.submit([&] { Count.fetch_add(1, std::memory_order_relaxed); });
    });
  for (std::thread &T : Threads)
    T.join();
  Pool.wait();
  EXPECT_EQ(Count.load(), Feeders * PerFeeder);
}

TEST(ThreadPoolStress, ParallelForCoversRange) {
  for (unsigned Jobs : {1u, 2u, 7u, 16u}) {
    constexpr size_t N = 4096;
    std::vector<std::atomic<unsigned>> Hit(N);
    ThreadPool::PoolStats Stats;
    parallelFor(Jobs, N,
                [&](size_t I) { Hit[I].fetch_add(1, std::memory_order_relaxed); },
                &Stats);
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Hit[I].load(), 1u) << "jobs " << Jobs << " index " << I;
    EXPECT_EQ(Stats.Executed, N);
  }
}

TEST(ThreadPoolStress, DestructionWithIdleWorkers) {
  // Pools must tear down cleanly whether or not they ever ran a task.
  for (unsigned Round = 0; Round < 20; ++Round) {
    ThreadPool Idle(4);
    ThreadPool Busy(4);
    std::atomic<unsigned> Count{0};
    Busy.submit([&] { Count.fetch_add(1); });
    Busy.wait();
    EXPECT_EQ(Count.load(), 1u);
  }
}

//===----------------------------------------------------------------------===//
// ProverCache
//===----------------------------------------------------------------------===//

TEST(ProverCacheStress, ConcurrentInsertAndLookup) {
  prover::ProverCache Cache;
  constexpr unsigned Threads = 8, Keys = 200, Rounds = 50;
  std::atomic<unsigned> WrongAnswers{0};
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&Cache, &WrongAnswers, T] {
      for (unsigned R = 0; R < Rounds; ++R)
        for (unsigned K = 0; K < Keys; ++K) {
          std::string Key = "task-" + std::to_string(K);
          // Every key has one correct answer, derived from the key; any
          // torn or cross-keyed read would surface as a wrong result.
          prover::ProofResult Expect = K % 2 ? prover::ProofResult::Proved
                                             : prover::ProofResult::Unknown;
          if (auto Hit = Cache.lookup(Key)) {
            if (Hit->Result != Expect)
              WrongAnswers.fetch_add(1, std::memory_order_relaxed);
          } else {
            prover::ProverStats Stats;
            Stats.Seconds = 0.001 * (T + 1);
            Cache.insert(Key, Expect, Stats);
          }
        }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(WrongAnswers.load(), 0u);

  prover::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Entries, Keys);
  EXPECT_EQ(CS.Lookups, CS.Hits + CS.Misses);
  EXPECT_EQ(CS.Lookups,
            static_cast<uint64_t>(Threads) * Rounds * Keys);
  // Racing inserts of the same key are allowed; the first wins and the
  // rest are dropped, so insertions can exceed entries but never misses.
  EXPECT_GE(CS.Insertions, CS.Entries);
  EXPECT_LE(CS.Insertions, CS.Misses);
}

TEST(ProverCacheStress, ClearDuringUse) {
  prover::ProverCache Cache;
  std::atomic<bool> Done{false};
  std::thread Clearer([&] {
    while (!Done.load(std::memory_order_relaxed))
      Cache.clear();
  });
  prover::ProverStats Stats;
  for (unsigned I = 0; I < 5000; ++I) {
    std::string Key = "k" + std::to_string(I % 64);
    if (!Cache.lookup(Key))
      Cache.insert(Key, prover::ProofResult::Proved, Stats);
  }
  Done.store(true);
  Clearer.join();
  prover::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Lookups, CS.Hits + CS.Misses);
}

//===----------------------------------------------------------------------===//
// End-to-end: parallel checker and soundness fan-out under load
//===----------------------------------------------------------------------===//

TEST(PipelineStress, RepeatedParallelChecks) {
  DiagnosticEngine Setup;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg"}, Quals, Setup));

  std::string Source;
  for (unsigned F = 0; F < 40; ++F) {
    std::string N = std::to_string(F);
    Source += "int f" + N + "(int pos a" + N + ") {\n"
              "  int pos x" + N + " = a" + N + " * a" + N + ";\n"
              "  int pos bad" + N + " = x" + N + " - 1;\n"
              "  return bad" + N + ";\n}\n";
  }

  DiagnosticEngine BaseDiags;
  std::unique_ptr<cminus::Program> BaseProg;
  checker::CheckResult Base = checker::checkSourceParallel(
      Source, Quals, BaseDiags, BaseProg, {}, 1);
  ASSERT_FALSE(BaseDiags.hasErrors());
  EXPECT_EQ(Base.QualErrors, 40u);

  for (unsigned Round = 0; Round < 10; ++Round) {
    DiagnosticEngine Diags;
    checker::CheckResult Result =
        checker::checkProgramParallel(*BaseProg, Quals, Diags, {}, 8);
    ASSERT_EQ(Result.QualErrors, Base.QualErrors) << "round " << Round;
    ASSERT_EQ(Diags.diagnostics().size(), BaseDiags.diagnostics().size());
  }
}

TEST(PipelineStress, ConcurrentSoundnessCheckersSharedCache) {
  DiagnosticEngine Setup;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg", "nonzero"}, Quals,
                                          Setup));
  prover::ProverCache Cache;
  std::atomic<unsigned> Unsound{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      soundness::SoundnessChecker SC(Quals, {}, nullptr, &Cache);
      for (const soundness::SoundnessReport &R : SC.checkAll(2))
        if (!R.sound())
          Unsound.fetch_add(1, std::memory_order_relaxed);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Unsound.load(), 0u);
  prover::CacheStats CS = Cache.stats();
  EXPECT_GT(CS.Hits, 0u);
  EXPECT_EQ(CS.Lookups, CS.Hits + CS.Misses);
}

TEST(PipelineStress, PersistentCacheSaveLoadRacesParallelChecker) {
  // The --cache-file path under contention: while parallel soundness
  // checkers hammer a shared cache, other threads repeatedly save() it to
  // one path and load() the file back into the same cache. save() renames
  // a complete temp file into place, so a concurrent load() must always
  // see a parseable snapshot, and loaded entries must never override
  // fresher in-memory ones.
  DiagnosticEngine Setup;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg", "nonzero"}, Quals,
                                          Setup));
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_cache_race.stqcache");
  prover::ProverCache Cache;
  {
    // Seed the file so the first load() races a real parse.
    soundness::SoundnessChecker Seed(Quals, {}, nullptr, &Cache);
    Seed.checkAll(1);
    std::string Error;
    ASSERT_TRUE(Cache.save(Path, &Error)) << Error;
  }

  std::atomic<unsigned> Unsound{0};
  std::atomic<unsigned> FailedLoads{0};
  std::atomic<bool> Done{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 3; ++T)
    Threads.emplace_back([&] {
      soundness::SoundnessChecker SC(Quals, {}, nullptr, &Cache);
      for (unsigned Round = 0; Round < 4; ++Round)
        for (const soundness::SoundnessReport &R : SC.checkAll(2))
          if (!R.sound())
            Unsound.fetch_add(1, std::memory_order_relaxed);
    });
  Threads.emplace_back([&] {
    std::string Error;
    while (!Done.load(std::memory_order_relaxed))
      Cache.save(Path, &Error);
  });
  Threads.emplace_back([&] {
    std::string Error;
    while (!Done.load(std::memory_order_relaxed))
      if (!Cache.load(Path, &Error))
        FailedLoads.fetch_add(1, std::memory_order_relaxed);
  });
  for (unsigned T = 0; T < 3; ++T)
    Threads[T].join();
  Done.store(true, std::memory_order_relaxed);
  Threads[3].join();
  Threads[4].join();

  EXPECT_EQ(Unsound.load(), 0u);
  // Every load raced a rename of a fully written snapshot: none may have
  // seen a torn or truncated file.
  EXPECT_EQ(FailedLoads.load(), 0u);
  prover::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Lookups, CS.Hits + CS.Misses);
}

} // namespace
