//===- test_differential.cpp - Sequential vs parallel differential tests --===//
//
// The parallel pipeline's contract is behavioral equivalence: for any job
// count, `stqc check --jobs N` must produce the same diagnostics as the
// sequential checker, and a prover answer replayed from the memoized cache
// must match a fresh re-proof of the same obligation. This harness checks
// both over randomized workloads with fixed seeds.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Parallel.h"
#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// Randomized C-minus program generation
//===----------------------------------------------------------------------===//

/// Generates a random C-minus program over the pos/neg qualifiers. The
/// expression grammar mixes derivably-qualified terms (positive constants,
/// products of pos, negations of neg) with deliberately ill-typed ones
/// (zero and negative constants, sums, subtractions), so every program
/// yields a mix of accepted declarations and qualifier diagnostics.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    std::string Out;
    unsigned Functions = 2 + Rng() % 6;
    for (unsigned F = 0; F < Functions; ++F)
      Out += function(F);
    return Out;
  }

private:
  std::mt19937 Rng;

  unsigned pick(unsigned N) { return Rng() % N; }

  std::string qualifier() {
    switch (pick(3)) {
    case 0: return "pos ";
    case 1: return "neg ";
    default: return "";
    }
  }

  /// An expression over the in-scope names \p Vars. Depth-bounded.
  std::string expr(const std::vector<std::string> &Vars, unsigned Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (!Vars.empty() && pick(2) == 0)
        return Vars[pick(static_cast<unsigned>(Vars.size()))];
      // Constants across the sign spectrum: pos-derivable, neg-derivable,
      // and zero (derivable for neither).
      static const char *Consts[] = {"3", "7", "1", "0", "-2", "-9"};
      return Consts[pick(6)];
    }
    switch (pick(4)) {
    case 0:
      return "(" + expr(Vars, Depth - 1) + " * " + expr(Vars, Depth - 1) +
             ")";
    case 1:
      return "(" + expr(Vars, Depth - 1) + " + " + expr(Vars, Depth - 1) +
             ")";
    case 2:
      return "(" + expr(Vars, Depth - 1) + " - " + expr(Vars, Depth - 1) +
             ")";
    default:
      return "(-" + expr(Vars, Depth - 1) + ")";
    }
  }

  std::string function(unsigned Index) {
    std::string Name = "f" + std::to_string(Index);
    unsigned Params = pick(3);
    std::vector<std::string> Vars;
    std::string Sig;
    for (unsigned P = 0; P < Params; ++P) {
      std::string PName = "p" + std::to_string(P);
      if (P)
        Sig += ", ";
      Sig += "int " + qualifier() + PName;
      Vars.push_back(PName);
    }
    std::string Body;
    unsigned Stmts = 1 + pick(5);
    for (unsigned S = 0; S < Stmts; ++S) {
      std::string VName = "v" + std::to_string(S);
      Body += "  int " + qualifier() + VName + " = " + expr(Vars, 2) + ";\n";
      Vars.push_back(VName);
    }
    Body += "  return " + Vars.back() + ";\n";
    return "int " + Name + "(" + Sig + ") {\n" + Body + "}\n";
  }
};

/// Renders a diagnostic as "line:col:severity:message" for comparison.
std::string render(const Diagnostic &D) {
  return std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col) + ":" +
         std::to_string(static_cast<int>(D.Severity)) + ":" + D.Phase + ":" +
         D.Message;
}

std::vector<std::string> renderAll(const DiagnosticEngine &Diags) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : Diags.diagnostics())
    Out.push_back(render(D));
  return Out;
}

struct CheckOutcome {
  std::vector<std::string> Diags;
  unsigned QualErrors = 0;
  size_t RuntimeChecks = 0;
  size_t Failures = 0;
};

CheckOutcome runCheck(const std::string &Source, unsigned Jobs) {
  CheckOutcome Out;
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  EXPECT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg"}, Quals, Diags));
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Result =
      checker::checkSourceParallel(Source, Quals, Diags, Prog, {}, Jobs);
  EXPECT_FALSE(Diags.hasErrors()) << "generator produced invalid source:\n"
                                  << Source;
  Out.Diags = renderAll(Diags);
  Out.QualErrors = Result.QualErrors;
  Out.RuntimeChecks = Result.RuntimeChecks.size();
  Out.Failures = Result.Failures.size();
  return Out;
}

//===----------------------------------------------------------------------===//
// Checker differential: --jobs 4 vs sequential
//===----------------------------------------------------------------------===//

TEST(DifferentialChecker, RandomProgramsParallelMatchesSequential) {
  for (unsigned Seed = 0; Seed < 25; ++Seed) {
    std::string Source = ProgramGenerator(Seed).generate();
    CheckOutcome Seq = runCheck(Source, 1);
    CheckOutcome Par = runCheck(Source, 4);

    // The contract is byte-identical output in the same order, which is
    // strictly stronger than the sorted comparison; check the exact
    // sequence first so ordering bugs are not masked.
    EXPECT_EQ(Seq.Diags, Par.Diags) << "seed " << Seed << "\n" << Source;

    // And the location-sorted comparison the harness specifies, so a
    // future relaxation of the ordering contract still gets content
    // equality checked.
    std::vector<std::string> SeqSorted = Seq.Diags, ParSorted = Par.Diags;
    std::sort(SeqSorted.begin(), SeqSorted.end());
    std::sort(ParSorted.begin(), ParSorted.end());
    EXPECT_EQ(SeqSorted, ParSorted) << "seed " << Seed;

    EXPECT_EQ(Seq.QualErrors, Par.QualErrors) << "seed " << Seed;
    EXPECT_EQ(Seq.RuntimeChecks, Par.RuntimeChecks) << "seed " << Seed;
    EXPECT_EQ(Seq.Failures, Par.Failures) << "seed " << Seed;
  }
}

TEST(DifferentialChecker, JobSweepIsInvariant) {
  // One program, every job count: all outputs identical to --jobs 1.
  std::string Source = ProgramGenerator(12345).generate();
  CheckOutcome Base = runCheck(Source, 1);
  EXPECT_GT(Base.QualErrors, 0u)
      << "generator should plant qualifier errors; got none:\n" << Source;
  for (unsigned Jobs : {2u, 3u, 4u, 8u, 16u}) {
    CheckOutcome Out = runCheck(Source, Jobs);
    EXPECT_EQ(Base.Diags, Out.Diags) << "jobs " << Jobs;
    EXPECT_EQ(Base.QualErrors, Out.QualErrors) << "jobs " << Jobs;
  }
}

TEST(DifferentialChecker, ParallelEntryMatchesCheckSource) {
  // The parallel front end (parse/sema/lower) must match checkSource's.
  std::string Source = ProgramGenerator(777).generate();

  DiagnosticEngine DiagsA;
  qual::QualifierSet QualsA;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg"}, QualsA, DiagsA));
  std::unique_ptr<cminus::Program> ProgA;
  checker::CheckResult A =
      checker::checkSource(Source, QualsA, DiagsA, ProgA);

  CheckOutcome B = runCheck(Source, 4);
  EXPECT_EQ(renderAll(DiagsA), B.Diags);
  EXPECT_EQ(A.QualErrors, B.QualErrors);
}

//===----------------------------------------------------------------------===//
// Prover cache differential: replayed answers vs fresh re-proofs
//===----------------------------------------------------------------------===//

/// Every builtin qualifier with a soundness invariant, checked with and
/// without the cache; verdicts must agree obligation-by-obligation.
void expectReportsMatch(const soundness::SoundnessReport &Fresh,
                        const soundness::SoundnessReport &Cached) {
  ASSERT_EQ(Fresh.Obligations.size(), Cached.Obligations.size())
      << Fresh.Qual;
  for (size_t I = 0; I < Fresh.Obligations.size(); ++I) {
    const soundness::Obligation &F = Fresh.Obligations[I];
    const soundness::Obligation &C = Cached.Obligations[I];
    EXPECT_EQ(F.Qual, C.Qual);
    EXPECT_EQ(F.Kind, C.Kind) << F.Qual << " #" << I;
    EXPECT_EQ(F.Description, C.Description) << F.Qual << " #" << I;
    EXPECT_EQ(F.Result, C.Result) << F.Qual << ": " << F.Description;
  }
}

TEST(DifferentialProver, CachedAnswersMatchFreshReproofs) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadBuiltinQualifiers(
      {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted"}, Quals,
      Diags));

  // Fresh run, no cache: the ground truth.
  soundness::SoundnessChecker Fresh(Quals);
  std::vector<soundness::SoundnessReport> FreshReports = Fresh.checkAll();

  // Cold run populates the cache, warm run replays every answer.
  prover::ProverCache Cache;
  soundness::SoundnessChecker Cold(Quals, {}, nullptr, &Cache);
  std::vector<soundness::SoundnessReport> ColdReports = Cold.checkAll();
  soundness::SoundnessChecker Warm(Quals, {}, nullptr, &Cache);
  std::vector<soundness::SoundnessReport> WarmReports = Warm.checkAll(4);

  ASSERT_EQ(FreshReports.size(), ColdReports.size());
  ASSERT_EQ(FreshReports.size(), WarmReports.size());
  unsigned Replayed = 0;
  for (size_t I = 0; I < FreshReports.size(); ++I) {
    expectReportsMatch(FreshReports[I], ColdReports[I]);
    expectReportsMatch(FreshReports[I], WarmReports[I]);
    for (const soundness::Obligation &O : WarmReports[I].Obligations) {
      EXPECT_TRUE(O.FromCache) << O.Qual << ": " << O.Description;
      Replayed += O.FromCache;
    }
  }
  EXPECT_GT(Replayed, 0u);

  prover::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Hits, Replayed);
  EXPECT_EQ(CS.Misses, CS.Insertions);
  EXPECT_GT(CS.hitRate(), 0.0);
}

TEST(DifferentialProver, CacheIsJobCountInvariant) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(
      qual::loadBuiltinQualifiers({"pos", "neg", "nonzero"}, Quals, Diags));

  // Populate sequentially; replay in parallel — and vice versa.
  for (unsigned PrimeJobs : {1u, 4u}) {
    prover::ProverCache Cache;
    soundness::SoundnessChecker Prime(Quals, {}, nullptr, &Cache);
    std::vector<soundness::SoundnessReport> A = Prime.checkAll(PrimeJobs);
    soundness::SoundnessChecker Replay(Quals, {}, nullptr, &Cache);
    std::vector<soundness::SoundnessReport> B =
        Replay.checkAll(PrimeJobs == 1 ? 4 : 1);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I)
      expectReportsMatch(A[I], B[I]);
    EXPECT_EQ(Cache.stats().Hits, Cache.stats().Misses);
  }
}

//===----------------------------------------------------------------------===//
// Engine differential: incremental trail-based core vs reference recursion
//===----------------------------------------------------------------------===//

/// Replays one randomized prover session (quantified axioms from fixed
/// templates, random ground hypotheses, one goal) under \p Engine. The
/// construction is fully determined by \p Seed, so both engines see
/// byte-identical sessions; budgets stay far from the resource limits so a
/// verdict can never flip on a wall-clock edge.
prover::ProofResult runEngineSession(unsigned Seed,
                                     prover::EngineKind Engine) {
  std::mt19937 Rng(Seed);
  auto Pick = [&](size_t N) {
    return static_cast<size_t>(Rng() % static_cast<unsigned>(N));
  };

  prover::ProverOptions Options;
  Options.Engine = Engine;
  prover::Prover P(Options);
  prover::TermArena &A = P.arena();

  // Ground vocabulary: constants, small ints, and random f/g/h towers.
  std::vector<prover::TermId> Pool;
  for (const char *C : {"a", "b", "c"})
    Pool.push_back(A.app(C));
  for (int I : {-1, 0, 2})
    Pool.push_back(A.intConst(I));
  size_t Grow = 3 + Pick(5);
  for (size_t I = 0; I < Grow; ++I) {
    prover::TermId X = Pool[Pick(Pool.size())];
    prover::TermId Y = Pool[Pick(Pool.size())];
    switch (Pick(3)) {
    case 0:
      Pool.push_back(A.app("f", {X}));
      break;
    case 1:
      Pool.push_back(A.app("g", {X}));
      break;
    default:
      Pool.push_back(A.app("h", {X, Y}));
      break;
    }
  }

  auto RandomLit = [&]() {
    prover::TermId X = Pool[Pick(Pool.size())];
    prover::TermId Y = Pool[Pick(Pool.size())];
    switch (Pick(6)) {
    case 0:
      return prover::fEq(X, Y);
    case 1:
      return prover::fNe(X, Y);
    case 2:
      return prover::fLe(X, Y);
    case 3:
      return prover::fLt(X, Y);
    case 4:
      return prover::fGe(X, Y);
    default:
      return prover::fGt(X, Y);
    }
  };

  // Quantified axioms come from fixed templates whose inferred triggers
  // cover their variables (the generator only randomizes which are on).
  if (Pick(2)) {
    prover::TermId V = A.var("x");
    P.addAxiom("mono",
               prover::fForall({"x"}, prover::fLe(A.app("f", {V}),
                                                  A.app("g", {V}))));
  }
  if (Pick(2)) {
    prover::TermId V = A.var("y");
    P.addAxiom("idem",
               prover::fForall({"y"},
                               prover::fEq(A.app("f", {A.app("f", {V})}),
                                           A.app("f", {V}))));
  }
  if (Pick(2))
    P.addArithmeticSignAxioms();

  size_t Hyps = 1 + Pick(4);
  for (size_t I = 0; I < Hyps; ++I) {
    switch (Pick(4)) {
    case 0:
      P.addHypothesis(prover::fOr({RandomLit(), RandomLit()}));
      break;
    case 1:
      P.addHypothesis(prover::fImplies(RandomLit(), RandomLit()));
      break;
    default:
      P.addHypothesis(RandomLit());
      break;
    }
  }

  prover::FormulaPtr Goal = Pick(3) == 0
                                ? prover::fImplies(RandomLit(), RandomLit())
                                : RandomLit();
  return P.prove(Goal);
}

TEST(DifferentialProver, EnginesAgreeOnRandomizedSessions) {
  unsigned Proved = 0, Unknown = 0;
  for (unsigned Seed = 0; Seed < 100; ++Seed) {
    prover::ProofResult Inc =
        runEngineSession(Seed, prover::EngineKind::Incremental);
    prover::ProofResult Ref =
        runEngineSession(Seed, prover::EngineKind::Reference);
    EXPECT_EQ(Inc, Ref) << "engines diverged on seed " << Seed;
    Proved += Inc == prover::ProofResult::Proved;
    Unknown += Inc == prover::ProofResult::Unknown;
  }
  // The generator must exercise both verdicts or the comparison is vacuous.
  EXPECT_GT(Proved, 0u);
  EXPECT_GT(Unknown, 0u);
}

TEST(DifferentialProver, EnginesAgreeOnBuiltinObligations) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadAllBuiltinQualifiers(Quals, Diags));

  prover::ProverOptions Inc;
  Inc.Engine = prover::EngineKind::Incremental;
  prover::ProverOptions Ref;
  Ref.Engine = prover::EngineKind::Reference;

  soundness::SoundnessChecker IncSC(Quals, Inc);
  std::vector<soundness::SoundnessReport> IncReports = IncSC.checkAll();
  soundness::SoundnessChecker RefSC(Quals, Ref);
  std::vector<soundness::SoundnessReport> RefReports = RefSC.checkAll();

  ASSERT_EQ(IncReports.size(), RefReports.size());
  for (size_t I = 0; I < IncReports.size(); ++I)
    expectReportsMatch(RefReports[I], IncReports[I]);
}

} // namespace
