//===- test_differential.cpp - Sequential vs parallel differential tests --===//
//
// The parallel pipeline's contract is behavioral equivalence: for any job
// count, `stqc check --jobs N` must produce the same diagnostics as the
// sequential checker, and a prover answer replayed from the memoized cache
// must match a fresh re-proof of the same obligation. This harness checks
// both over randomized workloads with fixed seeds, using the fuzz library's
// generators (src/fuzz) — the same ones the stq-fuzz campaign drives.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Parallel.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/ProverSessionGen.h"
#include "prover/ProverCache.h"
#include "qual/Builtins.h"
#include "soundness/Soundness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

using namespace stq;

namespace {

/// One Mixed-mode program from the fuzz generator: front-end-clean, with
/// a deliberate blend of derivable and underivable qualified terms so the
/// checker produces both accepted declarations and diagnostics.
std::string mixedProgram(uint64_t Seed) {
  fuzz::Rng R(Seed);
  fuzz::ProgramGenOptions Opts;
  Opts.GenMode = fuzz::ProgramGenOptions::Mode::Mixed;
  return fuzz::generateProgram(R, Opts);
}

/// Renders a diagnostic as "line:col:severity:message" for comparison.
std::string render(const Diagnostic &D) {
  return std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col) + ":" +
         std::to_string(static_cast<int>(D.Severity)) + ":" + D.Phase + ":" +
         D.Message;
}

std::vector<std::string> renderAll(const DiagnosticEngine &Diags) {
  std::vector<std::string> Out;
  for (const Diagnostic &D : Diags.diagnostics())
    Out.push_back(render(D));
  return Out;
}

struct CheckOutcome {
  std::vector<std::string> Diags;
  unsigned QualErrors = 0;
  size_t RuntimeChecks = 0;
  size_t Failures = 0;
};

CheckOutcome runCheck(const std::string &Source, unsigned Jobs) {
  CheckOutcome Out;
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  EXPECT_TRUE(
      qual::loadBuiltinQualifiers(fuzz::programQualifiers(), Quals, Diags));
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Result =
      checker::checkSourceParallel(Source, Quals, Diags, Prog, {}, Jobs);
  EXPECT_FALSE(Diags.hasErrors()) << "generator produced invalid source:\n"
                                  << Source;
  Out.Diags = renderAll(Diags);
  Out.QualErrors = Result.QualErrors;
  Out.RuntimeChecks = Result.RuntimeChecks.size();
  Out.Failures = Result.Failures.size();
  return Out;
}

//===----------------------------------------------------------------------===//
// Checker differential: --jobs 4 vs sequential
//===----------------------------------------------------------------------===//

TEST(DifferentialChecker, RandomProgramsParallelMatchesSequential) {
  for (uint64_t Seed = 0; Seed < 25; ++Seed) {
    std::string Source = mixedProgram(Seed);
    CheckOutcome Seq = runCheck(Source, 1);
    CheckOutcome Par = runCheck(Source, 4);

    // The contract is byte-identical output in the same order, which is
    // strictly stronger than the sorted comparison; check the exact
    // sequence first so ordering bugs are not masked.
    EXPECT_EQ(Seq.Diags, Par.Diags) << "seed " << Seed << "\n" << Source;

    // And the location-sorted comparison the harness specifies, so a
    // future relaxation of the ordering contract still gets content
    // equality checked.
    std::vector<std::string> SeqSorted = Seq.Diags, ParSorted = Par.Diags;
    std::sort(SeqSorted.begin(), SeqSorted.end());
    std::sort(ParSorted.begin(), ParSorted.end());
    EXPECT_EQ(SeqSorted, ParSorted) << "seed " << Seed;

    EXPECT_EQ(Seq.QualErrors, Par.QualErrors) << "seed " << Seed;
    EXPECT_EQ(Seq.RuntimeChecks, Par.RuntimeChecks) << "seed " << Seed;
    EXPECT_EQ(Seq.Failures, Par.Failures) << "seed " << Seed;
  }
}

TEST(DifferentialChecker, JobSweepIsInvariant) {
  // One program, every job count: all outputs identical to --jobs 1.
  std::string Source = mixedProgram(12345);
  CheckOutcome Base = runCheck(Source, 1);
  EXPECT_GT(Base.QualErrors, 0u)
      << "generator should plant qualifier errors; got none:\n" << Source;
  for (unsigned Jobs : {2u, 3u, 4u, 8u, 16u}) {
    CheckOutcome Out = runCheck(Source, Jobs);
    EXPECT_EQ(Base.Diags, Out.Diags) << "jobs " << Jobs;
    EXPECT_EQ(Base.QualErrors, Out.QualErrors) << "jobs " << Jobs;
  }
}

TEST(DifferentialChecker, ParallelEntryMatchesCheckSource) {
  // The parallel front end (parse/sema/lower) must match checkSource's.
  std::string Source = mixedProgram(777);

  DiagnosticEngine DiagsA;
  qual::QualifierSet QualsA;
  ASSERT_TRUE(
      qual::loadBuiltinQualifiers(fuzz::programQualifiers(), QualsA, DiagsA));
  std::unique_ptr<cminus::Program> ProgA;
  checker::CheckResult A =
      checker::checkSource(Source, QualsA, DiagsA, ProgA);

  CheckOutcome B = runCheck(Source, 4);
  EXPECT_EQ(renderAll(DiagsA), B.Diags);
  EXPECT_EQ(A.QualErrors, B.QualErrors);
}

//===----------------------------------------------------------------------===//
// Prover cache differential: replayed answers vs fresh re-proofs
//===----------------------------------------------------------------------===//

/// Every builtin qualifier with a soundness invariant, checked with and
/// without the cache; verdicts must agree obligation-by-obligation.
void expectReportsMatch(const soundness::SoundnessReport &Fresh,
                        const soundness::SoundnessReport &Cached) {
  ASSERT_EQ(Fresh.Obligations.size(), Cached.Obligations.size())
      << Fresh.Qual;
  for (size_t I = 0; I < Fresh.Obligations.size(); ++I) {
    const soundness::Obligation &F = Fresh.Obligations[I];
    const soundness::Obligation &C = Cached.Obligations[I];
    EXPECT_EQ(F.Qual, C.Qual);
    EXPECT_EQ(F.Kind, C.Kind) << F.Qual << " #" << I;
    EXPECT_EQ(F.Description, C.Description) << F.Qual << " #" << I;
    EXPECT_EQ(F.Result, C.Result) << F.Qual << ": " << F.Description;
  }
}

TEST(DifferentialProver, CachedAnswersMatchFreshReproofs) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadBuiltinQualifiers(
      {"pos", "neg", "nonzero", "nonnull", "tainted", "untainted"}, Quals,
      Diags));

  // Fresh run, no cache: the ground truth.
  soundness::SoundnessChecker Fresh(Quals);
  std::vector<soundness::SoundnessReport> FreshReports = Fresh.checkAll();

  // Cold run populates the cache, warm run replays every answer.
  prover::ProverCache Cache;
  soundness::SoundnessChecker Cold(Quals, {}, nullptr, &Cache);
  std::vector<soundness::SoundnessReport> ColdReports = Cold.checkAll();
  soundness::SoundnessChecker Warm(Quals, {}, nullptr, &Cache);
  std::vector<soundness::SoundnessReport> WarmReports = Warm.checkAll(4);

  ASSERT_EQ(FreshReports.size(), ColdReports.size());
  ASSERT_EQ(FreshReports.size(), WarmReports.size());
  unsigned Replayed = 0;
  for (size_t I = 0; I < FreshReports.size(); ++I) {
    expectReportsMatch(FreshReports[I], ColdReports[I]);
    expectReportsMatch(FreshReports[I], WarmReports[I]);
    for (const soundness::Obligation &O : WarmReports[I].Obligations) {
      EXPECT_TRUE(O.FromCache) << O.Qual << ": " << O.Description;
      Replayed += O.FromCache;
    }
  }
  EXPECT_GT(Replayed, 0u);

  prover::CacheStats CS = Cache.stats();
  EXPECT_EQ(CS.Hits, Replayed);
  EXPECT_EQ(CS.Misses, CS.Insertions);
  EXPECT_GT(CS.hitRate(), 0.0);
}

TEST(DifferentialProver, CacheIsJobCountInvariant) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(
      qual::loadBuiltinQualifiers({"pos", "neg", "nonzero"}, Quals, Diags));

  // Populate sequentially; replay in parallel — and vice versa.
  for (unsigned PrimeJobs : {1u, 4u}) {
    prover::ProverCache Cache;
    soundness::SoundnessChecker Prime(Quals, {}, nullptr, &Cache);
    std::vector<soundness::SoundnessReport> A = Prime.checkAll(PrimeJobs);
    soundness::SoundnessChecker Replay(Quals, {}, nullptr, &Cache);
    std::vector<soundness::SoundnessReport> B =
        Replay.checkAll(PrimeJobs == 1 ? 4 : 1);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I < A.size(); ++I)
      expectReportsMatch(A[I], B[I]);
    EXPECT_EQ(Cache.stats().Hits, Cache.stats().Misses);
  }
}

//===----------------------------------------------------------------------===//
// Engine differential: incremental trail-based core vs reference recursion
//===----------------------------------------------------------------------===//

TEST(DifferentialProver, EnginesAgreeOnRandomizedSessions) {
  // fuzz::runProverSession builds the session deterministically from the
  // seed, so both engines see byte-identical axioms, hypotheses, and goal.
  unsigned Proved = 0, Unknown = 0;
  for (unsigned Seed = 0; Seed < 100; ++Seed) {
    prover::ProofResult Inc =
        fuzz::runProverSession(Seed, prover::EngineKind::Incremental);
    prover::ProofResult Ref =
        fuzz::runProverSession(Seed, prover::EngineKind::Reference);
    EXPECT_EQ(Inc, Ref) << "engines diverged on seed " << Seed;
    Proved += Inc == prover::ProofResult::Proved;
    Unknown += Inc == prover::ProofResult::Unknown;
  }
  // The generator must exercise both verdicts or the comparison is vacuous.
  EXPECT_GT(Proved, 0u);
  EXPECT_GT(Unknown, 0u);
}

TEST(DifferentialProver, EnginesAgreeOnBuiltinObligations) {
  DiagnosticEngine Diags;
  qual::QualifierSet Quals;
  ASSERT_TRUE(qual::loadAllBuiltinQualifiers(Quals, Diags));

  prover::ProverOptions Inc;
  Inc.Engine = prover::EngineKind::Incremental;
  prover::ProverOptions Ref;
  Ref.Engine = prover::EngineKind::Reference;

  soundness::SoundnessChecker IncSC(Quals, Inc);
  std::vector<soundness::SoundnessReport> IncReports = IncSC.checkAll();
  soundness::SoundnessChecker RefSC(Quals, Ref);
  std::vector<soundness::SoundnessReport> RefReports = RefSC.checkAll();

  ASSERT_EQ(IncReports.size(), RefReports.size());
  for (size_t I = 0; I < IncReports.size(); ++I)
    expectReportsMatch(RefReports[I], IncReports[I]);
}

} // namespace
