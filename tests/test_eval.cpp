//===- test_eval.cpp - Tests for the paper-table replication harness ------===//
//
// Holds the multi-file §6 corpora (src/workloads corpus generators checked
// through src/eval) equal to the legacy single-TU transcriptions on every
// Table 1/Table 2 column, verdict, and diagnostic — the transcriptions are
// oracles only from here on. Also covers the stq-eval-row-v1 wire format,
// the canonical table/JSON renderings, and the golden diff.
//
//===----------------------------------------------------------------------===//

#include "eval/PaperEval.h"
#include "workloads/AnnotationDriver.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::eval;
using namespace stq::workloads;

namespace {

EvalRow evalCorpus(const CorpusProgram &C, unsigned Jobs = 1) {
  SessionOptions Base;
  Base.Jobs = Jobs;
  ProgramSpec Spec = specFromCorpus(C);
  EvalRow Row = evalProgram(Spec, Base);
  EXPECT_TRUE(Row.CheckOk) << C.Name;
  return Row;
}

/// The diagnostic payload after its source location: split corpora
/// attribute lines to corpus files while the flat transcription uses its
/// own line numbers, so equivalence is over the message text.
std::vector<std::string> messageTails(const std::vector<std::string> &Diags) {
  std::vector<std::string> Tails;
  for (const std::string &D : Diags) {
    size_t At = D.find("]: ");
    Tails.push_back(At == std::string::npos ? D : D.substr(At + 3));
  }
  return Tails;
}

/// Checks the corpus's single-TU transcription (every header and unit
/// concatenated, includes stripped) through the same pipeline for verdict
/// comparison. C.Legacy is the *unannotated* source the fixpoint driver
/// anneals; the annotated flat form is the verdict oracle.
EvalRow evalFlattened(const CorpusProgram &C) {
  ProgramSpec Spec;
  Spec.Name = C.Name + "-flat";
  Spec.Kind = C.Kind;
  Spec.Units = {"flattened.c"};
  Spec.Files["flattened.c"] = C.Prog.Flattened;
  Spec.IncludeDirs = {"."};
  Spec.QualFileText = C.QualFile;
  SessionOptions Base;
  EvalRow Row = evalProgram(Spec, Base);
  EXPECT_TRUE(Row.CheckOk) << Spec.Name;
  return Row;
}

//===----------------------------------------------------------------------===//
// Table 1: the multi-file grep-dfa corpus vs the legacy fixpoint row
//===----------------------------------------------------------------------===//

TEST(EvalCorpus, GrepDfaMatchesLegacyNonnullRow) {
  CorpusProgram C = makeGrepDfaCorpus();
  EvalRow Row = evalCorpus(C);
  // The legacy transcription re-derives its annotations iteratively; the
  // corpus carries them as written. Both must land on the same row.
  Table1Row Legacy = runNonnullExperiment(C.Legacy);
  EXPECT_EQ(Row.Annotations, Legacy.Annotations);
  EXPECT_EQ(Row.Casts, Legacy.Casts);
  EXPECT_EQ(Row.Derefs, Legacy.Dereferences);
  EXPECT_EQ(Row.Errors, Legacy.Errors);
  EXPECT_EQ(Row.Errors, C.ExpectedErrors);
  EXPECT_EQ(Row.ExitCode, 0);
  EXPECT_TRUE(Row.Diagnostics.empty());
}

TEST(EvalCorpus, GrepDfaPublishedColumns) {
  EvalRow Row = evalCorpus(makeGrepDfaCorpus());
  EXPECT_EQ(Row.Files, 5u); // dfa.h + 4 units; no lib/ headers.
  EXPECT_EQ(Row.Annotations, 110u);
  EXPECT_EQ(Row.Casts, 62u);
  EXPECT_EQ(Row.Derefs, 884u);
  EXPECT_EQ(Row.AssignChecks, 110u);
  EXPECT_EQ(Row.RuntimeChecks, 62u);
}

//===----------------------------------------------------------------------===//
// Table 2: the taint corpora vs the legacy untainted experiment
//===----------------------------------------------------------------------===//

TEST(EvalCorpus, TaintCorporaMatchLegacyUntaintedRows) {
  for (const CorpusProgram &C :
       {makeBftpdCorpus(), makeMingettyCorpus(), makeIdentdCorpus()}) {
    EvalRow Row = evalCorpus(C);
    Table2Row Legacy = runUntaintedExperiment(C.Legacy);
    EXPECT_EQ(Row.PrintfCalls, Legacy.PrintfCalls) << C.Name;
    EXPECT_EQ(Row.Annotations, Legacy.Annotations) << C.Name;
    EXPECT_EQ(Row.Casts, Legacy.Casts) << C.Name;
    EXPECT_EQ(Row.Errors, Legacy.Errors) << C.Name;
    EXPECT_EQ(Row.Errors, C.ExpectedErrors) << C.Name;
  }
}

TEST(EvalCorpus, BftpdExploitSurvivesTheSplit) {
  EvalRow Row = evalCorpus(makeBftpdCorpus());
  EXPECT_EQ(Row.Errors, 1u);
  EXPECT_EQ(Row.ExitCode, 1);
  ASSERT_EQ(Row.Diagnostics.size(), 1u);
  // The directory-listing hole: a dirent name reaching a format sink.
  EXPECT_NE(Row.Diagnostics[0].find("list.c:"), std::string::npos);
  EXPECT_NE(Row.Diagnostics[0].find("'untainted'"), std::string::npos);
  EXPECT_NE(Row.Diagnostics[0].find("sendstrf"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Differential: every split corpus is verdict- and diagnostic-equivalent
// to its single-TU transcription
//===----------------------------------------------------------------------===//

TEST(EvalCorpus, SplitEquivalentToSingleTuTranscription) {
  for (CorpusProgram &C : makeAllCorpora()) {
    EvalRow Split = evalCorpus(C);
    EvalRow Flat = evalFlattened(C);
    EXPECT_EQ(Split.Errors, Flat.Errors) << C.Name;
    EXPECT_EQ(Split.Derefs, Flat.Derefs) << C.Name;
    EXPECT_EQ(Split.AssignChecks, Flat.AssignChecks) << C.Name;
    EXPECT_EQ(Split.RuntimeChecks, Flat.RuntimeChecks) << C.Name;
    EXPECT_EQ(Split.ExitCode, Flat.ExitCode) << C.Name;
    EXPECT_EQ(messageTails(Split.Diagnostics), messageTails(Flat.Diagnostics))
        << C.Name;
  }
}

TEST(EvalCorpus, JobsCountDoesNotChangeTheRow) {
  for (CorpusProgram &C : makeAllCorpora()) {
    EvalRow J1 = evalCorpus(C, 1);
    EvalRow J4 = evalCorpus(C, 4);
    EXPECT_EQ(renderRow(J1), renderRow(J4)) << C.Name;
  }
}

//===----------------------------------------------------------------------===//
// Spec construction and lib/ exclusion
//===----------------------------------------------------------------------===//

TEST(EvalSpec, LibHeadersExcludedFromFileAndLineCounts) {
  CorpusProgram C = makeBftpdCorpus();
  ProgramSpec Spec = specFromCorpus(C);
  // The map ships everything (units, project headers, lib/ headers)...
  EXPECT_EQ(Spec.Files.size(), C.Prog.Units.size() + C.Prog.Headers.size());
  EXPECT_TRUE(Spec.Files.count("lib/stdio.h"));
  EXPECT_TRUE(Spec.Files.count("lib/dirent.h"));
  // ...but the table columns exclude the alternate library headers.
  EvalRow Row = evalCorpus(C);
  EXPECT_EQ(Row.Files, 5u); // 4 units + include/bftpd.h.
  unsigned AllLines = 0;
  for (const auto &[Path, Text] : Spec.Files)
    AllLines += countLines(Text);
  EXPECT_LT(Row.Lines, AllLines);
}

TEST(EvalSpec, AnnotationsInSharedHeadersCountOnce) {
  // sendstrf/bftpd_log annotated prototypes appear in include/bftpd.h and
  // as definitions in log.c; each is one annotation, not two.
  EvalRow Row = evalCorpus(makeBftpdCorpus());
  EXPECT_EQ(Row.Annotations, 2u);
}

//===----------------------------------------------------------------------===//
// Wire format and renderings
//===----------------------------------------------------------------------===//

TEST(EvalRowWire, RoundTripsThroughRenderAndParse) {
  EvalRow Row = evalCorpus(makeBftpdCorpus());
  std::string Wire = renderRow(Row);
  EvalRow Back;
  std::string Error;
  ASSERT_TRUE(parseRow(Wire, Back, Error)) << Error;
  EXPECT_EQ(renderRow(Back), Wire);
  EXPECT_EQ(Back.Name, Row.Name);
  EXPECT_EQ(Back.Diagnostics, Row.Diagnostics);
  EXPECT_EQ(Back.ExitCode, Row.ExitCode);
}

TEST(EvalRowWire, RejectsGarbageAndTruncation) {
  EvalRow Out;
  std::string Error;
  EXPECT_FALSE(parseRow("", Out, Error));
  EXPECT_FALSE(parseRow("not-a-row\nend\n", Out, Error));
  EXPECT_FALSE(parseRow("stq-eval-row-v1\nname x\n", Out, Error));
  EXPECT_NE(Error.find("truncated"), std::string::npos);
  EXPECT_FALSE(parseRow("stq-eval-row-v1\nbogus 1\nend\n", Out, Error));
  EXPECT_FALSE(parseRow("stq-eval-row-v1\nerrors many\nend\n", Out, Error));
}

TEST(EvalRender, TablesAreDeterministicAndTimingFree) {
  std::vector<EvalRow> Rows;
  for (CorpusProgram &C : makeAllCorpora())
    Rows.push_back(evalCorpus(C));
  std::string A = renderTables(Rows);
  for (EvalRow &R : Rows)
    R.Seconds += 1000.0; // Timing must never reach the canonical text.
  EXPECT_EQ(renderTables(Rows), A);
  EXPECT_NE(A.find("stq-eval-tables-v1"), std::string::npos);
  EXPECT_NE(A.find("Table 1 (nonnull)"), std::string::npos);
  EXPECT_NE(A.find("Table 2 (untainted)"), std::string::npos);
  EXPECT_NE(A.find("grep-dfa"), std::string::npos);

  std::string J = renderJson(Rows, /*Timings=*/false);
  EXPECT_EQ(J.find("seconds"), std::string::npos);
  EXPECT_NE(renderJson(Rows, /*Timings=*/true).find("seconds"),
            std::string::npos);
}

TEST(EvalRender, DiffGoldenPinpointsTheFirstDrift) {
  EXPECT_EQ(diffGolden("a\nb\n", "a\nb\n"), "");
  std::string D = diffGolden("a\nb\nc\n", "a\nX\nc\n");
  EXPECT_NE(D.find("line 2"), std::string::npos);
  EXPECT_NE(D.find("- b"), std::string::npos);
  EXPECT_NE(D.find("+ X"), std::string::npos);
  // Length mismatches show the trailing extra lines too.
  EXPECT_NE(diffGolden("a\n", "a\nb\n").find("+ b"), std::string::npos);
}

} // namespace
