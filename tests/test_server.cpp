//===- test_server.cpp - The stqd server subsystem ------------------------===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
// Covers the server stack bottom-up: the JSON codec, the stq-rpc-v1
// protocol, the bounded request queue, the shared TaskGroup pool, the
// shared invocation executor's byte-identity contract, and a real
// in-process daemon on a Unix-domain socket — including the warm-cache
// second request, >= 8 concurrent clients (run under TSan in CI), `busy`
// backpressure, and the graceful drain that persists the prover cache.
//
//===----------------------------------------------------------------------===//

#include "server/Exec.h"
#include "server/Protocol.h"
#include "server/RequestQueue.h"
#include "server/Server.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include "TestTempDir.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>
#include <vector>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// JSON codec
//===----------------------------------------------------------------------===//

TEST(Json, WriteScalars) {
  EXPECT_EQ(json::Value::null().write(), "null");
  EXPECT_EQ(json::Value::boolean(true).write(), "true");
  EXPECT_EQ(json::Value::boolean(false).write(), "false");
  EXPECT_EQ(json::Value::integer(-42).write(), "-42");
  EXPECT_EQ(json::Value::str("hi").write(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  // Control characters must be escaped: the RPC framing is one document
  // per line, so written output may never contain a literal newline.
  json::Value V = json::Value::str("a\"b\\c\nd\te\x01");
  std::string W = V.write();
  EXPECT_EQ(W, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
  EXPECT_EQ(W.find('\n'), std::string::npos);

  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(W, Back, Error)) << Error;
  EXPECT_EQ(Back.asString(), V.asString());
}

TEST(Json, ParseRoundtripObject) {
  json::Value Doc = json::Value::object();
  Doc.set("v", json::Value::str("stq-rpc-v1"));
  Doc.set("n", json::Value::integer(7));
  Doc.set("f", json::Value::boolean(false));
  json::Value Arr = json::Value::array();
  Arr.push(json::Value::str("a"));
  Arr.push(json::Value::integer(2));
  Doc.set("list", std::move(Arr));

  json::Value Back;
  std::string Error;
  ASSERT_TRUE(json::parse(Doc.write(), Back, Error)) << Error;
  // Member order is preserved, so encode(decode(x)) is stable.
  EXPECT_EQ(Back.write(), Doc.write());
  EXPECT_EQ(Back.getString("v"), "stq-rpc-v1");
  EXPECT_EQ(Back.getInt("n"), 7);
  EXPECT_FALSE(Back.getBool("f", true));
  ASSERT_NE(Back.get("list"), nullptr);
  EXPECT_EQ(Back.get("list")->elements().size(), 2u);
}

TEST(Json, ParseUnicodeEscapes) {
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("\"\\u00e9\\uD83D\\uDE00\"", V, Error)) << Error;
  EXPECT_EQ(V.asString(), "\xc3\xa9\xf0\x9f\x98\x80"); // é + 😀
}

TEST(Json, StrictParserRejectsGarbage) {
  json::Value V;
  std::string Error;
  EXPECT_FALSE(json::parse("", V, Error));
  EXPECT_FALSE(json::parse("{", V, Error));
  EXPECT_FALSE(json::parse("{\"a\":1,}", V, Error));
  EXPECT_FALSE(json::parse("[1,2] trailing", V, Error));
  EXPECT_FALSE(json::parse("'single'", V, Error));
  EXPECT_FALSE(json::parse("{\"a\" 1}", V, Error));
}

TEST(Json, NumbersIntVsDouble) {
  json::Value V;
  std::string Error;
  ASSERT_TRUE(json::parse("[3, -9, 2.5, 1e3]", V, Error)) << Error;
  ASSERT_EQ(V.elements().size(), 4u);
  EXPECT_TRUE(V.elements()[0].isInt());
  EXPECT_TRUE(V.elements()[1].isInt());
  EXPECT_FALSE(V.elements()[2].isInt());
  EXPECT_DOUBLE_EQ(V.elements()[2].asDouble(), 2.5);
  EXPECT_DOUBLE_EQ(V.elements()[3].asDouble(), 1000.0);
}

TEST(Json, RawEmbedsVerbatim) {
  json::Value Doc = json::Value::object();
  Doc.set("payload", json::Value::raw("{\"schema\":\"stq-metrics-v1\"}"));
  EXPECT_EQ(Doc.write(), "{\"payload\":{\"schema\":\"stq-metrics-v1\"}}");
}

//===----------------------------------------------------------------------===//
// stq-rpc-v1 protocol
//===----------------------------------------------------------------------===//

TEST(Protocol, RequestRoundtrip) {
  server::rpc::Request Req;
  Req.Id = "req-1";
  Req.Inv.Command = "check";
  Req.Inv.Source = "int pos x = 3;\n";
  Req.Inv.HasSource = true;
  Req.Inv.Session.Builtins = {"pos", "neg"};
  Req.Inv.Session.Jobs = 4;
  Req.Inv.Session.Checker.FlowSensitiveNarrowing = true;
  Req.Inv.Metrics = true;
  Req.Inv.MetricsFormat = metrics::Format::Json;
  Req.Inv.JsonDiagnostics = true;
  Req.Inv.Trace = true;

  std::string Line = server::rpc::encodeRequest(Req);
  EXPECT_EQ(Line.find('\n'), std::string::npos);

  server::rpc::Request Back;
  std::string Error;
  ASSERT_TRUE(server::rpc::parseRequest(Line, Back, Error)) << Error;
  EXPECT_EQ(Back.Id, "req-1");
  EXPECT_EQ(Back.Inv.Command, "check");
  EXPECT_TRUE(Back.Inv.HasSource);
  EXPECT_EQ(Back.Inv.Source, Req.Inv.Source);
  EXPECT_EQ(Back.Inv.Session.Builtins,
            (std::vector<std::string>{"pos", "neg"}));
  EXPECT_EQ(Back.Inv.Session.Jobs, 4u);
  EXPECT_TRUE(Back.Inv.Session.Checker.FlowSensitiveNarrowing);
  EXPECT_TRUE(Back.Inv.Metrics);
  EXPECT_EQ(Back.Inv.MetricsFormat, metrics::Format::Json);
  EXPECT_TRUE(Back.Inv.JsonDiagnostics);
  EXPECT_TRUE(Back.Inv.Trace);
}

TEST(Protocol, RecheckUnitOptionRoundtrip) {
  server::rpc::Request Req;
  Req.Inv.Command = "recheck";
  Req.Inv.Source = "int main() { return 0; }\n";
  Req.Inv.HasSource = true;
  Req.Inv.Session.IncrementalUnit = "editor:main.cmm";

  server::rpc::Request Back;
  std::string Error;
  ASSERT_TRUE(
      server::rpc::parseRequest(server::rpc::encodeRequest(Req), Back, Error))
      << Error;
  EXPECT_EQ(Back.Inv.Command, "recheck");
  EXPECT_EQ(Back.Inv.Session.IncrementalUnit, "editor:main.cmm");

  // Omitted unit parses to the default (one shared snapshot).
  server::rpc::Request Bare;
  Bare.Inv.Command = "recheck";
  Bare.Inv.Source = "int main() { return 0; }\n";
  Bare.Inv.HasSource = true;
  ASSERT_TRUE(
      server::rpc::parseRequest(server::rpc::encodeRequest(Bare), Back, Error))
      << Error;
  EXPECT_TRUE(Back.Inv.Session.IncrementalUnit.empty());

  // A non-string unit is a hard protocol error.
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v1\",\"command\":\"recheck\",\"source\":\"\","
      "\"options\":{\"unit\":7}}",
      Back, Error));
  EXPECT_NE(Error.find("unit"), std::string::npos) << Error;
}

TEST(Protocol, InferOptionsRoundtrip) {
  server::rpc::Request Req;
  Req.Inv.Command = "infer";
  Req.Inv.Source = "int f() { int x = 3; return x; }\n";
  Req.Inv.HasSource = true;
  Req.Inv.Session.Infer.Engine = checker::InferenceEngine::Fixpoint;
  Req.Inv.Session.Infer.Scope = checker::InferenceScope::LocalsOnly;
  Req.Inv.Session.Infer.MaxSuggestions = 9;
  Req.Inv.Session.Infer.Apply = true;
  Req.Inv.InferJson = true;

  server::rpc::Request Back;
  std::string Error;
  ASSERT_TRUE(
      server::rpc::parseRequest(server::rpc::encodeRequest(Req), Back, Error))
      << Error;
  EXPECT_EQ(Back.Inv.Command, "infer");
  EXPECT_EQ(Back.Inv.Session.Infer.Engine, checker::InferenceEngine::Fixpoint);
  EXPECT_EQ(Back.Inv.Session.Infer.Scope, checker::InferenceScope::LocalsOnly);
  EXPECT_EQ(Back.Inv.Session.Infer.MaxSuggestions, 9u);
  EXPECT_TRUE(Back.Inv.Session.Infer.Apply);
  EXPECT_TRUE(Back.Inv.InferJson);

  // Defaults encode to no infer_* keys at all and parse back to defaults.
  server::rpc::Request Bare;
  Bare.Inv.Command = "infer";
  Bare.Inv.Source = "int x = 1;\n";
  Bare.Inv.HasSource = true;
  std::string Line = server::rpc::encodeRequest(Bare);
  EXPECT_EQ(Line.find("infer_"), std::string::npos) << Line;
  ASSERT_TRUE(server::rpc::parseRequest(Line, Back, Error)) << Error;
  EXPECT_EQ(Back.Inv.Session.Infer.Engine,
            checker::InferenceEngine::Constraints);
  EXPECT_EQ(Back.Inv.Session.Infer.Scope, checker::InferenceScope::Program);
  EXPECT_EQ(Back.Inv.Session.Infer.MaxSuggestions, 0u);
  EXPECT_FALSE(Back.Inv.Session.Infer.Apply);
  EXPECT_FALSE(Back.Inv.InferJson);

  // Unknown engine / scope names are hard protocol errors.
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v1\",\"command\":\"infer\",\"source\":\"\","
      "\"options\":{\"infer_engine\":\"magic\"}}",
      Back, Error));
  EXPECT_NE(Error.find("magic"), std::string::npos) << Error;
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v1\",\"command\":\"infer\",\"source\":\"\","
      "\"options\":{\"infer_scope\":\"galaxy\"}}",
      Back, Error));
  EXPECT_NE(Error.find("galaxy"), std::string::npos) << Error;
}

TEST(Protocol, RequestVersionIsMandatory) {
  server::rpc::Request Req;
  std::string Error;
  EXPECT_FALSE(server::rpc::parseRequest("{\"command\":\"check\"}", Req,
                                         Error));
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v999\",\"command\":\"check\"}", Req, Error));
  EXPECT_NE(Error.find("stq-rpc-v999"), std::string::npos) << Error;
}

TEST(Protocol, RequestRejectsUnknownCommandAndOption) {
  server::rpc::Request Req;
  std::string Error;
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v1\",\"command\":\"explode\"}", Req, Error));
  EXPECT_NE(Error.find("explode"), std::string::npos);
  EXPECT_FALSE(server::rpc::parseRequest(
      "{\"v\":\"stq-rpc-v1\",\"command\":\"check\","
      "\"options\":{\"bogus\":1}}",
      Req, Error));
  EXPECT_NE(Error.find("bogus"), std::string::npos);
  EXPECT_FALSE(server::rpc::parseRequest("not json at all", Req, Error));
}

TEST(Protocol, ResponseRoundtrip) {
  server::rpc::Response Resp;
  Resp.Id = "req-9";
  Resp.Status = "ok";
  Resp.ExitCode = 1;
  Resp.Out = "qualifier errors: 1\n";
  Resp.Err = "error: ...\nsecond line\n";
  Resp.TraceJson = "{\"traceEvents\":[]}";

  std::string Line = server::rpc::encodeResponse(Resp);
  EXPECT_EQ(Line.find('\n'), std::string::npos);

  server::rpc::Response Back;
  std::string Error;
  ASSERT_TRUE(server::rpc::parseResponse(Line, Back, Error)) << Error;
  EXPECT_EQ(Back.Id, "req-9");
  EXPECT_EQ(Back.Status, "ok");
  EXPECT_EQ(Back.ExitCode, 1);
  EXPECT_EQ(Back.Out, Resp.Out);
  EXPECT_EQ(Back.Err, Resp.Err);
  EXPECT_EQ(Back.TraceJson, Resp.TraceJson);
}

TEST(Protocol, VersionTextNamesEveryFormat) {
  std::string V = server::rpc::versionText("stqc");
  EXPECT_NE(V.find("stq-rpc-v1"), std::string::npos);
  EXPECT_NE(V.find("stq-metrics-v1"), std::string::npos);
  EXPECT_NE(V.find("stq-diagnostics-v1"), std::string::npos);
  EXPECT_NE(V.find("stq-prover-cache-v1"), std::string::npos);
  EXPECT_NE(V.find("stq-inference-v1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// RequestQueue
//===----------------------------------------------------------------------===//

TEST(RequestQueue, BoundedPushRejectsWhenFull) {
  server::RequestQueue Q(2);
  EXPECT_TRUE(Q.push(UnixStream()));
  EXPECT_TRUE(Q.push(UnixStream()));
  EXPECT_FALSE(Q.push(UnixStream())); // explicit backpressure, no blocking
  EXPECT_EQ(Q.depth(), 2u);

  UnixStream S;
  EXPECT_TRUE(Q.pop(S));
  EXPECT_TRUE(Q.push(UnixStream())); // slot freed
}

TEST(RequestQueue, CloseDrainsThenStops) {
  server::RequestQueue Q(4);
  EXPECT_TRUE(Q.push(UnixStream()));
  EXPECT_TRUE(Q.push(UnixStream()));
  Q.close();
  EXPECT_FALSE(Q.push(UnixStream())); // no new work after close
  UnixStream S;
  EXPECT_TRUE(Q.pop(S)); // queued connections still drain
  EXPECT_TRUE(Q.pop(S));
  EXPECT_FALSE(Q.pop(S)); // then pop reports shutdown
}

TEST(RequestQueue, CloseWakesBlockedWorkers) {
  server::RequestQueue Q(4);
  std::atomic<int> Exited{0};
  std::vector<std::thread> Workers;
  for (int I = 0; I < 3; ++I)
    Workers.emplace_back([&] {
      UnixStream S;
      while (Q.pop(S)) {
      }
      Exited.fetch_add(1);
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Q.close();
  for (std::thread &W : Workers)
    W.join();
  EXPECT_EQ(Exited.load(), 3);
}

//===----------------------------------------------------------------------===//
// Shared pool: TaskGroup
//===----------------------------------------------------------------------===//

TEST(TaskGroup, WaitCoversOnlyOwnTasks) {
  // Two groups on one pool: each wait() returns when *its* tasks are done,
  // even though the pool's global pending count includes the other group
  // (the property that lets concurrent server requests share one pool).
  ThreadPool Pool(2);
  std::atomic<int> SlowDone{0}, FastDone{0};
  TaskGroup Slow(Pool), Fast(Pool);
  std::atomic<bool> Release{false};
  Slow.submit([&] {
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    SlowDone.fetch_add(1);
  });
  for (int I = 0; I < 8; ++I)
    Fast.submit([&] { FastDone.fetch_add(1); });
  Fast.wait();
  EXPECT_EQ(FastDone.load(), 8);
  EXPECT_EQ(SlowDone.load(), 0); // the slow group is still running
  Release.store(true, std::memory_order_release);
  Slow.wait();
  EXPECT_EQ(SlowDone.load(), 1);
}

TEST(TaskGroup, ParallelForOnSharedPool) {
  ThreadPool Pool(3);
  std::vector<int> Values(64, 0);
  ThreadPool::PoolStats Stats;
  parallelFor(4, Values.size(), [&](size_t I) { Values[I] = static_cast<int>(I); },
              &Stats, &Pool);
  for (size_t I = 0; I < Values.size(); ++I)
    EXPECT_EQ(Values[I], static_cast<int>(I));
  EXPECT_EQ(Stats.Executed, Values.size());
}

//===----------------------------------------------------------------------===//
// executeInvocation: byte-identity between owned and shared state
//===----------------------------------------------------------------------===//

server::Invocation checkInvocation(const std::string &Source) {
  server::Invocation Inv;
  Inv.Command = "check";
  Inv.Source = Source;
  Inv.HasSource = true;
  return Inv;
}

TEST(Exec, SharedStateKeepsBytesIdentical) {
  // The differential contract: a request answered with the server's warm
  // shared state produces exactly the bytes of an owned one-shot run.
  server::Invocation Inv = checkInvocation(
      "int f(int pos a) { int pos b = a * a; return b; }\n"
      "int main() { int pos x = 3; return f(x); }\n");
  server::ExecResult OneShot = server::executeInvocation(Inv);

  Session Boot{SessionOptions{}};
  ASSERT_TRUE(Boot.loadQualifiers());
  prover::ProverCache Cache;
  ThreadPool Pool(2);
  server::SharedContext Ctx;
  Ctx.Cache = &Cache;
  Ctx.Qualifiers = &Boot.qualifiers();
  Ctx.Pool = &Pool;

  for (int Round = 0; Round < 2; ++Round) {
    server::ExecResult Shared = server::executeInvocation(Inv, Ctx);
    EXPECT_EQ(Shared.Out, OneShot.Out);
    EXPECT_EQ(Shared.Err, OneShot.Err);
    EXPECT_EQ(Shared.ExitCode, OneShot.ExitCode);
  }
}

TEST(Exec, RecheckWarmEngineMatchesOneShotCheckBytes) {
  // The incremental differential at the exec layer: a recheck answered
  // from a warm shared engine must produce exactly the bytes of a cold
  // one-shot `check` — including on a program with a qualifier warning.
  const std::string Source = "int pos x = 0 - 1;\n"
                             "int f(int a) { return a + x; }\n"
                             "int main() { return f(2); }\n";
  server::ExecResult OneShot =
      server::executeInvocation(checkInvocation(Source));

  checker::incremental::Engine Engine;
  server::SharedContext Ctx;
  Ctx.Incremental = &Engine;
  server::Invocation Inv = checkInvocation(Source);
  Inv.Command = "recheck";
  Inv.Session.IncrementalUnit = "exec-test";
  for (int Round = 0; Round < 3; ++Round) {
    server::ExecResult Warm = server::executeInvocation(Inv, Ctx);
    EXPECT_EQ(Warm.Out, OneShot.Out) << "round " << Round;
    EXPECT_EQ(Warm.Err, OneShot.Err) << "round " << Round;
    EXPECT_EQ(Warm.ExitCode, OneShot.ExitCode) << "round " << Round;
  }
  EXPECT_GT(Engine.entries(), 0u);
}

TEST(Exec, FailingCheckKeepsBytesIdentical) {
  server::Invocation Inv = checkInvocation("int pos x = -1;\n");
  Inv.Session.Builtins = {"pos", "neg"};
  server::ExecResult OneShot = server::executeInvocation(Inv);
  EXPECT_EQ(OneShot.ExitCode, 1);

  // The invocation asks for its own builtins, so the shared default set
  // must NOT be used — but cache and pool still are.
  Session Boot{SessionOptions{}};
  ASSERT_TRUE(Boot.loadQualifiers());
  prover::ProverCache Cache;
  server::SharedContext Ctx;
  Ctx.Cache = &Cache;
  Ctx.Qualifiers = &Boot.qualifiers();
  server::ExecResult Shared = server::executeInvocation(Inv, Ctx);
  EXPECT_EQ(Shared.Out, OneShot.Out);
  EXPECT_EQ(Shared.Err, OneShot.Err);
  EXPECT_EQ(Shared.ExitCode, OneShot.ExitCode);
}

TEST(Exec, ProveSharedCacheMatchesVerdictsAndDiagnostics) {
  // prove output embeds wall-clock timings, so the byte contract is on
  // diagnostics + exit code; verdict lines are checked structurally.
  server::Invocation Inv;
  Inv.Command = "prove";
  Inv.Session.Builtins = {"pos", "neg"};

  server::ExecResult OneShot = server::executeInvocation(Inv);
  prover::ProverCache Cache;
  server::SharedContext Ctx;
  Ctx.Cache = &Cache;
  server::ExecResult Cold = server::executeInvocation(Inv, Ctx);
  server::ExecResult Warm = server::executeInvocation(Inv, Ctx);
  EXPECT_EQ(Cold.ExitCode, OneShot.ExitCode);
  EXPECT_EQ(Warm.ExitCode, OneShot.ExitCode);
  EXPECT_EQ(Cold.Err, OneShot.Err);
  EXPECT_EQ(Warm.Err, OneShot.Err);
  // The warm run replayed from the shared cache.
  EXPECT_GT(Cache.stats().Hits, 0u);
}

TEST(Exec, InferSharedStateKeepsBytesIdentical) {
  // infer answered with the daemon's warm shared state (prover cache +
  // pool) must produce exactly the one-shot bytes, in both renderings.
  server::Invocation Inv;
  Inv.Command = "infer";
  Inv.Source = "int f() { int x = 3; int y = x; return y; }\n";
  Inv.HasSource = true;
  Inv.Session.Builtins = {"pos", "neg", "nonneg", "nonzero"};

  Session Boot{SessionOptions{}};
  ASSERT_TRUE(Boot.loadQualifiers());
  prover::ProverCache Cache;
  ThreadPool Pool(2);
  server::SharedContext Ctx;
  Ctx.Cache = &Cache;
  Ctx.Qualifiers = &Boot.qualifiers();
  Ctx.Pool = &Pool;

  for (bool Json : {false, true}) {
    Inv.InferJson = Json;
    server::ExecResult OneShot = server::executeInvocation(Inv);
    EXPECT_EQ(OneShot.ExitCode, 0);
    for (int Round = 0; Round < 2; ++Round) {
      server::ExecResult Shared = server::executeInvocation(Inv, Ctx);
      EXPECT_EQ(Shared.Out, OneShot.Out) << "json=" << Json;
      EXPECT_EQ(Shared.Err, OneShot.Err) << "json=" << Json;
      EXPECT_EQ(Shared.ExitCode, OneShot.ExitCode) << "json=" << Json;
    }
  }
}

TEST(Exec, InferJsonIsOneParseableSchemaDocument) {
  server::Invocation Inv;
  Inv.Command = "infer";
  Inv.Source = "int f() { int x = 3; return x; }\n";
  Inv.HasSource = true;
  Inv.Session.Builtins = {"pos", "neg", "nonneg", "nonzero"};
  Inv.InferJson = true;
  server::ExecResult R = server::executeInvocation(Inv);
  ASSERT_EQ(R.ExitCode, 0) << R.Err;

  // One line: the RPC framing is one document per line.
  ASSERT_FALSE(R.Out.empty());
  EXPECT_EQ(R.Out.find('\n'), R.Out.size() - 1) << R.Out;

  json::Value Doc;
  std::string Error;
  ASSERT_TRUE(json::parse(R.Out.substr(0, R.Out.size() - 1), Doc, Error))
      << Error;
  EXPECT_EQ(Doc.getString("schema"), "stq-inference-v1");
  EXPECT_EQ(Doc.getString("engine"), "constraints");
  EXPECT_EQ(Doc.getString("scope"), "program");
  ASSERT_NE(Doc.get("suggestions"), nullptr);
  ASSERT_FALSE(Doc.get("suggestions")->elements().empty());
  const json::Value &First = Doc.get("suggestions")->elements()[0];
  EXPECT_EQ(First.getString("var"), "x");
  EXPECT_EQ(First.getString("function"), "f");
  ASSERT_NE(Doc.get("stats"), nullptr);
  EXPECT_GT(Doc.get("stats")->getInt("constraints"), 0);
  EXPECT_FALSE(Doc.getBool("applied", true));
}

TEST(Exec, UnknownCommandAndMissingSource) {
  server::Invocation Inv;
  Inv.Command = "explode";
  server::ExecResult R = server::executeInvocation(Inv);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Err.find("unknown command"), std::string::npos);

  Inv.Command = "check";
  R = server::executeInvocation(Inv);
  EXPECT_EQ(R.ExitCode, 2);
  EXPECT_NE(R.Err.find("no input"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// The daemon end-to-end (in-process, over a real Unix socket)
//===----------------------------------------------------------------------===//

/// A running in-process server plus its serve() thread.
class ServerFixture {
public:
  explicit ServerFixture(server::ServerOptions Opts) {
    Srv = std::make_unique<server::Server>(std::move(Opts));
    std::string Error;
    Ok = Srv->start(Error);
    EXPECT_TRUE(Ok) << Error;
    if (Ok)
      Loop = std::thread([this] { ExitCode = Srv->serve(); });
  }
  ~ServerFixture() { stop(); }

  void stop() {
    if (Loop.joinable()) {
      Srv->requestShutdown();
      Loop.join();
    }
  }

  server::Server &server() { return *Srv; }
  int exitCode() const { return ExitCode; }
  bool ok() const { return Ok; }

private:
  std::unique_ptr<server::Server> Srv;
  std::thread Loop;
  int ExitCode = -1;
  bool Ok = false;
};

/// One client round-trip: connect, send \p Req, read the response.
bool roundTrip(const std::string &Socket, const server::rpc::Request &Req,
               server::rpc::Response &Resp, std::string &Error,
               int TimeoutMs = 30000) {
  UnixStream Conn;
  if (!Conn.connect(Socket, Error))
    return false;
  if (!Conn.writeAll(server::rpc::encodeRequest(Req) + "\n", Error))
    return false;
  std::string Line;
  if (!Conn.readLine(Line, 64u << 20, TimeoutMs, Error)) {
    if (Error.empty())
      Error = "connection closed before a response";
    return false;
  }
  return server::rpc::parseResponse(Line, Resp, Error);
}

TEST(ServerEndToEnd, CheckMatchesOneShotBytes) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Workers = 2;
  Opts.PoolThreads = 2;
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Req;
  Req.Inv = checkInvocation("int pos x = 3;\n");
  Req.Inv.Metrics = false;
  server::ExecResult OneShot = server::executeInvocation(Req.Inv);

  for (int Round = 0; Round < 3; ++Round) {
    server::rpc::Response Resp;
    std::string Error;
    ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, Resp, Error)) << Error;
    EXPECT_EQ(Resp.Status, "ok");
    EXPECT_EQ(Resp.Out, OneShot.Out);
    EXPECT_EQ(Resp.Err, OneShot.Err);
    EXPECT_EQ(Resp.ExitCode, OneShot.ExitCode);
  }
}

TEST(ServerEndToEnd, InferMatchesOneShotBytesTextAndJson) {
  // The satellite contract: `stqc infer` one-shot and the same request
  // answered by a (warm) daemon produce byte-identical output, in the
  // text rendering, the stq-inference-v1 rendering, and apply-mode.
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Workers = 2;
  Opts.PoolThreads = 2;
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Req;
  Req.Inv.Command = "infer";
  Req.Inv.Source = "int g(int v) { return v; }\n"
                   "int f() { int x = 3; int y = x; return g(y); }\n";
  Req.Inv.HasSource = true;

  struct Variant {
    bool Json;
    bool Apply;
  };
  for (Variant V : {Variant{false, false}, Variant{true, false},
                    Variant{false, true}}) {
    Req.Inv.InferJson = V.Json;
    Req.Inv.Session.Infer.Apply = V.Apply;
    server::ExecResult OneShot = server::executeInvocation(Req.Inv);
    ASSERT_EQ(OneShot.ExitCode, 0) << OneShot.Err;
    for (int Round = 0; Round < 2; ++Round) {
      server::rpc::Response Resp;
      std::string Error;
      ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, Resp, Error)) << Error;
      EXPECT_EQ(Resp.Status, "ok");
      EXPECT_EQ(Resp.Out, OneShot.Out)
          << "json=" << V.Json << " apply=" << V.Apply;
      EXPECT_EQ(Resp.Err, OneShot.Err);
      EXPECT_EQ(Resp.ExitCode, OneShot.ExitCode);
    }
  }
}

TEST(ServerEndToEnd, SecondProveReplaysEntirelyFromWarmCache) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Req;
  Req.Inv.Command = "prove";
  Req.Inv.Metrics = true; // per-request counters ride in stdout

  server::rpc::Response First, Second;
  std::string Error;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, First, Error, 120000)) << Error;
  ASSERT_EQ(First.Status, "ok");
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, Second, Error, 120000)) << Error;
  ASSERT_EQ(Second.Status, "ok");

  // Cold request proved at least one obligation itself; the warm request's
  // per-session counters show every obligation replayed from the shared
  // cache: zero prover calls.
  EXPECT_NE(First.Out.find("prove.obligations ="), std::string::npos);
  auto Counter = [](const std::string &Text, const std::string &Name) {
    size_t At = Text.find(Name + " = ");
    EXPECT_NE(At, std::string::npos) << Name << " missing in:\n" << Text;
    if (At == std::string::npos)
      return uint64_t(0);
    return static_cast<uint64_t>(
        std::stoull(Text.substr(At + Name.size() + 3)));
  };
  // The counter only materializes on a cache hit, so a truly cold first
  // request does not report it at all.
  EXPECT_EQ(First.Out.find("prove.obligations_from_cache"), std::string::npos);
  uint64_t Obligations = Counter(Second.Out, "prove.obligations");
  EXPECT_GT(Obligations, 0u);
  EXPECT_EQ(Counter(Second.Out, "prove.obligations_from_cache"), Obligations);
}

TEST(ServerEndToEnd, EightConcurrentClientsGetIdenticalBytes) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Workers = 4;
  Opts.PoolThreads = 2;
  Opts.QueueCapacity = 64; // all clients must be answered, never bounced
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Check;
  Check.Inv = checkInvocation(
      "int f(int pos a) { int pos b = a + 1; return b; }\n");
  Check.Inv.Session.Jobs = 2; // exercise the shared pool concurrently
  server::rpc::Request Prove;
  Prove.Inv.Command = "prove";

  server::ExecResult CheckOneShot = server::executeInvocation(Check.Inv);
  server::ExecResult ProveOneShot = server::executeInvocation(Prove.Inv);

  constexpr int Clients = 8;
  std::vector<std::thread> Threads;
  std::vector<std::string> Failures(Clients);
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      const bool IsProve = I % 2 == 1;
      server::rpc::Response Resp;
      std::string Error;
      if (!roundTrip(Opts.SocketPath, IsProve ? Prove : Check, Resp, Error,
                     120000)) {
        Failures[I] = "transport: " + Error;
        return;
      }
      if (Resp.Status != "ok") {
        Failures[I] = "status " + Resp.Status + ": " + Resp.Error;
        return;
      }
      const server::ExecResult &Want = IsProve ? ProveOneShot : CheckOneShot;
      if (Resp.ExitCode != Want.ExitCode)
        Failures[I] = "exit code mismatch";
      else if (Resp.Err != Want.Err)
        Failures[I] = "stderr mismatch";
      else if (!IsProve && Resp.Out != Want.Out)
        Failures[I] = "stdout mismatch"; // prove stdout carries timings
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < Clients; ++I)
    EXPECT_EQ(Failures[I], "") << "client " << I;

  EXPECT_GE(Fix.server().metrics().counter("server.requests").get(),
            static_cast<uint64_t>(Clients));
}

TEST(ServerEndToEnd, ConcurrentRecheckAndCheckStayByteIdentical) {
  // `recheck` requests racing ordinary `check` requests on the daemon's
  // warm shared engine: every response must match the cold one-shot bytes,
  // whichever path answered it and however the store interleaves.
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Workers = 4;
  Opts.PoolThreads = 2;
  Opts.QueueCapacity = 64;
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  const std::string Source =
      "int pos x = 0 - 1;\n"
      "int f(int a) { return a + x; }\n"
      "int main() { return f(2); }\n";
  server::rpc::Request Check;
  Check.Inv = checkInvocation(Source);
  server::rpc::Request Recheck;
  Recheck.Inv = checkInvocation(Source);
  Recheck.Inv.Command = "recheck";
  Recheck.Inv.Session.IncrementalUnit = "e2e";
  Recheck.Inv.Session.Jobs = 2;

  server::ExecResult OneShot = server::executeInvocation(Check.Inv);

  constexpr int Clients = 8;
  std::vector<std::thread> Threads;
  std::vector<std::string> Failures(Clients);
  for (int I = 0; I < Clients; ++I)
    Threads.emplace_back([&, I] {
      const server::rpc::Request &Req = I % 2 == 0 ? Recheck : Check;
      server::rpc::Response Resp;
      std::string Error;
      if (!roundTrip(Opts.SocketPath, Req, Resp, Error, 120000)) {
        Failures[I] = "transport: " + Error;
        return;
      }
      if (Resp.Status != "ok")
        Failures[I] = "status " + Resp.Status + ": " + Resp.Error;
      else if (Resp.ExitCode != OneShot.ExitCode)
        Failures[I] = "exit code mismatch";
      else if (Resp.Out != OneShot.Out)
        Failures[I] = "stdout mismatch";
      else if (Resp.Err != OneShot.Err)
        Failures[I] = "stderr mismatch";
    });
  for (std::thread &T : Threads)
    T.join();
  for (int I = 0; I < Clients; ++I)
    EXPECT_EQ(Failures[I], "") << "client " << I;

  // The daemon's engine kept the verdicts, and status gauges surface it.
  EXPECT_GT(Fix.server().incrementalEngine().entries(), 0u);
}

TEST(ServerEndToEnd, FullQueueAnswersBusy) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Workers = 1;
  Opts.QueueCapacity = 1;
  Opts.RequestTimeoutMs = 3000; // silent connections park the worker
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  // Occupy the only worker with a silent connection, then fill the queue
  // with another; the next connection must be bounced with `busy`.
  std::string Error;
  UnixStream Hold1, Hold2;
  ASSERT_TRUE(Hold1.connect(Opts.SocketPath, Error)) << Error;
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE(Hold2.connect(Opts.SocketPath, Error)) << Error;
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  server::rpc::Request Req;
  Req.Inv = checkInvocation("int x = 1;\n");
  server::rpc::Response Resp;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Status, "busy");
  EXPECT_EQ(Resp.ExitCode, 6);
  EXPECT_GE(Fix.server().metrics().counter("server.rejected").get(), 1u);

  // The parked connections get protocol-error responses once they time
  // out; the server stays healthy for real requests afterwards. `busy`
  // means retry — the worker may still be draining the closed holds.
  Hold1.close();
  Hold2.close();
  server::rpc::Response After;
  for (int Attempt = 0; Attempt < 50; ++Attempt) {
    ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, After, Error, 30000)) << Error;
    if (After.Status != "busy")
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(After.Status, "ok");
}

TEST(ServerEndToEnd, MalformedRequestGetsProtocolError) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  UnixStream Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(Opts.SocketPath, Error)) << Error;
  ASSERT_TRUE(Conn.writeAll("this is not json\n", Error)) << Error;
  std::string Line;
  ASSERT_TRUE(Conn.readLine(Line, 1u << 20, 30000, Error)) << Error;
  server::rpc::Response Resp;
  ASSERT_TRUE(server::rpc::parseResponse(Line, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Status, "error");
  EXPECT_EQ(Resp.ExitCode, 6);
}

TEST(ServerEndToEnd, OversizedRequestIsRejected) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.MaxRequestBytes = 256;
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Req;
  Req.Inv = checkInvocation(std::string(4096, 'x'));
  server::rpc::Response Resp;
  std::string Error;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Status, "error");
  EXPECT_EQ(Resp.ExitCode, 6);
}

TEST(ServerEndToEnd, StatusReportsServerMetrics) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Check;
  Check.Inv = checkInvocation("int x = 1;\n");
  server::rpc::Response Ignored;
  std::string Error;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Check, Ignored, Error)) << Error;

  server::rpc::Request Status;
  Status.Inv.Command = "status";
  server::rpc::Response Resp;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Status, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Status, "ok");
  EXPECT_EQ(Resp.ExitCode, 0);
  EXPECT_NE(Resp.Out.find("server.requests"), std::string::npos);
  EXPECT_NE(Resp.Out.find("server.queue_depth"), std::string::npos);
  EXPECT_NE(Resp.Out.find("prover.cache.entries"), std::string::npos);
}

TEST(ServerEndToEnd, ShutdownRequestDrainsAndSavesCache) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string CachePath = Tmp.path("nested/dir/warm.stqcache");
  server::ServerOptions Opts;
  Opts.SocketPath = Tmp.path("stq.sock");
  Opts.Defaults.CacheFile = CachePath;
  ServerFixture Fix(Opts);
  ASSERT_TRUE(Fix.ok());

  server::rpc::Request Prove;
  Prove.Inv.Command = "prove";
  server::rpc::Response Resp;
  std::string Error;
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Prove, Resp, Error, 120000)) << Error;
  ASSERT_EQ(Resp.Status, "ok");

  server::rpc::Request Shutdown;
  Shutdown.Inv.Command = "shutdown";
  ASSERT_TRUE(roundTrip(Opts.SocketPath, Shutdown, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Status, "ok");
  Fix.stop();
  EXPECT_EQ(Fix.exitCode(), 0);

  // The drain persisted the warm cache (creating the parent directories),
  // so the next daemon starts warm: requests replay without proving.
  {
    std::ifstream Probe(CachePath);
    EXPECT_TRUE(Probe.good()) << CachePath;
  }
  server::ServerOptions Next = Opts;
  Next.SocketPath = Tmp.path("stq2.sock");
  ServerFixture Fix2(Next);
  ASSERT_TRUE(Fix2.ok());
  EXPECT_GT(
      Fix2.server().metrics().counter("server.cache_entries_loaded").get(),
      0u);
  server::rpc::Request Warm;
  Warm.Inv.Command = "prove";
  Warm.Inv.Metrics = true;
  ASSERT_TRUE(roundTrip(Next.SocketPath, Warm, Resp, Error, 120000)) << Error;
  ASSERT_EQ(Resp.Status, "ok");
  EXPECT_NE(Resp.Out.find("prover.cache.misses = 0\n"), std::string::npos)
      << Resp.Out;
}

} // namespace
