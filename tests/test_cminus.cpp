//===- test_cminus.cpp - Tests for the C-minus front end ------------------===//

#include "cminus/AST.h"
#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Printer.h"
#include "cminus/Sema.h"
#include "cminus/Type.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::cminus;

namespace {

const std::vector<std::string> Quals = {"pos", "neg", "nonzero", "nonnull",
                                        "tainted", "untainted", "unique",
                                        "unaliased"};
const std::vector<std::string> RefQuals = {"unique", "unaliased"};

struct ParseResult {
  std::unique_ptr<Program> Prog;
  DiagnosticEngine Diags;
};

/// Parses only.
ParseResult parse(const std::string &Source) {
  ParseResult R;
  R.Prog = parseProgram(Source, Quals, R.Diags);
  return R;
}

/// Parses, runs Sema, lowers, and verifies; expects full success.
std::unique_ptr<Program> frontendOk(const std::string &Source,
                                    DiagnosticEngine &Diags) {
  auto Prog = parseProgram(Source, Quals, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << "parse errors in:\n" << Source;
  if (Diags.hasErrors())
    return Prog;
  EXPECT_TRUE(runSema(*Prog, RefQuals, Diags));
  EXPECT_TRUE(lowerProgram(*Prog, Diags));
  EXPECT_TRUE(verifyLoweredProgram(*Prog, Diags));
  return Prog;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TEST(Type, BasicPredicates) {
  EXPECT_TRUE(Type::getInt()->isInt());
  EXPECT_TRUE(Type::getChar()->isArithmetic());
  EXPECT_TRUE(Type::getVoid()->isVoid());
  EXPECT_TRUE(Type::getPointer(Type::getInt())->isPointer());
  EXPECT_TRUE(Type::getStruct("dfa")->isStruct());
}

TEST(Type, QualsAreSortedAndDeduped) {
  TypePtr T = Type::withQuals(Type::getInt(), {"pos", "nonzero", "pos"});
  ASSERT_EQ(T->quals().size(), 2u);
  EXPECT_EQ(T->quals()[0], "nonzero");
  EXPECT_EQ(T->quals()[1], "pos");
  EXPECT_TRUE(T->hasQual("pos"));
  EXPECT_FALSE(T->hasQual("neg"));
}

TEST(Type, WithQualAddsOne) {
  TypePtr T = Type::withQual(Type::getInt(), "pos");
  EXPECT_TRUE(T->hasQual("pos"));
  TypePtr T2 = Type::withQual(T, "nonzero");
  EXPECT_TRUE(T2->hasQual("pos"));
  EXPECT_TRUE(T2->hasQual("nonzero"));
  // Original is unchanged (immutability).
  EXPECT_FALSE(T->hasQual("nonzero"));
}

TEST(Type, EqualityIsStructuralIncludingQuals) {
  TypePtr A = Type::withQual(Type::getInt(), "pos");
  TypePtr B = Type::withQual(Type::getInt(), "pos");
  EXPECT_TRUE(Type::equals(A, B));
  EXPECT_FALSE(Type::equals(A, Type::getInt()));
  // Qualifier order is irrelevant (rule SubQualReorder).
  TypePtr C = Type::withQuals(Type::getInt(), {"pos", "nonzero"});
  TypePtr D = Type::withQuals(Type::getInt(), {"nonzero", "pos"});
  EXPECT_TRUE(Type::equals(C, D));
}

TEST(Type, SubtypeDropsTopLevelQuals) {
  // int pos <= int  (rule SubValQual).
  TypePtr IntPos = Type::withQual(Type::getInt(), "pos");
  EXPECT_TRUE(Type::isSubtypeOf(IntPos, Type::getInt()));
  EXPECT_FALSE(Type::isSubtypeOf(Type::getInt(), IntPos));
  // Reflexivity.
  EXPECT_TRUE(Type::isSubtypeOf(IntPos, IntPos));
}

TEST(Type, SubtypeSupersetOfQuals) {
  TypePtr PosNonzero = Type::withQuals(Type::getInt(), {"pos", "nonzero"});
  TypePtr Nonzero = Type::withQual(Type::getInt(), "nonzero");
  EXPECT_TRUE(Type::isSubtypeOf(PosNonzero, Nonzero));
  EXPECT_FALSE(Type::isSubtypeOf(Nonzero, PosNonzero));
}

TEST(Type, NoSubtypingUnderPointers) {
  // int pos* is NOT a subtype of int* (section 2.1.2).
  TypePtr IntPos = Type::withQual(Type::getInt(), "pos");
  TypePtr PtrIntPos = Type::getPointer(IntPos);
  TypePtr PtrInt = Type::getPointer(Type::getInt());
  EXPECT_FALSE(Type::isSubtypeOf(PtrIntPos, PtrInt));
  EXPECT_FALSE(Type::isSubtypeOf(PtrInt, PtrIntPos));
}

TEST(Type, PointerTopLevelQualsStillSubtype) {
  // int* unique <= int* would hold for a VALUE qualifier set; the checker
  // strips reference qualifiers before using this relation. Here we verify
  // the raw relation on top-level qualifier sets.
  TypePtr PtrInt = Type::getPointer(Type::getInt());
  TypePtr PtrIntQ = Type::withQual(PtrInt, "nonnull");
  EXPECT_TRUE(Type::isSubtypeOf(PtrIntQ, PtrInt));
}

TEST(Type, DeepUnqualifiedStripsEveryLevel) {
  TypePtr T = Type::withQual(
      Type::getPointer(Type::withQual(Type::getInt(), "pos")), "unique");
  TypePtr U = Type::deepUnqualified(T);
  EXPECT_TRUE(U->quals().empty());
  EXPECT_TRUE(U->pointee()->quals().empty());
  EXPECT_TRUE(Type::equals(U, Type::getPointer(Type::getInt())));
}

TEST(Type, WithoutQualsInDropsOnlyListed) {
  TypePtr T = Type::withQuals(Type::getPointer(Type::getInt()),
                              {"unique", "nonnull"});
  TypePtr R = Type::withoutQualsIn(T, {"unique", "unaliased"});
  EXPECT_FALSE(R->hasQual("unique"));
  EXPECT_TRUE(R->hasQual("nonnull"));
}

TEST(Type, StrRendersPostfix) {
  TypePtr T = Type::withQual(
      Type::getPointer(Type::withQual(Type::getInt(), "pos")), "unique");
  EXPECT_EQ(T->str(), "int pos* unique");
  EXPECT_EQ(Type::getPointer(Type::getChar())->str(), "char*");
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, EmptyProgram) {
  auto R = parse("");
  EXPECT_FALSE(R.Diags.hasErrors());
  EXPECT_TRUE(R.Prog->Functions.empty());
}

TEST(Parser, GlobalVariable) {
  auto R = parse("int x = 3;");
  ASSERT_FALSE(R.Diags.hasErrors());
  ASSERT_EQ(R.Prog->Globals.size(), 1u);
  EXPECT_EQ(R.Prog->Globals[0]->Name, "x");
  EXPECT_TRUE(R.Prog->Globals[0]->IsGlobal);
  ASSERT_NE(R.Prog->Globals[0]->Init, nullptr);
}

TEST(Parser, QualifiedDeclarations) {
  auto R = parse("int pos x = 3;\n"
                 "int* unique p;\n"
                 "char* untainted fmt;\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  EXPECT_TRUE(R.Prog->Globals[0]->DeclaredTy->hasQual("pos"));
  EXPECT_TRUE(R.Prog->Globals[1]->DeclaredTy->hasQual("unique"));
  EXPECT_TRUE(R.Prog->Globals[1]->DeclaredTy->isPointer());
  EXPECT_TRUE(R.Prog->Globals[2]->DeclaredTy->hasQual("untainted"));
}

TEST(Parser, NestedQualifierPlacement) {
  // Postfix: `int pos*` is a pointer TO int pos.
  auto R = parse("int pos* p;");
  ASSERT_FALSE(R.Diags.hasErrors());
  TypePtr T = R.Prog->Globals[0]->DeclaredTy;
  EXPECT_TRUE(T->isPointer());
  EXPECT_TRUE(T->quals().empty());
  EXPECT_TRUE(T->pointee()->hasQual("pos"));
}

TEST(Parser, FunctionWithBody) {
  auto R = parse("int pos gcd(int pos n, int pos m);\n"
                 "int pos lcm(int pos a, int pos b) {\n"
                 "  int pos d = gcd(a, b);\n"
                 "  int pos prod = a * b;\n"
                 "  return (int pos) (prod / d);\n"
                 "}\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  ASSERT_EQ(R.Prog->Functions.size(), 2u);
  FuncDecl *Lcm = R.Prog->findFunction("lcm");
  ASSERT_NE(Lcm, nullptr);
  EXPECT_TRUE(Lcm->isDefinition());
  EXPECT_EQ(Lcm->Params.size(), 2u);
  EXPECT_TRUE(Lcm->RetTy->hasQual("pos"));
}

TEST(Parser, PrototypeThenDefinitionMerges) {
  auto R = parse("int f(int x);\n"
                 "int f(int x) { return x; }\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  ASSERT_EQ(R.Prog->Functions.size(), 1u);
  EXPECT_TRUE(R.Prog->Functions[0]->isDefinition());
}

TEST(Parser, VariadicPrototype) {
  auto R = parse("int printf(char* untainted fmt, ...);");
  ASSERT_FALSE(R.Diags.hasErrors());
  EXPECT_TRUE(R.Prog->Functions[0]->Variadic);
  EXPECT_EQ(R.Prog->Functions[0]->Params.size(), 1u);
}

TEST(Parser, StructDefinitionAndAccess) {
  auto R = parse("struct dfa { int nstates; int* nonnull trans; };\n"
                 "struct dfa* d;\n"
                 "int f() { return d->nstates; }\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  ASSERT_EQ(R.Prog->Structs.size(), 1u);
  EXPECT_EQ(R.Prog->Structs[0]->Fields.size(), 2u);
}

TEST(Parser, IndexDesugarsToDeref) {
  auto R = parse("int f(int* a, int i) { return a[i]; }\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  auto *Fn = R.Prog->findFunction("f");
  auto *Ret = dyn_cast<ReturnStmt>(Fn->Body->Stmts[0]);
  ASSERT_NE(Ret, nullptr);
  auto *Read = dyn_cast<LValReadExpr>(Ret->Value);
  ASSERT_NE(Read, nullptr);
  EXPECT_TRUE(Read->LV->isMem());
  EXPECT_TRUE(isa<BinaryExpr>(Read->LV->Addr));
}

TEST(Parser, AddressOfRequiresLValue) {
  auto R = parse("int f(int x) { return 0; }\n"
                 "int g() { int* p; p = &3; return 0; }\n");
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Parser, UndeclaredVariableErrors) {
  auto R = parse("int f() { return y; }\n");
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Parser, RedeclarationInSameScopeErrors) {
  auto R = parse("int f() { int x; int x; return 0; }\n");
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Parser, ShadowingInInnerScopeAllowed) {
  auto R = parse("int f() { int x; { int x; x = 1; } return x; }\n");
  EXPECT_FALSE(R.Diags.hasErrors());
}

TEST(Parser, ExpressionStatementMustBeCall) {
  auto R = parse("int f() { 1 + 2; return 0; }\n");
  EXPECT_TRUE(R.Diags.hasErrors());
}

TEST(Parser, CastSyntax) {
  auto R = parse("char* untainted g() {\n"
                 "  char* untainted fmt = (char* untainted) \"%s\";\n"
                 "  return fmt;\n"
                 "}\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  auto *Fn = R.Prog->findFunction("g");
  auto *Decl = dyn_cast<DeclStmt>(Fn->Body->Stmts[0]);
  ASSERT_NE(Decl, nullptr);
  auto *Cast_ = dyn_cast<CastExpr>(Decl->Var->Init);
  ASSERT_NE(Cast_, nullptr);
  EXPECT_TRUE(Cast_->Target->hasQual("untainted"));
}

TEST(Parser, ControlFlowStatements) {
  auto R = parse("int f(int n) {\n"
                 "  int s = 0;\n"
                 "  for (int i = 0; i < n; i = i + 1) {\n"
                 "    if (i % 2 == 0) s = s + i; else s = s - 1;\n"
                 "  }\n"
                 "  while (s > 100) { s = s / 2; break; }\n"
                 "  return s;\n"
                 "}\n");
  EXPECT_FALSE(R.Diags.hasErrors());
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  auto R = parse("int f(int a, int b, int c) { return a + b * c; }\n");
  ASSERT_FALSE(R.Diags.hasErrors());
  auto *Ret = cast<ReturnStmt>(R.Prog->findFunction("f")->Body->Stmts[0]);
  auto *Add = dyn_cast<BinaryExpr>(Ret->Value);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->Op, BinaryOp::Add);
  auto *Mul = dyn_cast<BinaryExpr>(Add->RHS);
  ASSERT_NE(Mul, nullptr);
  EXPECT_EQ(Mul->Op, BinaryOp::Mul);
}

TEST(Parser, SizeofType) {
  auto R = parse("int f() { return sizeof(int) + sizeof(struct dfa*); }\n");
  EXPECT_FALSE(R.Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(Sema, TypesSimpleFunction) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int f(int x) { return x + 1; }\n", Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  EXPECT_TRUE(Ret->Value->Ty->isInt());
}

TEST(Sema, RTypeStripsReferenceQualifiers) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int* unique p;\n"
                         "int* q;\n"
                         "int f() { int i = *p; return i; }\n",
                         Diags);
  // Reading *p is fine; the declared type of p strips `unique` at r-type.
  auto *Fn = Prog->findFunction("f");
  auto *Decl = cast<DeclStmt>(Fn->Body->Stmts[0]);
  EXPECT_TRUE(Decl->Var->Init->Ty->isInt());
}

TEST(Sema, RTypeKeepsValueQualifiers) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int pos x = 3;\n"
                         "int f() { return x; }\n",
                         Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  EXPECT_TRUE(Ret->Value->Ty->hasQual("pos"));
}

TEST(Sema, AssignmentTypeMismatchErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("struct s { int a; };\n"
                           "int f() { struct s v; int x; x = v; return x; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, PointerIntMismatchErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("int f(int* p) { int x; x = p; return x; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, NullAssignableToAnyPointer) {
  DiagnosticEngine Diags;
  frontendOk("int f() { int* p; p = NULL; return 0; }\n", Diags);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Sema, MallocIsBuiltinAlloc) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk(
      "int f(int n) { int* p; p = (int*) malloc(sizeof(int) * n);"
      " return 0; }\n",
      Diags);
  auto *Fn = Prog->findFunction("f");
  // Find the assignment and check the direct call is flagged as alloc.
  bool FoundAlloc = false;
  for (Stmt *S : Fn->Body->Stmts) {
    if (auto *Assign = dyn_cast<AssignStmt>(S))
      if (const CallExpr *Call = getDirectCall(Assign->RHS))
        FoundAlloc = Call->IsAlloc;
  }
  EXPECT_TRUE(FoundAlloc);
}

TEST(Sema, WrongArgCountErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("int g(int a, int b) { return a; }\n"
                           "int f() { return g(1); }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, VariadicCallAllowsExtraArgs) {
  DiagnosticEngine Diags;
  frontendOk("int printf(char* fmt, ...);\n"
             "int f() { printf(\"%d %d\", 1, 2); return 0; }\n",
             Diags);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Sema, ReturnTypeMismatchErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("int* f() { return 3; }\n", Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, VoidFunctionReturningValueErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("void f() { return 3; }\n", Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, StructFieldTypes) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk(
      "struct dfa { int nstates; int* trans; };\n"
      "struct dfa* d;\n"
      "int f() { return d->nstates; }\n"
      "int g() { int* t; t = d->trans; return *t; }\n",
      Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  EXPECT_TRUE(Ret->Value->Ty->isInt());
}

TEST(Sema, UnknownFieldErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("struct s { int a; };\n"
                           "struct s* p;\n"
                           "int f() { return p->b; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, PointerArithmeticKeepsPointerType) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int pos* f(int pos* p, int i) { return p + i; }\n",
                         Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  ASSERT_TRUE(Ret->Value->Ty->isPointer());
  EXPECT_TRUE(Ret->Value->Ty->pointee()->hasQual("pos"));
}

TEST(Sema, DerefNonPointerErrors) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("int f(int x) { return *x; }\n", Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

TEST(Lowering, NestedCallIsHoisted) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int g(int x) { return x; }\n"
                         "int f() { return g(g(1)) + 2; }\n",
                         Diags);
  auto *Fn = Prog->findFunction("f");
  // Lowered shape: two temp decls, then a return with no calls.
  ASSERT_GE(Fn->Body->Stmts.size(), 3u);
  unsigned Decls = 0;
  for (Stmt *S : Fn->Body->Stmts)
    if (isa<DeclStmt>(S))
      ++Decls;
  EXPECT_EQ(Decls, 2u);
}

TEST(Lowering, DirectCallRHSStaysInPlace) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int g(int x) { return x; }\n"
                         "int f() { int y = g(1); return y; }\n",
                         Diags);
  auto *Fn = Prog->findFunction("f");
  // No hoisting needed: the decl keeps its call initializer.
  ASSERT_EQ(Fn->Body->Stmts.size(), 2u);
  auto *Decl = cast<DeclStmt>(Fn->Body->Stmts[0]);
  EXPECT_NE(getDirectCall(Decl->Var->Init), nullptr);
}

TEST(Lowering, CallUnderCastStaysDirect) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk(
      "int f(int n) { int* p; p = (int*) malloc(n); return 0; }\n", Diags);
  auto *Fn = Prog->findFunction("f");
  bool FoundDirect = false;
  for (Stmt *S : Fn->Body->Stmts)
    if (auto *Assign = dyn_cast<AssignStmt>(S))
      FoundDirect = getDirectCall(Assign->RHS) != nullptr;
  EXPECT_TRUE(FoundDirect);
}

TEST(Lowering, CallInLoopConditionRejected) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("int g() { return 1; }\n"
                           "int f() { while (g()) { } return 0; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(runSema(*Prog, RefQuals, Diags));
  EXPECT_FALSE(lowerProgram(*Prog, Diags));
}

TEST(Lowering, CallInShortCircuitRejected) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(
      "int g() { return 1; }\n"
      "int f(int a) { if (a && g()) { return 1; } return 0; }\n",
      Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(runSema(*Prog, RefQuals, Diags));
  EXPECT_FALSE(lowerProgram(*Prog, Diags));
}

TEST(Lowering, CallInIfConditionHoistedBeforeStatement) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int g() { return 1; }\n"
                         "int f() { if (g() > 0) { return 1; } return 0; }\n",
                         Diags);
  auto *Fn = Prog->findFunction("f");
  EXPECT_TRUE(isa<DeclStmt>(Fn->Body->Stmts[0]));
  EXPECT_TRUE(isa<IfStmt>(Fn->Body->Stmts[1]));
}

TEST(Lowering, PaperFigure2Survives) {
  DiagnosticEngine Diags;
  frontendOk("int pos gcd(int pos n, int pos m);\n"
             "int pos lcm(int pos a, int pos b) {\n"
             "  int pos d = gcd(a, b);\n"
             "  int pos prod = a * b;\n"
             "  return (int pos) (prod / d);\n"
             "}\n",
             Diags);
  EXPECT_FALSE(Diags.hasErrors());
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

TEST(Printer, RoundTripsSimpleFunction) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int f(int x) { return x * (x + 1); }\n", Diags);
  std::string Printed = printProgram(*Prog);
  // Reparse the printed output; it must parse cleanly.
  DiagnosticEngine Diags2;
  auto Prog2 = parseProgram(Printed, Quals, Diags2);
  EXPECT_FALSE(Diags2.hasErrors()) << Printed;
  EXPECT_EQ(Prog2->Functions.size(), 1u);
}

TEST(Printer, PreservesPrecedenceWithParens) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int f(int a, int b, int c) {"
                         " return (a + b) * c; }\n",
                         Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  EXPECT_EQ(printExpr(Ret->Value), "(a + b) * c");
}

TEST(Printer, QualifiedTypesRendered) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("int pos x = 3;\n", Diags);
  std::string Printed = printProgram(*Prog);
  EXPECT_NE(Printed.find("int pos x"), std::string::npos) << Printed;
}

TEST(Printer, ArrowFormForMemFieldAccess) {
  DiagnosticEngine Diags;
  auto Prog = frontendOk("struct s { int a; };\n"
                         "int f(struct s* p) { return p->a; }\n",
                         Diags);
  auto *Ret = cast<ReturnStmt>(Prog->findFunction("f")->Body->Stmts[0]);
  EXPECT_EQ(printExpr(Ret->Value), "p->a");
}

} // namespace

namespace {

TEST(Sema, StructCopyRejected) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("struct s { int a; };\n"
                           "void f() { struct s x; struct s y; x = y; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, StructParamRejected) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("struct s { int a; };\n"
                           "int f(struct s v) { return v.a; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, StructReturnRejected) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram("struct s { int a; };\n"
                           "struct s g();\n"
                           "struct s f() { struct s v; return v; }\n",
                           Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EXPECT_FALSE(runSema(*Prog, RefQuals, Diags));
}

TEST(Sema, StructThroughPointerStillFine) {
  DiagnosticEngine Diags;
  frontendOk("struct s { int a; };\n"
             "int f(struct s* p) { p->a = 3; return p->a; }\n",
             Diags);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Parser, StrayCloseBraceAtTopLevelDoesNotLoop) {
  // Regression: synchronize() stops at '}' without consuming; the
  // top-level loop must still make progress.
  auto R = parse("} } } int x = 1; }");
  EXPECT_TRUE(R.Diags.hasErrors());
  EXPECT_EQ(R.Prog->Globals.size(), 1u);
}

TEST(Printer, ForLoopRoundTrips) {
  DiagnosticEngine Diags;
  auto Prog = parseProgram(
      "int f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i = i + 1) { s = s + i; }\n"
      "  return s;\n"
      "}\n",
      Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(runSema(*Prog, RefQuals, Diags));
  std::string Printed = printProgram(*Prog);
  EXPECT_NE(Printed.find("for (int i = 0; i < n; i = i + 1)"),
            std::string::npos)
      << Printed;
  DiagnosticEngine D2;
  auto P2 = parseProgram(Printed, Quals, D2);
  EXPECT_FALSE(D2.hasErrors()) << Printed;
}

} // namespace
