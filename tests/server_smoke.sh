#!/bin/sh
# server_smoke.sh — end-to-end smoke test for the stqd daemon, driven
# through the real binaries the way a user would run them.
#
# Part of the stq project: a reproduction of "Semantic Type Qualifiers"
# (Chin, Markstrum, Millstein; PLDI 2005).
#
# Usage: server_smoke.sh STQD STQC
#
# Exercises, with actual processes and a real Unix-domain socket:
#   1. the daemon starting with a --cache-file in a missing directory;
#   2. `stqc --server` output being byte-identical to one-shot stqc,
#      for a passing check, a failing check (exit code 1 preserved),
#      JSON diagnostics, and cold + warm `recheck` against the daemon's
#      shared incremental engine;
#   3. eight concurrent clients (check and recheck interleaved), every
#      one byte-identical;
#   4. a warm `prove` replaying entirely from the shared cache;
#   5. `status` and `shutdown` control requests;
#   6. SIGTERM: graceful drain, exit 0, cache file persisted.
set -u

STQD=${1:?usage: server_smoke.sh STQD STQC}
STQC=${2:?usage: server_smoke.sh STQD STQC}

WORK=$(mktemp -d /tmp/stq-smoke-XXXXXX) || exit 1
SOCK="$WORK/stqd.sock"
CACHE="$WORK/cache/warm.stqcache" # parent dir intentionally missing
DAEMON_PID=

FAILURES=0
fail() {
  echo "FAIL: $*" >&2
  FAILURES=$((FAILURES + 1))
}

cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null
  [ -n "$DAEMON_PID" ] && wait "$DAEMON_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_for_socket() {
  i=0
  while [ $i -lt 100 ]; do
    # The daemon prints "stqd: listening on ..." once the socket is live;
    # probing with a status request is the portable check.
    if "$STQC" status --server "$SOCK" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
    i=$((i + 1))
  done
  return 1
}

# --- start the daemon -------------------------------------------------------
"$STQD" --socket "$SOCK" --cache-file "$CACHE" --workers 4 --jobs 2 \
  2>"$WORK/stqd.err" &
DAEMON_PID=$!
wait_for_socket || { fail "daemon did not come up"; exit 1; }

# --- byte-identity: server output == one-shot output ------------------------
OK_SRC='int f(int pos a) { int pos b = a * a; return b; }'
BAD_SRC='int pos x = -1;'

"$STQC" check -e "$OK_SRC" --builtins pos,neg \
  >"$WORK/ok_local.out" 2>"$WORK/ok_local.err"
OK_LOCAL_EXIT=$?
"$STQC" check -e "$OK_SRC" --builtins pos,neg --server "$SOCK" \
  >"$WORK/ok_server.out" 2>"$WORK/ok_server.err"
OK_SERVER_EXIT=$?
[ "$OK_LOCAL_EXIT" = "$OK_SERVER_EXIT" ] || fail "check exit: $OK_LOCAL_EXIT vs $OK_SERVER_EXIT"
cmp -s "$WORK/ok_local.out" "$WORK/ok_server.out" || fail "check stdout differs"
cmp -s "$WORK/ok_local.err" "$WORK/ok_server.err" || fail "check stderr differs"

"$STQC" check -e "$BAD_SRC" --builtins pos,neg \
  >"$WORK/bad_local.out" 2>"$WORK/bad_local.err"
BAD_LOCAL_EXIT=$?
"$STQC" check -e "$BAD_SRC" --builtins pos,neg --server "$SOCK" \
  >"$WORK/bad_server.out" 2>"$WORK/bad_server.err"
BAD_SERVER_EXIT=$?
[ "$BAD_LOCAL_EXIT" = 1 ] || fail "failing check: one-shot exit $BAD_LOCAL_EXIT != 1"
[ "$BAD_SERVER_EXIT" = 1 ] || fail "failing check: server exit $BAD_SERVER_EXIT != 1"
cmp -s "$WORK/bad_local.out" "$WORK/bad_server.out" || fail "failing check stdout differs"
cmp -s "$WORK/bad_local.err" "$WORK/bad_server.err" || fail "failing check stderr differs"

"$STQC" check -e "$BAD_SRC" --builtins pos,neg --diagnostics json \
  >"$WORK/json_local.out" 2>"$WORK/json_local.err"
"$STQC" check -e "$BAD_SRC" --builtins pos,neg --diagnostics json \
  --server "$SOCK" >"$WORK/json_server.out" 2>"$WORK/json_server.err"
cmp -s "$WORK/json_local.err" "$WORK/json_server.err" || fail "json diagnostics differ"

# --- incremental recheck: byte-identical to one-shot check, warm or cold ----
"$STQC" recheck -e "$BAD_SRC" --builtins pos,neg --unit smoke \
  --server "$SOCK" >"$WORK/re_cold.out" 2>"$WORK/re_cold.err"
RE_COLD_EXIT=$?
[ "$RE_COLD_EXIT" = "$BAD_LOCAL_EXIT" ] || fail "recheck exit: $RE_COLD_EXIT vs $BAD_LOCAL_EXIT"
cmp -s "$WORK/bad_local.out" "$WORK/re_cold.out" || fail "cold recheck stdout differs"
cmp -s "$WORK/bad_local.err" "$WORK/re_cold.err" || fail "cold recheck stderr differs"
# Second recheck of the same unit replays from the daemon's verdict store.
"$STQC" recheck -e "$BAD_SRC" --builtins pos,neg --unit smoke \
  --server "$SOCK" >"$WORK/re_warm.out" 2>"$WORK/re_warm.err"
RE_WARM_EXIT=$?
[ "$RE_WARM_EXIT" = "$BAD_LOCAL_EXIT" ] || fail "warm recheck exit: $RE_WARM_EXIT"
cmp -s "$WORK/bad_local.out" "$WORK/re_warm.out" || fail "warm recheck stdout differs"
cmp -s "$WORK/bad_local.err" "$WORK/re_warm.err" || fail "warm recheck stderr differs"

# --- eight concurrent clients (check and recheck interleaved) ---------------
i=0
while [ $i -lt 8 ]; do
  if [ $((i % 2)) = 0 ]; then
    "$STQC" check -e "$OK_SRC" --builtins pos,neg --server "$SOCK" \
      >"$WORK/conc_$i.out" 2>"$WORK/conc_$i.err" &
  else
    "$STQC" recheck -e "$OK_SRC" --builtins pos,neg --unit "conc" \
      --server "$SOCK" >"$WORK/conc_$i.out" 2>"$WORK/conc_$i.err" &
  fi
  eval "CONC_PID_$i=$!"
  i=$((i + 1))
done
i=0
while [ $i -lt 8 ]; do
  eval "wait \$CONC_PID_$i" || fail "concurrent client $i exited non-zero"
  cmp -s "$WORK/ok_local.out" "$WORK/conc_$i.out" || fail "concurrent client $i stdout differs"
  cmp -s "$WORK/ok_local.err" "$WORK/conc_$i.err" || fail "concurrent client $i stderr differs"
  i=$((i + 1))
done

# --- warm shared cache: the second prove never calls the prover -------------
"$STQC" prove --server "$SOCK" >/dev/null 2>&1 || fail "cold prove failed"
"$STQC" prove --metrics --server "$SOCK" >"$WORK/warm.out" 2>&1 \
  || fail "warm prove failed"
OBLIG=$(sed -n 's/^prove\.obligations = //p' "$WORK/warm.out")
FROM_CACHE=$(sed -n 's/^prove\.obligations_from_cache = //p' "$WORK/warm.out")
[ -n "$OBLIG" ] && [ "$OBLIG" -gt 0 ] || fail "warm prove reported no obligations"
[ "$OBLIG" = "$FROM_CACHE" ] || fail "warm prove proved again: $FROM_CACHE/$OBLIG from cache"

# --- control requests -------------------------------------------------------
"$STQC" status --server "$SOCK" >"$WORK/status.out" 2>&1 || fail "status failed"
grep -q '^server\.requests = ' "$WORK/status.out" || fail "status missing server.requests"
grep -q '^prover\.cache\.entries = ' "$WORK/status.out" || fail "status missing cache entries"

# --- SIGTERM: graceful drain, cache persisted -------------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID"
DAEMON_EXIT=$?
DAEMON_PID=
[ "$DAEMON_EXIT" = 0 ] || fail "daemon exit after SIGTERM: $DAEMON_EXIT"
[ -s "$CACHE" ] || fail "cache file not persisted at $CACHE"
head -1 "$CACHE" | grep -q 'stq-prover-cache-v1' || fail "cache file has wrong header"

# --- a fresh daemon starts warm from the persisted cache --------------------
"$STQD" --socket "$SOCK" --cache-file "$CACHE" 2>>"$WORK/stqd.err" &
DAEMON_PID=$!
wait_for_socket || fail "second daemon did not come up"
"$STQC" prove --metrics --server "$SOCK" >"$WORK/warm2.out" 2>&1 \
  || fail "prove against restarted daemon failed"
grep -q '^prover\.cache\.misses = 0$' "$WORK/warm2.out" \
  || fail "restarted daemon was not warm"
"$STQC" shutdown --server "$SOCK" >/dev/null 2>&1 || fail "shutdown request failed"
wait "$DAEMON_PID"
DAEMON_EXIT=$?
DAEMON_PID=
[ "$DAEMON_EXIT" = 0 ] || fail "daemon exit after shutdown request: $DAEMON_EXIT"

if [ "$FAILURES" -ne 0 ]; then
  echo "server_smoke: $FAILURES failure(s)" >&2
  echo "--- daemon stderr ---" >&2
  cat "$WORK/stqd.err" >&2
  exit 1
fi
echo "server_smoke: all checks passed"
