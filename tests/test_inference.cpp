//===- test_inference.cpp - Tests for qualifier inference -----------------===//
//
// The section 8 future-work extension: inferring value-qualifier
// annotations as the greatest fixpoint consistent with every flow into
// each variable.
//
//===----------------------------------------------------------------------===//

#include "checker/Inference.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"
#include "qual/Builtins.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;

namespace {

struct Setup {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog;
  InferenceOutcome Outcome;
};

std::unique_ptr<Setup> infer(const std::vector<std::string> &QualNames,
                             const std::string &Source,
                             InferenceOptions Options = {}) {
  auto S = std::make_unique<Setup>();
  EXPECT_TRUE(qual::loadBuiltinQualifiers(QualNames, S->Quals, S->Diags));
  S->Prog = parseProgram(Source, S->Quals.names(), S->Diags);
  EXPECT_FALSE(S->Diags.hasErrors());
  EXPECT_TRUE(runSema(*S->Prog, S->Quals.refNames(), S->Diags));
  EXPECT_TRUE(lowerProgram(*S->Prog, S->Diags));
  S->Outcome = inferQualifiers(*S->Prog, S->Quals, Options);
  return S;
}

const VarDecl *findVar(const Program &Prog, const std::string &Name) {
  // Globals.
  for (const VarDecl *G : Prog.Globals)
    if (G->Name == Name)
      return G;
  // Walk function bodies and parameters.
  const VarDecl *Found = nullptr;
  std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
    if (!S || Found)
      return;
    if (const auto *Block = dyn_cast<BlockStmt>(S)) {
      for (const Stmt *Sub : Block->Stmts)
        Walk(Sub);
    } else if (const auto *Decl = dyn_cast<DeclStmt>(S)) {
      if (Decl->Var->Name == Name)
        Found = Decl->Var;
    } else if (const auto *If = dyn_cast<IfStmt>(S)) {
      Walk(If->Then);
      Walk(If->Else);
    } else if (const auto *While = dyn_cast<WhileStmt>(S)) {
      Walk(While->Body);
    } else if (const auto *For = dyn_cast<ForStmt>(S)) {
      Walk(For->Init);
      Walk(For->Step);
      Walk(For->Body);
    }
  };
  for (const FuncDecl *Fn : Prog.Functions) {
    for (const VarDecl *P : Fn->Params)
      if (P->Name == Name)
        return P;
    if (Fn->isDefinition())
      Walk(Fn->Body);
    if (Found)
      return Found;
  }
  return nullptr;
}

bool inferred(const Setup &S, const std::string &Var,
              const std::string &Qual) {
  const VarDecl *V = findVar(*S.Prog, Var);
  if (!V)
    return false;
  auto Found = S.Outcome.Inferred.find(V);
  return Found != S.Outcome.Inferred.end() && Found->second.count(Qual);
}

TEST(Inference, ConstantInitializerGivesPos) {
  auto S = infer({"pos", "neg", "nonneg", "nonzero"},
                 "int f() { int x = 3; return x; }");
  EXPECT_TRUE(inferred(*S, "x", "pos"));
  EXPECT_TRUE(inferred(*S, "x", "nonzero"));
  EXPECT_TRUE(inferred(*S, "x", "nonneg"));
  EXPECT_FALSE(inferred(*S, "x", "neg"));
}

TEST(Inference, PropagatesThroughChains) {
  auto S = infer({"pos", "neg"},
                 "int f() {\n"
                 "  int a = 5;\n"
                 "  int b = a;\n"
                 "  int c = b * a;\n"
                 "  return c;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "a", "pos"));
  EXPECT_TRUE(inferred(*S, "b", "pos"));
  EXPECT_TRUE(inferred(*S, "c", "pos"));
}

TEST(Inference, CyclesKeepQualifiers) {
  // The greatest fixpoint keeps pos on a mutually-dependent pair seeded
  // with a positive constant.
  auto S = infer({"pos", "neg"},
                 "int f(int k) {\n"
                 "  int x = 3;\n"
                 "  int y = x;\n"
                 "  x = y;\n"
                 "  y = x;\n"
                 "  return x + y;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "x", "pos"));
  EXPECT_TRUE(inferred(*S, "y", "pos"));
}

TEST(Inference, NegativeAssignmentRemoves) {
  auto S = infer({"pos", "neg", "nonzero"},
                 "int f(int c) {\n"
                 "  int x = 3;\n"
                 "  if (c) x = -1;\n"
                 "  return x;\n"
                 "}");
  EXPECT_FALSE(inferred(*S, "x", "pos"));
  EXPECT_FALSE(inferred(*S, "x", "neg"));
  EXPECT_TRUE(inferred(*S, "x", "nonzero")); // Both 3 and -1 are nonzero.
}

TEST(Inference, ParametersInferredFromCallSites) {
  auto S = infer({"pos", "neg"},
                 "int g(int v) { return v; }\n"
                 "int f() { return g(4) + g(9); }");
  EXPECT_TRUE(inferred(*S, "v", "pos"));

  auto S2 = infer({"pos", "neg"},
                  "int g(int v) { return v; }\n"
                  "int f() { return g(4) + g(0); }");
  EXPECT_FALSE(inferred(*S2, "v", "pos"));
}

TEST(Inference, NonnullForAddressTakenLocals) {
  auto S = infer({"nonnull"},
                 "int f() {\n"
                 "  int x = 1;\n"
                 "  int* p = &x;\n"
                 "  return *p;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "p", "nonnull"));
}

TEST(Inference, NullableStaysUnannotated) {
  auto S = infer({"nonnull"},
                 "int f(int c) {\n"
                 "  int x = 1;\n"
                 "  int* p = &x;\n"
                 "  if (c) p = NULL;\n"
                 "  return 0;\n"
                 "}");
  EXPECT_FALSE(inferred(*S, "p", "nonnull"));
}

TEST(Inference, DeclaredQualifiersNotReReported) {
  auto S = infer({"pos", "neg"}, "int f() { int pos x = 3; return x; }");
  EXPECT_FALSE(inferred(*S, "x", "pos"));
}

TEST(Inference, VariablesWithoutFlowsSkipped) {
  auto S = infer({"pos", "neg"}, "int f(int unused) { return 1; }");
  EXPECT_FALSE(inferred(*S, "unused", "pos"));
}

TEST(Inference, LocalsOnlySkipsGlobals) {
  InferenceOptions Options;
  Options.LocalsOnly = true;
  auto S = infer({"pos", "neg"}, "int g = 5;\nint f() { return g; }",
                 Options);
  EXPECT_FALSE(inferred(*S, "g", "pos"));
  auto S2 = infer({"pos", "neg"}, "int g = 5;\nint f() { return g; }");
  EXPECT_TRUE(inferred(*S2, "g", "pos"));
}

TEST(Inference, ApplyInferenceMakesCheckerAcceptMore) {
  // Without annotations the dereference errors; inference discovers the
  // nonnull annotation and the checker then accepts.
  const char *Source = "int deref(int* nonnull q) { return *q; }\n"
                       "int f() {\n"
                       "  int x = 1;\n"
                       "  int* p = &x;\n"
                       "  return deref(p);\n"
                       "}\n";
  auto S = infer({"nonnull"}, Source);
  EXPECT_TRUE(inferred(*S, "p", "nonnull"));

  applyInference(*S->Prog, S->Outcome);
  DiagnosticEngine D2;
  ASSERT_TRUE(runSema(*S->Prog, S->Quals.refNames(), D2));
  QualChecker Checker(*S->Prog, S->Quals, D2, {});
  auto Result = Checker.run();
  EXPECT_EQ(Result.QualErrors, 0u);
}

TEST(Inference, InferenceIsValidatedByChecker) {
  // Applying whatever inference finds never introduces new qualifier
  // errors (inference only claims what the checker can derive).
  const char *Source = "int h(int pos a);\n"
                       "int f(int c) {\n"
                       "  int x = 2;\n"
                       "  int y = x * 3;\n"
                       "  int z = y - x;\n"
                       "  if (c) z = -z;\n"
                       "  return h(y) + z;\n"
                       "}\n";
  auto S = infer({"pos", "neg", "nonneg", "nonzero"}, Source);
  DiagnosticEngine Before;
  {
    QualChecker Checker(*S->Prog, S->Quals, Before, {});
    Checker.run();
  }
  applyInference(*S->Prog, S->Outcome);
  DiagnosticEngine After;
  ASSERT_TRUE(runSema(*S->Prog, S->Quals.refNames(), After));
  QualChecker Checker(*S->Prog, S->Quals, After, {});
  auto Result = Checker.run();
  EXPECT_LE(Result.QualErrors, Before.countInPhase("qualcheck"));
}

TEST(Inference, ConvergesQuickly) {
  auto S = infer({"pos", "neg", "nonneg", "nonzero"},
                 "int f() {\n"
                 "  int a = 1; int b = a; int c = b; int d = c;\n"
                 "  a = d;\n"
                 "  return a;\n"
                 "}");
  EXPECT_LE(S->Outcome.Iterations, 6u);
  EXPECT_TRUE(inferred(*S, "d", "pos"));
}

} // namespace
