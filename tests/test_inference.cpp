//===- test_inference.cpp - Tests for qualifier inference -----------------===//
//
// The section 8 future-work extension: inferring value-qualifier
// annotations as the greatest fixpoint consistent with every flow into
// each variable.
//
//===----------------------------------------------------------------------===//

#include "checker/ConstraintInference.h"
#include "checker/Inference.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Printer.h"
#include "cminus/Sema.h"
#include "cqual/Cqual.h"
#include "qual/Builtins.h"
#include "server/Exec.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace stq;
using namespace stq::checker;
using namespace stq::cminus;

namespace {

struct Setup {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog;
  InferenceOutcome Outcome;
};

std::unique_ptr<Setup> infer(const std::vector<std::string> &QualNames,
                             const std::string &Source,
                             InferenceOptions Options = {}) {
  auto S = std::make_unique<Setup>();
  EXPECT_TRUE(qual::loadBuiltinQualifiers(QualNames, S->Quals, S->Diags));
  S->Prog = parseProgram(Source, S->Quals.names(), S->Diags);
  EXPECT_FALSE(S->Diags.hasErrors());
  EXPECT_TRUE(runSema(*S->Prog, S->Quals.refNames(), S->Diags));
  EXPECT_TRUE(lowerProgram(*S->Prog, S->Diags));
  S->Outcome = inferQualifiers(*S->Prog, S->Quals, Options);
  return S;
}

const VarDecl *findVar(const Program &Prog, const std::string &Name) {
  // Globals.
  for (const VarDecl *G : Prog.Globals)
    if (G->Name == Name)
      return G;
  // Walk function bodies and parameters.
  const VarDecl *Found = nullptr;
  std::function<void(const Stmt *)> Walk = [&](const Stmt *S) {
    if (!S || Found)
      return;
    if (const auto *Block = dyn_cast<BlockStmt>(S)) {
      for (const Stmt *Sub : Block->Stmts)
        Walk(Sub);
    } else if (const auto *Decl = dyn_cast<DeclStmt>(S)) {
      if (Decl->Var->Name == Name)
        Found = Decl->Var;
    } else if (const auto *If = dyn_cast<IfStmt>(S)) {
      Walk(If->Then);
      Walk(If->Else);
    } else if (const auto *While = dyn_cast<WhileStmt>(S)) {
      Walk(While->Body);
    } else if (const auto *For = dyn_cast<ForStmt>(S)) {
      Walk(For->Init);
      Walk(For->Step);
      Walk(For->Body);
    }
  };
  for (const FuncDecl *Fn : Prog.Functions) {
    for (const VarDecl *P : Fn->Params)
      if (P->Name == Name)
        return P;
    if (Fn->isDefinition())
      Walk(Fn->Body);
    if (Found)
      return Found;
  }
  return nullptr;
}

bool inferred(const Setup &S, const std::string &Var,
              const std::string &Qual) {
  const VarDecl *V = findVar(*S.Prog, Var);
  if (!V)
    return false;
  auto Found = S.Outcome.Inferred.find(V);
  return Found != S.Outcome.Inferred.end() && Found->second.count(Qual);
}

TEST(Inference, ConstantInitializerGivesPos) {
  auto S = infer({"pos", "neg", "nonneg", "nonzero"},
                 "int f() { int x = 3; return x; }");
  EXPECT_TRUE(inferred(*S, "x", "pos"));
  EXPECT_TRUE(inferred(*S, "x", "nonzero"));
  EXPECT_TRUE(inferred(*S, "x", "nonneg"));
  EXPECT_FALSE(inferred(*S, "x", "neg"));
}

TEST(Inference, PropagatesThroughChains) {
  auto S = infer({"pos", "neg"},
                 "int f() {\n"
                 "  int a = 5;\n"
                 "  int b = a;\n"
                 "  int c = b * a;\n"
                 "  return c;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "a", "pos"));
  EXPECT_TRUE(inferred(*S, "b", "pos"));
  EXPECT_TRUE(inferred(*S, "c", "pos"));
}

TEST(Inference, CyclesKeepQualifiers) {
  // The greatest fixpoint keeps pos on a mutually-dependent pair seeded
  // with a positive constant.
  auto S = infer({"pos", "neg"},
                 "int f(int k) {\n"
                 "  int x = 3;\n"
                 "  int y = x;\n"
                 "  x = y;\n"
                 "  y = x;\n"
                 "  return x + y;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "x", "pos"));
  EXPECT_TRUE(inferred(*S, "y", "pos"));
}

TEST(Inference, NegativeAssignmentRemoves) {
  auto S = infer({"pos", "neg", "nonzero"},
                 "int f(int c) {\n"
                 "  int x = 3;\n"
                 "  if (c) x = -1;\n"
                 "  return x;\n"
                 "}");
  EXPECT_FALSE(inferred(*S, "x", "pos"));
  EXPECT_FALSE(inferred(*S, "x", "neg"));
  EXPECT_TRUE(inferred(*S, "x", "nonzero")); // Both 3 and -1 are nonzero.
}

TEST(Inference, ParametersInferredFromCallSites) {
  auto S = infer({"pos", "neg"},
                 "int g(int v) { return v; }\n"
                 "int f() { return g(4) + g(9); }");
  EXPECT_TRUE(inferred(*S, "v", "pos"));

  auto S2 = infer({"pos", "neg"},
                  "int g(int v) { return v; }\n"
                  "int f() { return g(4) + g(0); }");
  EXPECT_FALSE(inferred(*S2, "v", "pos"));
}

TEST(Inference, NonnullForAddressTakenLocals) {
  auto S = infer({"nonnull"},
                 "int f() {\n"
                 "  int x = 1;\n"
                 "  int* p = &x;\n"
                 "  return *p;\n"
                 "}");
  EXPECT_TRUE(inferred(*S, "p", "nonnull"));
}

TEST(Inference, NullableStaysUnannotated) {
  auto S = infer({"nonnull"},
                 "int f(int c) {\n"
                 "  int x = 1;\n"
                 "  int* p = &x;\n"
                 "  if (c) p = NULL;\n"
                 "  return 0;\n"
                 "}");
  EXPECT_FALSE(inferred(*S, "p", "nonnull"));
}

TEST(Inference, DeclaredQualifiersNotReReported) {
  auto S = infer({"pos", "neg"}, "int f() { int pos x = 3; return x; }");
  EXPECT_FALSE(inferred(*S, "x", "pos"));
}

TEST(Inference, VariablesWithoutFlowsSkipped) {
  auto S = infer({"pos", "neg"}, "int f(int unused) { return 1; }");
  EXPECT_FALSE(inferred(*S, "unused", "pos"));
}

TEST(Inference, LocalsOnlySkipsGlobals) {
  InferenceOptions Options;
  Options.LocalsOnly = true;
  auto S = infer({"pos", "neg"}, "int g = 5;\nint f() { return g; }",
                 Options);
  EXPECT_FALSE(inferred(*S, "g", "pos"));
  auto S2 = infer({"pos", "neg"}, "int g = 5;\nint f() { return g; }");
  EXPECT_TRUE(inferred(*S2, "g", "pos"));
}

TEST(Inference, ApplyInferenceMakesCheckerAcceptMore) {
  // Without annotations the dereference errors; inference discovers the
  // nonnull annotation and the checker then accepts.
  const char *Source = "int deref(int* nonnull q) { return *q; }\n"
                       "int f() {\n"
                       "  int x = 1;\n"
                       "  int* p = &x;\n"
                       "  return deref(p);\n"
                       "}\n";
  auto S = infer({"nonnull"}, Source);
  EXPECT_TRUE(inferred(*S, "p", "nonnull"));

  applyInference(*S->Prog, S->Outcome);
  DiagnosticEngine D2;
  ASSERT_TRUE(runSema(*S->Prog, S->Quals.refNames(), D2));
  QualChecker Checker(*S->Prog, S->Quals, D2, {});
  auto Result = Checker.run();
  EXPECT_EQ(Result.QualErrors, 0u);
}

TEST(Inference, InferenceIsValidatedByChecker) {
  // Applying whatever inference finds never introduces new qualifier
  // errors (inference only claims what the checker can derive).
  const char *Source = "int h(int pos a);\n"
                       "int f(int c) {\n"
                       "  int x = 2;\n"
                       "  int y = x * 3;\n"
                       "  int z = y - x;\n"
                       "  if (c) z = -z;\n"
                       "  return h(y) + z;\n"
                       "}\n";
  auto S = infer({"pos", "neg", "nonneg", "nonzero"}, Source);
  DiagnosticEngine Before;
  {
    QualChecker Checker(*S->Prog, S->Quals, Before, {});
    Checker.run();
  }
  applyInference(*S->Prog, S->Outcome);
  DiagnosticEngine After;
  ASSERT_TRUE(runSema(*S->Prog, S->Quals.refNames(), After));
  QualChecker Checker(*S->Prog, S->Quals, After, {});
  auto Result = Checker.run();
  EXPECT_LE(Result.QualErrors, Before.countInPhase("qualcheck"));
}

TEST(Inference, ConvergesQuickly) {
  auto S = infer({"pos", "neg", "nonneg", "nonzero"},
                 "int f() {\n"
                 "  int a = 1; int b = a; int c = b; int d = c;\n"
                 "  a = d;\n"
                 "  return a;\n"
                 "}");
  EXPECT_LE(S->Outcome.Iterations, 6u);
  EXPECT_TRUE(inferred(*S, "d", "pos"));
}

//===----------------------------------------------------------------------===//
// The sharded constraint engine (ConstraintInference.h)
//===----------------------------------------------------------------------===//

/// Front end only: parse, Sema, lower — for tests that run the constraint
/// engine themselves.
struct Front {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog;
};

std::unique_ptr<Front> frontEnd(const std::vector<std::string> &QualNames,
                                const std::string &Source) {
  auto F = std::make_unique<Front>();
  EXPECT_TRUE(qual::loadBuiltinQualifiers(QualNames, F->Quals, F->Diags));
  F->Prog = parseProgram(Source, F->Quals.names(), F->Diags);
  EXPECT_FALSE(F->Diags.hasErrors());
  EXPECT_TRUE(runSema(*F->Prog, F->Quals.refNames(), F->Diags));
  EXPECT_TRUE(lowerProgram(*F->Prog, F->Diags));
  return F;
}

/// Every (unit, function, var, loc, qualifier) pair in a report — the full
/// inferred set when \p MinimalOnly is false, the suggestion set otherwise.
std::set<std::string> pairKeys(const InferenceReport &R,
                               bool MinimalOnly = false) {
  std::set<std::string> Keys;
  for (const InferenceSuggestion &S : R.Suggestions)
    for (const SuggestedQual &Q : S.Quals) {
      if (MinimalOnly && Q.Implied)
        continue;
      Keys.insert(std::to_string(S.Unit) + ":" + S.Function + ":" + S.Var +
                  ":" + S.Loc.str() + ":" + Q.Qual);
    }
  return Keys;
}

const InferenceSuggestion *findSuggestion(const InferenceReport &R,
                                          const std::string &Var) {
  for (const InferenceSuggestion &S : R.Suggestions)
    if (S.Var == Var)
      return &S;
  return nullptr;
}

TEST(ConstraintInference, FullSetMatchesFixpointReference) {
  // Both engines compute the same greatest fixpoint; the constraint
  // engine's minimization only re-labels pairs, never removes them.
  const char *Source = "int g = 7;\n"
                       "int scale(int v) { return v * 2; }\n"
                       "int f(int c) {\n"
                       "  int x = 3;\n"
                       "  int y = x;\n"
                       "  x = y;\n"
                       "  int z = scale(x) + scale(g);\n"
                       "  if (c) z = -1;\n"
                       "  return z;\n"
                       "}\n";
  auto F = frontEnd({"pos", "neg", "nonneg", "nonzero"}, Source);
  ConstraintInferenceOptions Options;
  InferenceReport Cons = inferWithConstraints(*F->Prog, F->Quals, Options);
  InferenceReport Fix = fixpointReport(*F->Prog, F->Quals, Options);
  EXPECT_EQ(pairKeys(Cons), pairKeys(Fix));
  EXPECT_GT(Cons.totalInferred(), 0u);
  EXPECT_EQ(Cons.totalInferred(), Fix.totalInferred());
}

TEST(ConstraintInference, FullSetMatchesFixpointOnWorkloadFarm) {
  workloads::GeneratedWorkload Farm = workloads::makeInferenceFarm(8);
  auto F = frontEnd({"pos", "neg", "nonneg", "nonzero"}, Farm.Source);
  ConstraintInferenceOptions Options;
  Options.Jobs = 4;
  InferenceReport Cons = inferWithConstraints(*F->Prog, F->Quals, Options);
  InferenceReport Fix = fixpointReport(*F->Prog, F->Quals, Options);
  EXPECT_EQ(pairKeys(Cons), pairKeys(Fix));
  EXPECT_GT(Cons.Stats.Constraints, 0u);
}

TEST(ConstraintInference, MinimizationDemotesProverImpliedQualifiers) {
  // x = 3 infers pos, nonneg, and nonzero; nonneg and nonzero both carry
  // a `E1, where pos(E1)` derivation clause and their invariants follow
  // from value > 0, so the minimal suggestion is pos alone.
  auto F = frontEnd({"pos", "neg", "nonneg", "nonzero"},
                    "int f() { int x = 3; return x; }");
  InferenceReport R =
      inferWithConstraints(*F->Prog, F->Quals, ConstraintInferenceOptions{});
  const InferenceSuggestion *S = findSuggestion(R, "x");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Quals.size(), 3u); // sorted: nonneg, nonzero, pos
  EXPECT_EQ(S->Quals[0].Qual, "nonneg");
  EXPECT_TRUE(S->Quals[0].Implied);
  EXPECT_EQ(S->Quals[0].Provenance, "implied:pos");
  EXPECT_EQ(S->Quals[1].Qual, "nonzero");
  EXPECT_TRUE(S->Quals[1].Implied);
  EXPECT_EQ(S->Quals[1].Provenance, "implied:pos");
  EXPECT_EQ(S->Quals[2].Qual, "pos");
  EXPECT_FALSE(S->Quals[2].Implied);
  EXPECT_EQ(S->Quals[2].Provenance, "solver");
  EXPECT_EQ(R.Stats.Suggested, 1u);
  EXPECT_EQ(R.Stats.Implied, 2u);
  EXPECT_GT(R.Stats.ProverQueries, 0u);

  // With refinement off, all three are plain suggestions.
  ConstraintInferenceOptions NoRefine;
  NoRefine.ProverRefinement = false;
  InferenceReport Full = inferWithConstraints(*F->Prog, F->Quals, NoRefine);
  EXPECT_EQ(Full.Stats.Suggested, 3u);
  EXPECT_EQ(Full.Stats.Implied, 0u);
  EXPECT_EQ(pairKeys(R), pairKeys(Full)); // same full set either way
}

TEST(ConstraintInference, AddressTakenVariablesAreNotSuggested) {
  // Regression (found by the inference fuzz oracle): qualifiers are
  // invariant below pointers, so inferring pos on an address-taken `a`
  // would retype every `&a` and break re-checking.
  const char *Source = "int deref(int* nonnull q) { return *q; }\n"
                       "int f() {\n"
                       "  int a = 3;\n"
                       "  int* p = &a;\n"
                       "  return deref(p) + a;\n"
                       "}\n";
  auto F = frontEnd({"pos", "neg", "nonnull"}, Source);
  InferenceReport R =
      inferWithConstraints(*F->Prog, F->Quals, ConstraintInferenceOptions{});
  EXPECT_EQ(findSuggestion(R, "a"), nullptr);
  const InferenceSuggestion *P = findSuggestion(R, "p");
  ASSERT_NE(P, nullptr); // p itself is not address-taken
  EXPECT_EQ(P->Quals.size(), 1u);
  EXPECT_EQ(P->Quals[0].Qual, "nonnull");
}

TEST(ConstraintInference, SuggestionBudgetTruncatesReportOnly) {
  auto F = frontEnd({"pos", "neg"},
                    "int f() {\n"
                    "  int a = 1; int b = a; int c = b;\n"
                    "  return c;\n"
                    "}");
  ConstraintInferenceOptions Options;
  Options.MaxSuggestions = 1;
  InferenceReport R = inferWithConstraints(*F->Prog, F->Quals, Options);
  EXPECT_EQ(R.Suggestions.size(), 1u);
  EXPECT_EQ(R.Stats.Truncated, 2u);
  // The keeper is the deterministically smallest key.
  EXPECT_EQ(R.Suggestions[0].Var, "a");
}

TEST(ConstraintInference, LocalsOnlyScopeSkipsGlobals) {
  auto F = frontEnd({"pos", "neg"},
                    "int g = 5;\nint f() { int x = g; return x; }");
  ConstraintInferenceOptions Options;
  Options.Scope = InferenceScope::LocalsOnly;
  InferenceReport R = inferWithConstraints(*F->Prog, F->Quals, Options);
  EXPECT_EQ(findSuggestion(R, "g"), nullptr);
  // x still gets nothing here (its flow reads the unannotated global),
  // but under Program scope both are suggested.
  ConstraintInferenceOptions Program;
  InferenceReport Full = inferWithConstraints(*F->Prog, F->Quals, Program);
  ASSERT_NE(findSuggestion(Full, "g"), nullptr);
  ASSERT_NE(findSuggestion(Full, "x"), nullptr);
}

TEST(ConstraintInference, SuggestionsCarryStableKeys) {
  const char *Source = "int g = 2;\n"
                       "int f(int v) { int x = v * g; return g; }\n"
                       "int main() { return f(4); }\n";
  auto F = frontEnd({"pos", "neg"}, Source);
  InferenceReport R =
      inferWithConstraints(*F->Prog, F->Quals, ConstraintInferenceOptions{});
  const InferenceSuggestion *G = findSuggestion(R, "g");
  ASSERT_NE(G, nullptr);
  EXPECT_EQ(G->Unit, 0u);
  EXPECT_EQ(G->Function, "");
  EXPECT_EQ(G->Kind, "global");
  const InferenceSuggestion *V = findSuggestion(R, "v");
  ASSERT_NE(V, nullptr);
  EXPECT_EQ(V->Unit, 1u); // f is the first function
  EXPECT_EQ(V->Function, "f");
  EXPECT_EQ(V->Kind, "parameter");
  const InferenceSuggestion *X = findSuggestion(R, "x");
  ASSERT_NE(X, nullptr);
  EXPECT_EQ(X->Function, "f");
  EXPECT_EQ(X->Kind, "local");
  EXPECT_GT(X->Loc.Line, 0u);
}

/// Runs `stqc infer` semantics through the shared executor.
server::ExecResult runInfer(const std::string &Source, unsigned Jobs,
                            bool Apply, bool Json = false) {
  server::Invocation Inv;
  Inv.Command = "infer";
  Inv.Source = Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = {"pos", "neg", "nonneg", "nonzero", "nonnull"};
  Inv.Session.Jobs = Jobs;
  Inv.Session.Infer.Apply = Apply;
  Inv.InferJson = Json;
  return server::executeInvocation(Inv);
}

server::ExecResult runCheck(const std::string &Source) {
  server::Invocation Inv;
  Inv.Command = "check";
  Inv.Source = Source;
  Inv.HasSource = true;
  Inv.Session.Builtins = {"pos", "neg", "nonneg", "nonzero", "nonnull"};
  return server::executeInvocation(Inv);
}

TEST(ConstraintInference, ApplyRecheckesCleanAndByteStableAcrossJobs) {
  // The PR's differential acceptance, in-process: for every program,
  // the suggestion report is byte-identical at --jobs 1 and 4, and the
  // applied annotations re-check with zero qualifier errors.
  const std::vector<std::string> Programs = {
      "int f() { int x = 3; int y = x; return y; }\n",
      "int g(int v) { return v; }\nint f() { return g(4) + g(9); }\n",
      "int deref(int* nonnull q) { return *q; }\n"
      "int f() { int a = 1; int* p = &a; return deref(p); }\n",
      workloads::makeInferenceFarm(10).Source,
  };
  for (const std::string &Source : Programs) {
    server::ExecResult R1 = runInfer(Source, 1, /*Apply=*/false);
    server::ExecResult R4 = runInfer(Source, 4, /*Apply=*/false);
    EXPECT_EQ(R1.Out, R4.Out) << Source;
    EXPECT_EQ(R1.Err, R4.Err) << Source;
    EXPECT_EQ(R1.ExitCode, R4.ExitCode) << Source;

    server::ExecResult Applied = runInfer(Source, 1, /*Apply=*/true);
    ASSERT_EQ(Applied.ExitCode, 0) << Source;
    server::ExecResult Recheck = runCheck(Applied.Out);
    EXPECT_EQ(Recheck.ExitCode, 0) << "annotated program must re-check "
                                      "clean:\n"
                                   << Applied.Out;

    // Applying is idempotent up to bytes: re-inferring the annotated
    // program has nothing new to suggest.
    server::ExecResult Again = runInfer(Applied.Out, 1, /*Apply=*/true);
    EXPECT_EQ(Again.Out, Applied.Out) << Source;
  }
}

//===----------------------------------------------------------------------===//
// Two-point taint lattice: agreement with the CQUAL baseline
//===----------------------------------------------------------------------===//

TEST(TaintFlows, VerdictAgreesWithCqualBaseline) {
  struct Case {
    const char *Source;
    bool Clean;
  };
  const Case Cases[] = {
      {"int f(int tainted t) { int untainted u = 3; return t + u; }\n", true},
      {"int f(int tainted t) { int untainted u = t; return u; }\n", false},
      {"int id(int v) { return v; }\n"
       "int f(int tainted t) { int untainted u = id(t); return u; }\n",
       false},
      {"int untainted sink(int untainted v) { return v; }\n"
       "int f() { int x = 4; return sink(x); }\n",
       true},
  };
  for (const Case &C : Cases) {
    auto F = frontEnd({"tainted", "untainted"}, C.Source);
    std::vector<TaintFinding> Ours = checkTaintFlows(*F->Prog);
    cqual::InferenceResult Base = cqual::runInference(*F->Prog);
    EXPECT_EQ(Ours.empty(), C.Clean) << C.Source;
    EXPECT_EQ(Base.clean(), C.Clean) << C.Source;
    EXPECT_EQ(Ours.empty(), Base.clean())
        << "engines disagree on:\n"
        << C.Source;
  }
}

} // namespace
