//===- test_interp.cpp - Tests for the interpreter and run-time checks ----===//

#include "interp/Interp.h"

#include "qual/Builtins.h"
#include "qual/QualParser.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::interp;

namespace {

qual::QualifierSet loadQuals(const std::vector<std::string> &Names) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  EXPECT_TRUE(qual::loadBuiltinQualifiers(Names, Set, Diags));
  return Set;
}

RunResult run(const std::string &Source,
              const std::vector<std::string> &QualNames = {}) {
  qual::QualifierSet Set = loadQuals(QualNames);
  DiagnosticEngine Diags;
  RunResult R = runSource(Source, Set, Diags, {});
  EXPECT_FALSE(Diags.hasErrors()) << [&] {
    std::string S;
    for (const auto &D : Diags.diagnostics())
      S += D.str() + "\n";
    return S;
  }();
  return R;
}

//===----------------------------------------------------------------------===//
// Basic execution
//===----------------------------------------------------------------------===//

TEST(Interp, ReturnsConstant) {
  RunResult R = run("int main() { return 42; }");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 42);
}

TEST(Interp, Arithmetic) {
  RunResult R = run("int main() { return (2 + 3) * 4 - 20 / 5; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 16);
}

TEST(Interp, LocalsAndAssignment) {
  RunResult R = run("int main() { int x = 5; int y; y = x * 2; return y; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 10);
}

TEST(Interp, ControlFlow) {
  RunResult R = run("int main() {\n"
                    "  int s = 0;\n"
                    "  for (int i = 1; i <= 10; i = i + 1) {\n"
                    "    if (i % 2 == 0) s = s + i;\n"
                    "  }\n"
                    "  return s;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 30);
}

TEST(Interp, WhileWithBreak) {
  RunResult R = run("int main() {\n"
                    "  int i = 0;\n"
                    "  while (1) { i = i + 1; if (i == 7) break; }\n"
                    "  return i;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 7);
}

TEST(Interp, RecursiveCalls) {
  RunResult R = run("int fact(int n) {\n"
                    "  if (n <= 1) return 1;\n"
                    "  int rec = fact(n - 1);\n"
                    "  return n * rec;\n"
                    "}\n"
                    "int main() { return fact(6); }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 720);
}

TEST(Interp, GlobalsSharedAcrossCalls) {
  RunResult R = run("int counter = 0;\n"
                    "void bump() { counter = counter + 1; }\n"
                    "int main() { bump(); bump(); bump(); return counter; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 3);
}

TEST(Interp, PointersAndAddressOf) {
  RunResult R = run("int main() {\n"
                    "  int x = 1;\n"
                    "  int* p = &x;\n"
                    "  *p = 99;\n"
                    "  return x;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 99);
}

TEST(Interp, MallocAndArrayIndexing) {
  RunResult R = run("int main() {\n"
                    "  int* a = (int*) malloc(sizeof(int) * 5);\n"
                    "  for (int i = 0; i < 5; i = i + 1) a[i] = i * i;\n"
                    "  return a[4];\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 16);
}

TEST(Interp, StructFields) {
  RunResult R = run("struct point { int x; int y; };\n"
                    "int main() {\n"
                    "  struct point p;\n"
                    "  p.x = 3;\n"
                    "  p.y = 4;\n"
                    "  return p.x * p.x + p.y * p.y;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 25);
}

TEST(Interp, StructThroughPointer) {
  RunResult R = run(
      "struct node { int value; struct node* next; };\n"
      "int main() {\n"
      "  struct node* n = (struct node*) malloc(sizeof(struct node));\n"
      "  n->value = 11;\n"
      "  n->next = NULL;\n"
      "  if (n->next == NULL) return n->value;\n"
      "  return 0;\n"
      "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 11);
}

TEST(Interp, ZeroInitializedLocals) {
  RunResult R = run("int main() { int x; int* p; if (p == NULL) return x; "
                    "return 1; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 0);
}

//===----------------------------------------------------------------------===//
// Traps
//===----------------------------------------------------------------------===//

TEST(InterpTrap, NullDereference) {
  RunResult R = run("int main() { int* p; return *p; }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("null"), std::string::npos);
}

TEST(InterpTrap, UseAfterFree) {
  RunResult R = run("int main() {\n"
                    "  int* p = (int*) malloc(sizeof(int));\n"
                    "  *p = 1;\n"
                    "  free(p);\n"
                    "  return *p;\n"
                    "}");
  EXPECT_EQ(R.Status, RunStatus::Trap);
  EXPECT_NE(R.TrapMessage.find("freed"), std::string::npos);
}

TEST(InterpTrap, OutOfBounds) {
  RunResult R = run("int main() {\n"
                    "  int* a = (int*) malloc(sizeof(int) * 2);\n"
                    "  return a[5];\n"
                    "}");
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(InterpTrap, DivisionByZero) {
  RunResult R = run("int main() { int z = 0; return 5 / z; }");
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(InterpTrap, InfiniteLoopExhaustsFuel) {
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  InterpOptions Options;
  Options.Fuel = 10000;
  RunResult R = runSource("int main() { while (1) { } return 0; }", Set,
                          Diags, Options);
  EXPECT_EQ(R.Status, RunStatus::FuelExhausted);
}

TEST(InterpTrap, ShortCircuitPreventsNullDeref) {
  RunResult R = run("int main() {\n"
                    "  int* p;\n"
                    "  if (p != NULL && *p > 0) return 1;\n"
                    "  return 2;\n"
                    "}");
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 2);
}

//===----------------------------------------------------------------------===//
// printf and format strings
//===----------------------------------------------------------------------===//

TEST(InterpPrintf, BasicFormatting) {
  RunResult R = run("int main() { printf(\"x=%d s=%s!\", 7, \"ok\");"
                    " return 0; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "x=7 s=ok!");
  EXPECT_TRUE(R.FormatViolations.empty());
}

TEST(InterpPrintf, PercentEscapes) {
  RunResult R = run("int main() { printf(\"100%%\"); return 0; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Output, "100%");
}

TEST(InterpPrintf, FormatStringVulnerabilityDetected) {
  // The bftpd bug shape: a string containing format specifiers used as a
  // format string reads nonexistent arguments.
  RunResult R = run("int main() {\n"
                    "  char* buf = \"%s%d\";\n"
                    "  printf(buf);\n"
                    "  return 0;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.FormatViolations.size(), 1u);
  EXPECT_EQ(R.FormatViolations[0].Consumed, 2u);
  EXPECT_EQ(R.FormatViolations[0].Supplied, 0u);
}

TEST(InterpPrintf, SafeWhenArgumentsMatch) {
  RunResult R = run("int main() { printf(\"%s\", \"data\"); return 0; }");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.FormatViolations.empty());
  EXPECT_EQ(R.Output, "data");
}

//===----------------------------------------------------------------------===//
// Run-time qualifier checks (section 2.1.3)
//===----------------------------------------------------------------------===//

TEST(InterpChecks, PassingPosCastSucceeds) {
  // Figure 2's lcm: the cast's run-time check passes for positive inputs.
  RunResult R = run("int pos gcd(int pos n, int pos m) {\n"
                    "  if (m == n) return n;\n"
                    "  if (m > n) return gcd(n, (int pos)(m - n));\n"
                    "  return gcd(m, (int pos)(n - m));\n"
                    "}\n"
                    "int pos lcm(int pos a, int pos b) {\n"
                    "  int pos d = gcd(a, b);\n"
                    "  int pos prod = a * b;\n"
                    "  return (int pos) (prod / d);\n"
                    "}\n"
                    "int main() { return lcm(4, 6); }",
                    {"pos", "neg"});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 12);
  EXPECT_GT(R.ChecksExecuted, 0u);
  EXPECT_TRUE(R.CheckFailures.empty());
}

TEST(InterpChecks, FailingPosCastSignalsFatalError) {
  RunResult R = run("int main() {\n"
                    "  int y = -3;\n"
                    "  int pos x = (int pos) y;\n"
                    "  return x;\n"
                    "}",
                    {"pos", "neg"});
  EXPECT_EQ(R.Status, RunStatus::CheckFailure);
  ASSERT_EQ(R.CheckFailures.size(), 1u);
  EXPECT_EQ(R.CheckFailures[0].Qual, "pos");
}

TEST(InterpChecks, NonnullCastCheckFiresOnNull) {
  RunResult R = run("int main() {\n"
                    "  int* p;\n"
                    "  int* nonnull q = (int* nonnull) p;\n"
                    "  return 0;\n"
                    "}",
                    {"nonnull"});
  EXPECT_EQ(R.Status, RunStatus::CheckFailure);
  ASSERT_EQ(R.CheckFailures.size(), 1u);
  EXPECT_EQ(R.CheckFailures[0].Qual, "nonnull");
}

TEST(InterpChecks, NonnullCastCheckPassesOnValidPointer) {
  RunResult R = run("int main() {\n"
                    "  int x = 5;\n"
                    "  int* p = &x;\n"
                    "  int* nonnull q = (int* nonnull) p;\n"
                    "  return *q;\n"
                    "}",
                    {"nonnull"});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 5);
  EXPECT_EQ(R.ChecksExecuted, 1u);
}

TEST(InterpChecks, ZeroFailsPosButPassesNothingElse) {
  RunResult R = run("int main() {\n"
                    "  int z = 0;\n"
                    "  int pos x = (int pos) z;\n"
                    "  return x;\n"
                    "}",
                    {"pos", "neg"});
  EXPECT_EQ(R.Status, RunStatus::CheckFailure);
}

TEST(InterpChecks, NonzeroCastChecksDisjointRanges) {
  RunResult Good = run("int main() {\n"
                       "  int v = -7;\n"
                       "  int nonzero x = (int nonzero) v;\n"
                       "  return 100 / x;\n"
                       "}",
                       {"pos", "neg", "nonzero"});
  ASSERT_TRUE(Good.ok()) << Good.TrapMessage;
  EXPECT_EQ(Good.ExitValue, -14); // C division truncates toward zero.

  RunResult Bad = run("int main() {\n"
                      "  int v = 0;\n"
                      "  int nonzero x = (int nonzero) v;\n"
                      "  return 100 / x;\n"
                      "}",
                      {"pos", "neg", "nonzero"});
  EXPECT_EQ(Bad.Status, RunStatus::CheckFailure);
  // The run-time check fires before the division could trap.
  EXPECT_TRUE(Bad.TrapMessage.empty());
}

TEST(InterpChecks, StaticallyProvableCastNotInstrumented) {
  RunResult R = run("int main() { int pos x = (int pos) 5; return x; }",
                    {"pos", "neg"});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ChecksExecuted, 0u); // Elided by the checker.
}

TEST(InterpChecks, UniqueGlobalScenarioRuns) {
  // Figure 6 executes cleanly end to end.
  RunResult R = run("int* unique array;\n"
                    "void make_array(int n) {\n"
                    "  array = (int*) malloc(sizeof(int) * n);\n"
                    "  for (int i = 0; i < n; i = i + 1)\n"
                    "    array[i] = i;\n"
                    "}\n"
                    "int main() { make_array(8); return array[7]; }",
                    {"unique"});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 7);
}

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// Additional execution semantics
//===----------------------------------------------------------------------===//

TEST(InterpMore, CharLiteralsAreIntegers) {
  RunResult R = run("int main() { char c = 'A'; return c + 1; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 66);
}

TEST(InterpMore, StringIndexing) {
  RunResult R = run("int main() { char* s = \"hello\"; return s[1]; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 'e');
}

TEST(InterpMore, StringsAreNulTerminated) {
  RunResult R = run("int main() {\n"
                    "  char* s = \"abc\";\n"
                    "  int n = 0;\n"
                    "  while (s[n] != 0) n = n + 1;\n"
                    "  return n;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 3);
}

TEST(InterpMore, NestedStructs) {
  RunResult R = run("struct inner { int a; int b; };\n"
                    "struct outer { int x; struct inner in; int y; };\n"
                    "int main() {\n"
                    "  struct outer o;\n"
                    "  o.x = 1;\n"
                    "  o.in.a = 2;\n"
                    "  o.in.b = 3;\n"
                    "  o.y = 4;\n"
                    "  return o.x * 1000 + o.in.a * 100 + o.in.b * 10 +"
                    " o.y;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 1234);
}

TEST(InterpMore, PointerIntoStructField) {
  RunResult R = run("struct s { int a; int b; };\n"
                    "int main() {\n"
                    "  struct s v;\n"
                    "  v.a = 10;\n"
                    "  v.b = 20;\n"
                    "  int* p = &v.b;\n"
                    "  *p = 99;\n"
                    "  return v.b;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 99);
}

TEST(InterpMore, PointerToPointer) {
  RunResult R = run("int main() {\n"
                    "  int x = 7;\n"
                    "  int* p = &x;\n"
                    "  int** pp = &p;\n"
                    "  **pp = 42;\n"
                    "  return x;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 42);
}

TEST(InterpMore, PointerEqualityByIdentity) {
  RunResult R = run("int main() {\n"
                    "  int x = 1;\n"
                    "  int y = 1;\n"
                    "  int* p = &x;\n"
                    "  int* q = &y;\n"
                    "  int* r = &x;\n"
                    "  if (p == q) return 1;\n"
                    "  if (p != r) return 2;\n"
                    "  return 0;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 0);
}

TEST(InterpMore, PointerDifferenceWithinBlock) {
  RunResult R = run("int main() {\n"
                    "  int* a = (int*) malloc(sizeof(int) * 8);\n"
                    "  int* p = a + 6;\n"
                    "  return p - a;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 6);
}

TEST(InterpMore, GlobalInitializersRunInOrder) {
  RunResult R = run("int a = 5;\n"
                    "int b = a * 2;\n"
                    "int main() { return b; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 10);
}

TEST(InterpMore, MutualRecursion) {
  RunResult R = run("int isOdd(int n);\n"
                    "int isEven(int n) {\n"
                    "  if (n == 0) return 1;\n"
                    "  return isOdd(n - 1);\n"
                    "}\n"
                    "int isOdd(int n) {\n"
                    "  if (n == 0) return 0;\n"
                    "  return isEven(n - 1);\n"
                    "}\n"
                    "int main() { return isEven(10) * 10 + isOdd(7); }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 11);
}

TEST(InterpMore, NegativeModuloTruncatesTowardZero) {
  RunResult R = run("int main() { return -7 % 3 + 10; }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 9); // -7 % 3 == -1 in C.
}

TEST(InterpMore, ForWithEmptyHeaderParts) {
  RunResult R = run("int main() {\n"
                    "  int i = 0;\n"
                    "  for (; i < 5;) { i = i + 1; }\n"
                    "  return i;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 5);
}

TEST(InterpMore, SizeofStructCountsCells) {
  RunResult R = run("struct s { int a; int* p; int c; };\n"
                    "int main() { return sizeof(struct s); }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 3);
}

TEST(InterpMore, FreeThenAllocReusesNothing) {
  // Blocks are never recycled, so dangling pointers always trap rather
  // than aliasing new allocations.
  RunResult R = run("int main() {\n"
                    "  int* p = (int*) malloc(sizeof(int));\n"
                    "  free(p);\n"
                    "  int* q = (int*) malloc(sizeof(int));\n"
                    "  *q = 5;\n"
                    "  return *p;\n"
                    "}");
  EXPECT_EQ(R.Status, RunStatus::Trap);
}

TEST(InterpMore, LogicalOperatorsReturnZeroOne) {
  RunResult R = run("int main() {\n"
                    "  int a = 5 && 3;\n"
                    "  int b = 0 || 7;\n"
                    "  int c = !9;\n"
                    "  return a * 100 + b * 10 + c;\n"
                    "}");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 110);
}

//===----------------------------------------------------------------------===//
// Fuel: the bounded-step execution limit
//===----------------------------------------------------------------------===//

RunResult runWith(const std::string &Source, InterpOptions Options,
                  const std::vector<std::string> &QualNames = {}) {
  qual::QualifierSet Set = loadQuals(QualNames);
  DiagnosticEngine Diags;
  RunResult R = runSource(Source, Set, Diags, Options);
  EXPECT_FALSE(Diags.hasErrors());
  return R;
}

TEST(InterpFuel, InfiniteLoopExhaustsFuel) {
  InterpOptions Options;
  Options.Fuel = 10000;
  RunResult R = runWith("int main() { while (1) { } return 0; }", Options);
  EXPECT_EQ(R.Status, RunStatus::FuelExhausted);
  EXPECT_GT(R.Steps, 0u);
}

TEST(InterpFuel, InfiniteRecursionExhaustsFuel) {
  InterpOptions Options;
  Options.Fuel = 10000;
  RunResult R = runWith("int spin(int n) { return spin(n + 1); }\n"
                        "int main() { return spin(0); }",
                        Options);
  EXPECT_EQ(R.Status, RunStatus::FuelExhausted);
}

TEST(InterpFuel, TerminatingProgramIsUnaffected) {
  InterpOptions Options;
  Options.Fuel = 100000;
  RunResult R = runWith("int main() {\n"
                        "  int s = 0;\n"
                        "  for (int i = 0; i < 100; i = i + 1) s = s + i;\n"
                        "  return s;\n"
                        "}",
                        Options);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.ExitValue, 4950);
  EXPECT_LT(R.Steps, 100000u);
}

TEST(InterpFuel, BoundaryIsExact) {
  // The same program under shrinking budgets: there is a threshold below
  // which it stops finishing, and the verdict is FuelExhausted, never a
  // trap or a wrong exit value.
  const char *Src = "int main() {\n"
                    "  int s = 0;\n"
                    "  for (int i = 0; i < 50; i = i + 1) s = s + 1;\n"
                    "  return s;\n"
                    "}";
  InterpOptions Generous;
  Generous.Fuel = 1000000;
  RunResult Full = runWith(Src, Generous);
  ASSERT_TRUE(Full.ok());
  ASSERT_EQ(Full.ExitValue, 50);

  // Exactly enough fuel succeeds; one unit less must exhaust.
  InterpOptions Exact;
  Exact.Fuel = Full.Steps;
  RunResult AtBoundary = runWith(Src, Exact);
  EXPECT_TRUE(AtBoundary.ok());
  EXPECT_EQ(AtBoundary.ExitValue, 50);

  InterpOptions Short;
  Short.Fuel = Full.Steps - 1;
  RunResult Starved = runWith(Src, Short);
  EXPECT_EQ(Starved.Status, RunStatus::FuelExhausted);
}

//===----------------------------------------------------------------------===//
// The invariant audit (the executable face of Theorem 5.1)
//===----------------------------------------------------------------------===//

TEST(InterpAudit, AcceptedStoresAuditCleanly) {
  InterpOptions Options;
  Options.AuditQualifiedStores = true;
  RunResult R = runWith("int main() {\n"
                        "  int pos x = 5;\n"
                        "  x = (x * 2);\n"
                        "  int neg y = (- x);\n"
                        "  int nonzero z = x;\n"
                        "  return 0;\n"
                        "}",
                        Options, {"pos", "neg", "nonzero"});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_GE(R.AuditChecks, 4u);
  EXPECT_TRUE(R.AuditFailures.empty());
}

TEST(InterpAudit, UnsoundQualifierDefinitionIsCaught) {
  // A deliberately bogus qualifier: every expression derives it, but the
  // invariant demands positivity. The checker accepts `int bogus x = 0;`
  // (the case rule allows anything), the audit must record the violation —
  // and record it without trapping (Status stays Ok).
  const char *Defs = "value qualifier bogus(int Expr E)\n"
                     "  case E of\n"
                     "    E\n"
                     "  invariant value(E) > 0\n";
  qual::QualifierSet Set;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::parseQualifiers(Defs, Set, Diags));
  ASSERT_TRUE(qual::checkWellFormed(Set, Diags));
  InterpOptions Options;
  Options.AuditQualifiedStores = true;
  RunResult R = runSource("int main() {\n"
                          "  int bogus x = 0;\n"
                          "  return 0;\n"
                          "}",
                          Set, Diags, Options);
  EXPECT_FALSE(Diags.hasErrors());
  EXPECT_EQ(R.Status, RunStatus::Ok);
  ASSERT_EQ(R.AuditFailures.size(), 1u);
  EXPECT_EQ(R.AuditFailures[0].Qual, "bogus");
  EXPECT_GE(R.AuditChecks, 1u);
}

TEST(InterpAudit, OffByDefault) {
  RunResult R = run("int main() { int pos x = 5; return 0; }", {"pos", "neg"});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.AuditChecks, 0u);
  EXPECT_TRUE(R.AuditFailures.empty());
}

TEST(InterpAudit, UninitializedDeclIsExempt) {
  // `int pos x;` holds the default 0, which violates the invariant — but
  // the checker never vetted a store there, so the audit must not fire
  // until the first real assignment.
  InterpOptions Options;
  Options.AuditQualifiedStores = true;
  RunResult R = runWith("int main() {\n"
                        "  int pos x;\n"
                        "  x = 3;\n"
                        "  return 0;\n"
                        "}",
                        Options, {"pos", "neg"});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.AuditChecks, 1u);
  EXPECT_TRUE(R.AuditFailures.empty());
}

TEST(InterpAudit, EntryParamBindingIsExempt) {
  // main's parameters are bound to synthesized defaults (0), which the
  // checker did not vet; the audit must exempt that binding.
  InterpOptions Options;
  Options.AuditQualifiedStores = true;
  RunResult R = runWith("int main(int pos argc) { return 0; }", Options,
                        {"pos", "neg"});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.AuditChecks, 0u);
  EXPECT_TRUE(R.AuditFailures.empty());
}

TEST(InterpAudit, HelperCallArgumentsAreAudited) {
  // Interior calls ARE vetted by the checker, so their parameter bindings
  // are audited like any other store.
  InterpOptions Options;
  Options.AuditQualifiedStores = true;
  RunResult R = runWith("int twice(int pos a) { return (a * 2); }\n"
                        "int main() {\n"
                        "  int pos x = 4;\n"
                        "  return twice(x);\n"
                        "}",
                        Options, {"pos", "neg"});
  ASSERT_TRUE(R.ok());
  // Stores audited: the decl of x and the binding of a.
  EXPECT_GE(R.AuditChecks, 2u);
  EXPECT_TRUE(R.AuditFailures.empty());
}

} // namespace
