//===- TestTempDir.h - Per-test scratch directories -------------*- C++ -*-===//
//
// Part of the stq project: a reproduction of "Semantic Type Qualifiers"
// (Chin, Markstrum, Millstein; PLDI 2005).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mkdtemp-backed scratch directory, removed on destruction. Tests that
/// write files (prover-cache persistence, server sockets) use this instead
/// of hardcoded relative paths, so concurrent or repeated test runs never
/// collide on shared state. Socket tests also rely on mkdtemp under /tmp
/// keeping paths inside sockaddr_un's ~100-byte sun_path limit.
///
//===----------------------------------------------------------------------===//

#ifndef STQ_TESTS_TESTTEMPDIR_H
#define STQ_TESTS_TESTTEMPDIR_H

#include <cstdlib>
#include <filesystem>
#include <string>

namespace stq::testing {

class TempDir {
public:
  TempDir() {
    std::string Template = "/tmp/stq-test-XXXXXX";
    if (char *P = ::mkdtemp(Template.data()))
      Dir = P;
  }
  ~TempDir() {
    if (!Dir.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(Dir, EC);
    }
  }
  TempDir(const TempDir &) = delete;
  TempDir &operator=(const TempDir &) = delete;

  bool valid() const { return !Dir.empty(); }
  const std::string &str() const { return Dir; }
  /// A path inside the directory: Dir/Name.
  std::string path(const std::string &Name) const { return Dir + "/" + Name; }

private:
  std::string Dir;
};

} // namespace stq::testing

#endif // STQ_TESTS_TESTTEMPDIR_H
