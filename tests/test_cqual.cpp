//===- test_cqual.cpp - Tests for the CQUAL-style inference baseline ------===//

#include "cqual/Cqual.h"

#include "cminus/Lowering.h"
#include "cminus/Parser.h"
#include "cminus/Sema.h"

#include <gtest/gtest.h>

using namespace stq;
using namespace stq::cqual;

namespace {

const std::vector<std::string> Quals = {"tainted", "untainted"};

struct Run {
  DiagnosticEngine Diags;
  std::unique_ptr<cminus::Program> Prog;
  InferenceResult Result;
};

std::unique_ptr<Run> infer(const std::string &Source) {
  auto R = std::make_unique<Run>();
  R->Prog = cminus::parseProgram(Source, Quals, R->Diags);
  EXPECT_FALSE(R->Diags.hasErrors());
  EXPECT_TRUE(cminus::runSema(*R->Prog, {}, R->Diags));
  EXPECT_TRUE(cminus::lowerProgram(*R->Prog, R->Diags));
  R->Result = runInference(*R->Prog);
  return R;
}

TEST(Cqual, CleanProgramHasNoErrors) {
  auto R = infer("int main() { int x = 1; int y = x + 2; return y; }");
  EXPECT_TRUE(R->Result.clean());
  EXPECT_GT(R->Result.NumVars, 0u);
}

TEST(Cqual, DirectTaintedToUntaintedFlows) {
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  char* s = source();\n"
                 "  sink(s);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, InferencePropagatesThroughIntermediates) {
  // The key CQUAL advantage: the intermediate variables a, b, c need no
  // annotations; taint is inferred through them.
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  char* a = source();\n"
                 "  char* b = a;\n"
                 "  char* c = b;\n"
                 "  sink(c);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
  EXPECT_EQ(R->Result.ExplicitAnnotations, 2u); // Only source and sink.
}

TEST(Cqual, UntaintedDataReachingSinkIsFine) {
  auto R = infer("void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  char* a = \"safe\";\n"
                 "  sink(a);\n"
                 "}\n");
  EXPECT_TRUE(R->Result.clean());
}

TEST(Cqual, FlowThroughFunctionReturns) {
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "char* pass(char* x) { return x; }\n"
                 "void main2() {\n"
                 "  char* t = source();\n"
                 "  char* u = pass(t);\n"
                 "  sink(u);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, FlowThroughStructFields) {
  auto R = infer("struct msg { char* body; };\n"
                 "char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  struct msg m;\n"
                 "  m.body = source();\n"
                 "  sink(m.body);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, FlowThroughPointerCells) {
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  char** cell = (char**) malloc(sizeof(char*));\n"
                 "  *cell = source();\n"
                 "  sink(*cell);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, BranchesJoin) {
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2(int c) {\n"
                 "  char* x = \"ok\";\n"
                 "  if (c) x = source();\n"
                 "  sink(x);\n"
                 "}\n");
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, CastAsAssumptionSilencesFlow) {
  // The CQUAL escape hatch: a cast to untainted acts as a trusted
  // assumption; the flow is reported at the cast's own constraint only if
  // taint reaches it. Casting the *result* of an untrusted source is
  // still caught because the cast position itself is Bottom-bounded.
  auto R = infer("char* tainted source();\n"
                 "void sink(char* untainted fmt);\n"
                 "void main2() {\n"
                 "  char* t = source();\n"
                 "  char* untainted u = (char* untainted) t;\n"
                 "  sink(u);\n"
                 "}\n");
  // The cast's Bottom bound sees tainted data: one error at the cast.
  EXPECT_EQ(R->Result.Errors.size(), 1u);
}

TEST(Cqual, NoSoundnessChecking) {
  // The contrast with the paper: swapping the lattice poles (declaring
  // that untainted data must never flow to tainted positions - a
  // meaningless discipline) is accepted without complaint. CQUAL trusts
  // the user's lattice; the real format-string bug below goes unreported.
  // The paper's soundness checker would reject a rule set whose invariant
  // its rules do not establish.
  LatticeConfig Swapped;
  Swapped.Top = "untainted";
  Swapped.Bottom = "tainted";
  DiagnosticEngine Diags;
  auto Prog = cminus::parseProgram("char* tainted source();\n"
                                   "void sink(char* untainted fmt);\n"
                                   "void main2() { sink(source()); }\n",
                                   Quals, Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ASSERT_TRUE(cminus::runSema(*Prog, {}, Diags));
  ASSERT_TRUE(cminus::lowerProgram(*Prog, Diags));
  InferenceResult R = runInference(*Prog, Swapped);
  EXPECT_TRUE(R.clean()); // The bug is silently missed.

  // The correctly configured analysis catches it.
  InferenceResult Correct = runInference(*Prog);
  EXPECT_EQ(Correct.Errors.size(), 1u);
}

TEST(Cqual, AnnotationCountsReported) {
  auto R = infer("char* tainted a();\n"
                 "char* tainted b();\n"
                 "void sink(char* untainted fmt);\n");
  EXPECT_EQ(R->Result.ExplicitAnnotations, 3u);
}

} // namespace
