//===- test_driver.cpp - Tests for the Session facade and option table ----===//
//
// The stq::Session driver API (qualifier loading, check/prove/run/infer,
// metric publication, JSON emission, the jobs-determinism contract) and the
// declarative cli::OptionTable parser.
//
//===----------------------------------------------------------------------===//

#include "driver/OptionTable.h"
#include "driver/Session.h"
#include "qual/Builtins.h"

#include "TestTempDir.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace stq;

namespace {

// --------------------------------------------------------------------------
// OptionTable
// --------------------------------------------------------------------------

TEST(OptionTable, SplitCommas) {
  EXPECT_EQ(cli::splitCommas("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(cli::splitCommas("a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(cli::splitCommas("").empty());
}

TEST(OptionTable, ParseUnsigned) {
  unsigned N = 99;
  EXPECT_TRUE(cli::parseUnsigned("0", N));
  EXPECT_EQ(N, 0u);
  EXPECT_TRUE(cli::parseUnsigned("42", N));
  EXPECT_EQ(N, 42u);
  EXPECT_FALSE(cli::parseUnsigned("", N));
  EXPECT_FALSE(cli::parseUnsigned("4a", N));
  EXPECT_FALSE(cli::parseUnsigned("abc", N));
  EXPECT_FALSE(cli::parseUnsigned("-1", N));
  EXPECT_FALSE(cli::parseUnsigned("99999999999999999999", N));
}

TEST(OptionTable, FlagAndValueSpellings) {
  bool Verbose = false;
  unsigned Jobs = 0;
  cli::OptionTable T;
  T.flag("--verbose", "-v", "", [&] { Verbose = true; });
  T.value("--jobs", "-j", "N", "", [&](const std::string &V, std::string &E) {
    if (!cli::parseUnsigned(V, Jobs)) {
      E = "bad --jobs value '" + V + "'";
      return false;
    }
    return true;
  });

  std::string Error;
  EXPECT_TRUE(T.parse({"--verbose", "--jobs", "4"}, Error)) << Error;
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(Jobs, 4u);

  Jobs = 0;
  EXPECT_TRUE(T.parse({"--jobs=8"}, Error)) << Error;
  EXPECT_EQ(Jobs, 8u);

  Jobs = 0;
  EXPECT_TRUE(T.parse({"-j", "2"}, Error)) << Error;
  EXPECT_EQ(Jobs, 2u);
}

TEST(OptionTable, UnknownOptionIsHardError) {
  cli::OptionTable T;
  T.flag("--verbose", "", "", [] {});
  std::string Error;
  EXPECT_FALSE(T.parse({"--bogus"}, Error));
  EXPECT_EQ(Error, "unknown option '--bogus'");
  EXPECT_FALSE(T.parse({"--bogus=3"}, Error));
  EXPECT_EQ(Error, "unknown option '--bogus'");
}

TEST(OptionTable, MissingAndRejectedValues) {
  unsigned Jobs = 0;
  cli::OptionTable T;
  T.value("--jobs", "", "N", "", [&](const std::string &V, std::string &E) {
    if (!cli::parseUnsigned(V, Jobs)) {
      E = "bad --jobs value '" + V + "'";
      return false;
    }
    return true;
  });
  std::string Error;
  EXPECT_FALSE(T.parse({"--jobs"}, Error));
  EXPECT_EQ(Error, "missing value for '--jobs'");
  EXPECT_FALSE(T.parse({"--jobs", "abc"}, Error));
  EXPECT_EQ(Error, "bad --jobs value 'abc'");
}

TEST(OptionTable, FlagRejectsInlineValue) {
  cli::OptionTable T;
  T.flag("--verbose", "", "", [] {});
  std::string Error;
  EXPECT_FALSE(T.parse({"--verbose=1"}, Error));
  EXPECT_EQ(Error, "option '--verbose' takes no value");
}

TEST(OptionTable, OptionalValueOnlyBindsInline) {
  std::vector<std::string> Formats;
  std::vector<std::string> Positionals;
  cli::OptionTable T;
  T.optionalValue("--metrics", "FORMAT", "",
                  [&](const std::string &V, std::string &) {
                    Formats.push_back(V);
                    return true;
                  });
  T.positional([&](const std::string &V, std::string &) {
    Positionals.push_back(V);
    return true;
  });
  std::string Error;
  EXPECT_TRUE(T.parse({"--metrics", "json", "--metrics=json"}, Error))
      << Error;
  // The separate word stays positional; only "=" binds a value.
  EXPECT_EQ(Formats, (std::vector<std::string>{"", "json"}));
  EXPECT_EQ(Positionals, (std::vector<std::string>{"json"}));
}

TEST(OptionTable, RepeatedScalarOptionIsLastWins) {
  // Handlers re-apply in order: a scalar option keeps the last value, and
  // a list option accumulates (both are how stqc's options behave).
  std::string Entry;
  std::vector<std::string> Files;
  cli::OptionTable T;
  T.value("--entry", "", "NAME", "", [&](const std::string &V, std::string &) {
    Entry = V;
    return true;
  });
  T.value("--qualfile", "", "F", "", [&](const std::string &V, std::string &) {
    Files.push_back(V);
    return true;
  });
  std::string Error;
  EXPECT_TRUE(T.parse({"--entry", "a", "--qualfile", "f1", "--entry=b",
                       "--qualfile=f2"},
                      Error))
      << Error;
  EXPECT_EQ(Entry, "b");
  EXPECT_EQ(Files, (std::vector<std::string>{"f1", "f2"}));
}

TEST(OptionTable, DoubleDashEndsOptionProcessing) {
  bool Verbose = false;
  std::vector<std::string> Positionals;
  cli::OptionTable T;
  T.flag("--verbose", "", "", [&] { Verbose = true; });
  T.positional([&](const std::string &V, std::string &) {
    Positionals.push_back(V);
    return true;
  });
  std::string Error;
  // Everything after "--" is positional, even flag-shaped arguments; the
  // separator itself is not routed anywhere.
  EXPECT_TRUE(T.parse({"--verbose", "--", "--verbose", "-x", "--"}, Error))
      << Error;
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(Positionals, (std::vector<std::string>{"--verbose", "-x", "--"}));

  // Without the separator the same arguments are hard errors.
  EXPECT_FALSE(T.parse({"-x"}, Error));
  EXPECT_EQ(Error, "unknown option '-x'");
}

TEST(OptionTable, DoubleDashWithoutPositionalHandlerIsError) {
  cli::OptionTable T;
  T.flag("--verbose", "", "", [] {});
  std::string Error;
  EXPECT_FALSE(T.parse({"--", "file.c"}, Error));
  EXPECT_EQ(Error, "unexpected argument 'file.c'");
}

TEST(OptionTable, EmptyStringValues) {
  // "--name=" binds an explicit empty value; a bare "" argument routes to
  // the positional handler (argv can legally contain empty strings).
  std::string Entry = "unset";
  std::vector<std::string> Positionals;
  cli::OptionTable T;
  T.value("--entry", "", "NAME", "", [&](const std::string &V, std::string &) {
    Entry = V;
    return true;
  });
  T.positional([&](const std::string &V, std::string &) {
    Positionals.push_back(V);
    return true;
  });
  std::string Error;
  EXPECT_TRUE(T.parse({"--entry=", ""}, Error)) << Error;
  EXPECT_EQ(Entry, "");
  EXPECT_EQ(Positionals, (std::vector<std::string>{""}));

  // The separate-word spelling also accepts an empty value.
  Entry = "unset";
  EXPECT_TRUE(T.parse({"--entry", ""}, Error)) << Error;
  EXPECT_EQ(Entry, "");
}

TEST(OptionTable, PositionalWithoutHandlerIsError) {
  cli::OptionTable T;
  std::string Error;
  EXPECT_FALSE(T.parse({"stray"}, Error));
  EXPECT_EQ(Error, "unexpected argument 'stray'");
}

// --------------------------------------------------------------------------
// Session
// --------------------------------------------------------------------------

const char *Fig2Program =
    "int pos gcd(int pos n, int pos m) {\n"
    "  if (m == n) return n;\n"
    "  if (m > n) return gcd(n, (int pos)(m - n));\n"
    "  return gcd(m, (int pos)(n - m));\n"
    "}\n"
    "int pos lcm(int pos a, int pos b) {\n"
    "  int pos d = gcd(a, b);\n"
    "  int pos prod = a * b;\n"
    "  return (int pos) (prod / d);\n"
    "}\n"
    "int main() { return lcm(21, 6); }\n";

TEST(Session, LoadsRequestedBuiltins) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  EXPECT_TRUE(S.loadQualifiers());
  EXPECT_EQ(S.qualifiers().all().size(), 2u);
  EXPECT_EQ(S.metrics().counter("qual.loaded").get(), 2u);
}

TEST(Session, ImplicitAllBuiltinsByDefault) {
  Session S;
  EXPECT_TRUE(S.loadQualifiers());
  EXPECT_EQ(S.qualifiers().all().size(),
            qual::builtinQualifierNames().size());
}

TEST(Session, UnknownBuiltinFailsWithDiagnostic) {
  SessionOptions Options;
  Options.Builtins = {"nope"};
  Session S(Options);
  EXPECT_FALSE(S.loadQualifiers());
  ASSERT_FALSE(S.diags().diagnostics().empty());
  EXPECT_NE(S.diags().diagnostics()[0].Message.find(
                "unknown builtin qualifier 'nope'"),
            std::string::npos);
  // check() on a failed load reports no front end success.
  EXPECT_FALSE(S.check("int main() { return 0; }").FrontEndOk);
}

TEST(Session, MissingQualFileFails) {
  SessionOptions Options;
  Options.QualFiles = {"/nonexistent/stq-no-such-file.q"};
  Session S(Options);
  EXPECT_FALSE(S.loadQualifiers());
  ASSERT_FALSE(S.diags().diagnostics().empty());
  EXPECT_NE(S.diags().diagnostics()[0].Message.find("cannot open"),
            std::string::npos);
}

TEST(Session, QualFileLoads) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  std::string Path = Tmp.path("session_test_qualfile.q");
  {
    std::ofstream OS(Path);
    OS << "value qualifier nonneg(int Expr E)\n"
          "  case E of\n"
          "    decl int Const C:\n"
          "      C, where C >= 0\n"
          "  invariant value(E) >= 0\n";
  }
  SessionOptions Options;
  Options.QualFiles = {Path};
  Session S(Options);
  EXPECT_TRUE(S.loadQualifiers()) << [&] {
    std::ostringstream OS;
    S.diags().print(OS);
    return OS.str();
  }();
  EXPECT_EQ(S.qualifiers().all().size(), 1u);
}

TEST(Session, LoadIsIdempotent) {
  SessionOptions Options;
  Options.Builtins = {"nonnull"};
  Session S(Options);
  EXPECT_TRUE(S.loadQualifiers());
  EXPECT_TRUE(S.loadQualifiers());
  EXPECT_EQ(S.qualifiers().all().size(), 1u);
}

TEST(Session, BuiltinsWithDanglingReferencesAreRejected) {
  // pos's subtyping check references neg, so loading it alone must fail
  // well-formedness (and the failure is remembered, not retried).
  SessionOptions Options;
  Options.Builtins = {"pos"};
  Session S(Options);
  EXPECT_FALSE(S.loadQualifiers());
  EXPECT_FALSE(S.loadQualifiers());
  EXPECT_TRUE(S.diags().hasErrors());
}

TEST(Session, CheckPublishesMetrics) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  Session::CheckOutcome Out = S.check(Fig2Program);
  ASSERT_TRUE(Out.FrontEndOk);
  EXPECT_EQ(Out.Result.QualErrors, 0u);
  EXPECT_EQ(Out.Result.RuntimeChecks.size(), 3u);

  stats::Registry &M = S.metrics();
  EXPECT_GE(M.counter("check.units").get(), 3u);
  EXPECT_EQ(M.counter("check.qual_errors").get(), 0u);
  EXPECT_EQ(M.counter("check.runtime_checks").get(), 3u);
  EXPECT_EQ(M.counter("check.casts_to_value_qualified").get(), 3u);
  EXPECT_EQ(M.histogram("phase.parse_seconds").data().Count, 1u);
  EXPECT_EQ(M.histogram("phase.qualcheck_seconds").data().Count, 1u);
}

TEST(Session, CheckReportsQualifierErrors) {
  SessionOptions Options;
  Options.Builtins = {"nonnull"};
  Session S(Options);
  Session::CheckOutcome Out =
      S.check("int f(int* p) { return *p; }\n");
  ASSERT_TRUE(Out.FrontEndOk);
  EXPECT_EQ(Out.Result.QualErrors, 1u);
  EXPECT_EQ(S.metrics().counter("check.qual_errors").get(), 1u);
}

TEST(Session, RunExecutesWithChecks) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  Session::RunOutcome Out = S.run(Fig2Program);
  ASSERT_TRUE(Out.Check.FrontEndOk);
  ASSERT_TRUE(Out.Run.ok());
  EXPECT_EQ(*Out.Run.ExitValue, 42);
  EXPECT_GT(S.metrics().counter("interp.steps").get(), 0u);
  EXPECT_GT(S.metrics().counter("interp.checks_executed").get(), 0u);
  EXPECT_EQ(S.metrics().histogram("phase.execute_seconds").data().Count, 1u);
}

TEST(Session, RunWithFrontEndErrorsIsSetupError) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  Session::RunOutcome Out = S.run("int f( {\n");
  EXPECT_FALSE(Out.Check.FrontEndOk);
  EXPECT_EQ(Out.Run.Status, interp::RunStatus::SetupError);
  EXPECT_EQ(Out.Run.TrapMessage, "front-end errors");
}

TEST(Session, ProveQualifierFromInlineSource) {
  SessionOptions Options;
  Options.QualSources = {
      "value qualifier nonneg(int Expr E)\n"
      "  case E of\n"
      "    decl int Const C:\n"
      "      C, where C >= 0\n"
      "  | decl int Expr E1, E2:\n"
      "      E1 + E2, where nonneg(E1) && nonneg(E2)\n"
      "  invariant value(E) >= 0\n"};
  Session S(Options);
  soundness::SoundnessReport Report = S.proveQualifier("nonneg");
  EXPECT_TRUE(Report.sound());
  EXPECT_GT(S.metrics().counter("prove.obligations").get(), 0u);
  EXPECT_EQ(S.metrics().counter("prove.obligations").get(),
            S.metrics().counter("prove.obligations_proved").get());
  EXPECT_GT(S.metrics().histogram("prove.obligation_seconds").data().Count,
            0u);
}

TEST(Session, WarmProverCacheReplaysFromCache) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Options.WarmProverCache = true;
  Session S(Options);
  auto Reports = S.prove();
  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_TRUE(Reports[0].sound());
  EXPECT_TRUE(Reports[1].sound());
  // Warm pass misses everything; the reported pass hits everything.
  EXPECT_DOUBLE_EQ(S.metrics().gauge("prover.cache.hit_rate").get(), 0.5);
  EXPECT_GT(S.metrics().counter("prove.obligations_from_cache").get(), 0u);
}

TEST(Session, CacheFileWarmRerunSkipsAllProving) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_session_cache.stqcache");
  SessionOptions Options;
  Options.Builtins = {"pos", "neg", "nonzero"};
  Options.CacheFile = Path;

  // Cold run: everything proved fresh, cache persisted on exit.
  {
    Session S(Options);
    auto Reports = S.prove();
    ASSERT_EQ(Reports.size(), 3u);
    for (const auto &R : Reports)
      EXPECT_TRUE(R.sound());
    EXPECT_EQ(S.metrics().counter("prover.cache.persist_hits").get(), 0u);
    EXPECT_EQ(S.metrics().counter("prove.obligations_from_cache").get(), 0u);
  }
  // Warm rerun in a fresh process-equivalent Session: every obligation
  // discharges from the loaded file with zero prover calls.
  {
    Session S(Options);
    auto Reports = S.prove();
    ASSERT_EQ(Reports.size(), 3u);
    for (const auto &R : Reports)
      EXPECT_TRUE(R.sound());
    uint64_t Obligations = S.metrics().counter("prove.obligations").get();
    EXPECT_GT(Obligations, 0u);
    EXPECT_EQ(S.metrics().counter("prove.obligations_from_cache").get(),
              Obligations);
    EXPECT_EQ(S.metrics().counter("prover.cache.persist_hits").get(),
              Obligations);
    EXPECT_GT(S.metrics().counter("prover.cache.persist_loaded").get(), 0u);
    EXPECT_EQ(S.metrics().counter("prover.cache.misses").get(), 0u);
    EXPECT_FALSE(S.diags().hasErrors());
    EXPECT_EQ(S.diags().warningCount(), 0u);
  }
}

TEST(Session, CorruptCacheFileIsIgnoredWithWarning) {
  stq::testing::TempDir Tmp;
  ASSERT_TRUE(Tmp.valid());
  const std::string Path = Tmp.path("test_session_cache_corrupt.stqcache");
  {
    std::ofstream Out(Path);
    Out << "stq-prover-cache-v0\ngarbage\n";
  }
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Options.CacheFile = Path;
  Session S(Options);
  auto Reports = S.prove();
  ASSERT_EQ(Reports.size(), 2u);
  // The stale file contributed nothing; proving proceeded from scratch.
  EXPECT_TRUE(Reports[0].sound());
  EXPECT_EQ(S.metrics().counter("prover.cache.persist_loaded").get(), 0u);
  EXPECT_EQ(S.metrics().counter("prove.obligations_from_cache").get(), 0u);
  EXPECT_EQ(S.diags().warningCount(), 1u);
  // prove() then overwrote it with a valid snapshot for the next run.
  {
    Session Rerun(Options);
    auto Again = Rerun.prove();
    ASSERT_EQ(Again.size(), 2u);
    EXPECT_EQ(Rerun.metrics().counter("prove.obligations_from_cache").get(),
              Rerun.metrics().counter("prove.obligations").get());
    EXPECT_EQ(Rerun.diags().warningCount(), 0u);
  }
}

TEST(Session, InferPublishesMetrics) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg", "nonneg", "nonzero"};
  Session S(Options);
  Session::InferenceReport Out = S.infer("int f() {\n"
                                         "  int step = 3;\n"
                                         "  int twice = step * 2;\n"
                                         "  return twice;\n"
                                         "}\n");
  ASSERT_TRUE(Out.FrontEndOk);
  EXPECT_GT(Out.Report.totalInferred(), 0u);
  EXPECT_EQ(S.metrics().counter("infer.annotations").get(),
            Out.Report.totalInferred());
  EXPECT_EQ(S.metrics().counter("infer.suggestions").get(),
            Out.Report.Stats.Suggested);
}

TEST(Session, EmitMetricsJsonIsWellFormed) {
  SessionOptions Options;
  Options.Builtins = {"pos", "neg"};
  Session S(Options);
  S.check(Fig2Program);
  std::ostringstream OS;
  S.emitMetrics(OS, metrics::Format::Json);
  std::string Out = OS.str();
  EXPECT_NE(Out.find("\"schema\": \"stq-metrics-v1\""), std::string::npos);
  EXPECT_NE(Out.find("\"check.units\""), std::string::npos);
  EXPECT_NE(Out.find("\"diag.errors\": 0"), std::string::npos);
  EXPECT_NE(Out.find("\"phase.parse_seconds\""), std::string::npos);
}

// The determinism contract: for a fixed input, every counter outside
// schedulingDependentCounterPrefixes() is identical for any --jobs value.
TEST(Session, CounterTotalsAreJobCountInvariant) {
  std::string Source = "int* nonnull keep(int* nonnull p) { return p; }\n";
  for (int I = 0; I < 6; ++I) {
    Source += "int f" + std::to_string(I) +
              "(int* p, int* nonnull q) {\n"
              "  int a = *q;\n"
              "  int b = *p;\n" // unproven dereference: one error each
              "  return a + b;\n"
              "}\n";
  }

  auto counters = [&](unsigned Jobs) {
    SessionOptions Options;
    Options.Builtins = {"nonnull"};
    Options.Jobs = Jobs;
    Session S(Options);
    Session::CheckOutcome Out = S.check(Source);
    EXPECT_TRUE(Out.FrontEndOk);
    auto Snap = S.metrics().snapshot();
    for (const std::string &P : metrics::schedulingDependentCounterPrefixes())
      for (auto It = Snap.Counters.begin(); It != Snap.Counters.end();)
        It = It->first.rfind(P, 0) == 0 ? Snap.Counters.erase(It)
                                        : std::next(It);
    return Snap.Counters;
  };

  auto Sequential = counters(1);
  auto Parallel = counters(4);
  EXPECT_EQ(Sequential, Parallel);
  EXPECT_EQ(Sequential.at("check.qual_errors"), 6u);
}

} // namespace
