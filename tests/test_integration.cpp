//===- test_integration.cpp - End-to-end pipeline scenarios ---------------===//
//
// Full-pipeline scenarios: define (or load) qualifiers, PROVE them sound,
// CHECK an annotated program, INFER missing annotations, and RUN the
// instrumented result - the complete workflow a downstream user of this
// framework would follow.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"
#include "checker/Inference.h"
#include "interp/Interp.h"
#include "qual/Builtins.h"
#include "qual/QualParser.h"
#include "soundness/Soundness.h"

#include <gtest/gtest.h>

using namespace stq;

namespace {

//===----------------------------------------------------------------------===//
// Scenario 1: a bank that never goes negative
//===----------------------------------------------------------------------===//

TEST(Integration, BankBalancesStayNonnegative) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"pos", "neg", "nonneg"}, Quals,
                                          Diags));

  // 1. Prove the qualifiers sound.
  soundness::SoundnessChecker SC(Quals);
  for (const char *Name : {"pos", "neg", "nonneg"})
    EXPECT_TRUE(SC.checkQualifier(Name).sound()) << Name;

  // 2. Check the program: balances are nonneg; a withdrawal needs a cast
  //    (the rules cannot prove a difference nonneg), which becomes a
  //    run-time check.
  const char *Bank =
      "int nonneg balance = 100;\n"
      "void deposit(int pos amount) {\n"
      "  balance = balance + amount;\n"
      "}\n"
      "int withdraw(int pos amount) {\n"
      "  if (amount > balance) { return 0; }\n"
      "  balance = (int nonneg) (balance - amount);\n"
      "  return 1;\n"
      "}\n"
      "int main() {\n"
      "  deposit(50);\n"
      "  int ok1 = withdraw(120);\n"
      "  int ok2 = withdraw(500);\n"
      "  return balance + ok1 * 2 + ok2;\n"
      "}\n";
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Check = checker::checkSource(Bank, Quals, Diags, Prog);
  EXPECT_EQ(Check.QualErrors, 0u);
  ASSERT_EQ(Check.RuntimeChecks.size(), 1u); // The withdrawal cast.

  // 3. Run it: the guarded withdrawal keeps the check green.
  interp::RunResult R =
      interp::runProgram(*Prog, Quals, Check.RuntimeChecks, {});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 30 + 2); // 150-120 = 30, ok1=1, ok2=0.
  EXPECT_EQ(R.ChecksExecuted, 1u);
  EXPECT_TRUE(R.CheckFailures.empty());

  // 4. Remove the guard and the run-time check catches the violation.
  const char *BadBank =
      "int nonneg balance = 10;\n"
      "int withdraw(int pos amount) {\n"
      "  balance = (int nonneg) (balance - amount);\n"
      "  return 1;\n"
      "}\n"
      "int main() { return withdraw(50); }\n";
  DiagnosticEngine D2;
  interp::RunResult R2 = interp::runSource(BadBank, Quals, D2, {});
  EXPECT_EQ(R2.Status, interp::RunStatus::CheckFailure);
  ASSERT_EQ(R2.CheckFailures.size(), 1u);
  EXPECT_EQ(R2.CheckFailures[0].Qual, "nonneg");
}

//===----------------------------------------------------------------------===//
// Scenario 2: a linked list with nonnull discipline + inference
//===----------------------------------------------------------------------===//

TEST(Integration, LinkedListWithInferenceAndFlowSensitivity) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadBuiltinQualifiers({"nonnull"}, Quals, Diags));

  const char *List =
      "struct node { int v; struct node* next; };\n"
      "struct node* cons(int v, struct node* tail) {\n"
      "  struct node* n = (struct node*) malloc(sizeof(struct node));\n"
      "  struct node* nonnull nn = (struct node* nonnull) n;\n"
      "  nn->v = v;\n"
      "  nn->next = tail;\n"
      "  return nn;\n"
      "}\n"
      "int sum(struct node* head) {\n"
      "  int total = 0;\n"
      "  struct node* cur = head;\n"
      "  while (cur != NULL) {\n"
      "    struct node* nonnull c = (struct node* nonnull) cur;\n"
      "    total = total + c->v;\n"
      "    cur = c->next;\n"
      "  }\n"
      "  return total;\n"
      "}\n"
      "int main() {\n"
      "  struct node* l = cons(1, cons(2, cons(3, NULL)));\n"
      "  return sum(l);\n"
      "}\n";

  // Flow-insensitive: casts carry the burden; everything checks and runs.
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Check = checker::checkSource(List, Quals, Diags, Prog);
  EXPECT_EQ(Check.QualErrors, 0u);
  interp::RunResult R =
      interp::runProgram(*Prog, Quals, Check.RuntimeChecks, {});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 6);

  // Flow-sensitive: the NULL-guarded loop needs no casts at all.
  const char *ListFS =
      "struct node { int v; struct node* next; };\n"
      "int sum(struct node* head) {\n"
      "  int total = 0;\n"
      "  struct node* cur = head;\n"
      "  while (cur != NULL) {\n"
      "    total = total + cur->v;\n"
      "    cur = cur->next;\n"
      "  }\n"
      "  return total;\n"
      "}\n";
  // cur is assigned in the body, so plain narrowing cannot apply; this
  // documents the boundary with Foster et al.'s flow-sensitive systems.
  checker::CheckerOptions FS;
  FS.FlowSensitiveNarrowing = true;
  DiagnosticEngine D3;
  std::unique_ptr<cminus::Program> P3;
  checker::CheckResult C3 = checker::checkSource(ListFS, Quals, D3, P3, FS);
  EXPECT_GE(C3.QualErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Scenario 3: user-defined qualifier file -> prove -> check -> run
//===----------------------------------------------------------------------===//

TEST(Integration, UserDefinedPercentQualifier) {
  // A user defines a "percent" qualifier (0..100) from scratch, proves it,
  // and uses it.
  const char *Defs =
      "value qualifier percent(int Expr E)\n"
      "  case E of\n"
      "    decl int Const C:\n"
      "      C, where (C >= 0) && (C <= 100)\n"
      "  invariant (value(E) >= 0) && (value(E) <= 100)\n";
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::parseQualifiers(Defs, Quals, Diags));
  ASSERT_TRUE(qual::checkWellFormed(Quals, Diags));

  soundness::SoundnessChecker SC(Quals);
  auto Report = SC.checkQualifier("percent");
  EXPECT_TRUE(Report.sound()) << soundness::formatReports({Report});

  // A bogus variant admitting 101 is rejected.
  const char *Bogus =
      "value qualifier percent(int Expr E)\n"
      "  case E of\n"
      "    decl int Const C:\n"
      "      C, where (C >= 0) && (C <= 101)\n"
      "  invariant (value(E) >= 0) && (value(E) <= 100)\n";
  qual::QualifierSet BadSet;
  DiagnosticEngine D2;
  ASSERT_TRUE(qual::parseQualifiers(Bogus, BadSet, D2));
  ASSERT_TRUE(qual::checkWellFormed(BadSet, D2));
  soundness::SoundnessChecker SC2(BadSet);
  EXPECT_FALSE(SC2.checkQualifier("percent").sound());

  // Checking and running with the sound definition.
  const char *Prog = "int percent progress = 0;\n"
                     "void advance(int percent p) { progress = p; }\n"
                     "int main() {\n"
                     "  advance(25);\n"
                     "  advance(100);\n"
                     "  int raw = 250;\n"
                     "  advance((int percent) (raw / 2));\n"
                     "  return progress;\n"
                     "}\n";
  DiagnosticEngine D3;
  interp::RunResult R = interp::runSource(Prog, Quals, D3, {});
  EXPECT_FALSE(D3.hasErrors());
  // 250/2 = 125 violates the percent invariant: fatal run-time error.
  EXPECT_EQ(R.Status, interp::RunStatus::CheckFailure);
  ASSERT_EQ(R.CheckFailures.size(), 1u);
  EXPECT_EQ(R.CheckFailures[0].Qual, "percent");
}

//===----------------------------------------------------------------------===//
// Scenario 4: every builtin coexists in one program
//===----------------------------------------------------------------------===//

TEST(Integration, AllBuiltinsInOneProgram) {
  qual::QualifierSet Quals;
  DiagnosticEngine Diags;
  ASSERT_TRUE(qual::loadAllBuiltinQualifiers(Quals, Diags));

  const char *Source =
      "int printf(char* untainted fmt, ...);\n"
      "int* unique table;\n"
      "int nonneg hits = 0;\n"
      "void record(int pos weight) {\n"
      "  int pos unaliased scratch;\n"
      "  scratch = weight * 2;\n"
      "  hits = hits + scratch;\n"
      "}\n"
      "int lookup(int* nonnull t, int nonzero divisor) {\n"
      "  return t[0] / divisor;\n"
      "}\n"
      "int main() {\n"
      "  table = (int*) malloc(sizeof(int) * 4);\n"
      // Reading the unique global is the one deliberate disallow
      // violation; the cast silences nonnull with a run-time check.
      "  int* nonnull tbl = (int* nonnull) table;\n"
      "  *tbl = 42;\n"
      "  record(3);\n"
      "  record(5);\n"
      "  int r = lookup(tbl, 7);\n"
      "  printf(\"hits=%d r=%d\\n\", hits, r);\n"
      "  return hits + r;\n"
      "}\n";
  std::unique_ptr<cminus::Program> Prog;
  checker::CheckResult Check =
      checker::checkSource(Source, Quals, Diags, Prog);
  // One deliberate disallow violation: reading the unique global.
  EXPECT_EQ(Check.QualErrors, 1u);
  // The paper's checker continues after warnings; the program still runs.
  interp::RunResult R =
      interp::runProgram(*Prog, Quals, Check.RuntimeChecks, {});
  ASSERT_TRUE(R.ok()) << R.TrapMessage;
  EXPECT_EQ(R.ExitValue, 16 + 6);
  EXPECT_EQ(R.Output, "hits=16 r=6\n");
}

} // namespace
