# Empty dependencies file for test_prover.
# This may be replaced when dependencies are built.
