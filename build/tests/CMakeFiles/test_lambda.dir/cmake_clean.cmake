file(REMOVE_RECURSE
  "CMakeFiles/test_lambda.dir/test_lambda.cpp.o"
  "CMakeFiles/test_lambda.dir/test_lambda.cpp.o.d"
  "test_lambda"
  "test_lambda.pdb"
  "test_lambda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
