
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_qual.cpp" "tests/CMakeFiles/test_qual.dir/test_qual.cpp.o" "gcc" "tests/CMakeFiles/test_qual.dir/test_qual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qual/CMakeFiles/stq_qual.dir/DependInfo.cmake"
  "/root/repo/build/src/cminus/CMakeFiles/stq_cminus.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
