file(REMOVE_RECURSE
  "CMakeFiles/test_cqual.dir/test_cqual.cpp.o"
  "CMakeFiles/test_cqual.dir/test_cqual.cpp.o.d"
  "test_cqual"
  "test_cqual.pdb"
  "test_cqual[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cqual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
