# Empty dependencies file for test_cqual.
# This may be replaced when dependencies are built.
