# Empty dependencies file for test_cminus.
# This may be replaced when dependencies are built.
