file(REMOVE_RECURSE
  "CMakeFiles/test_cminus.dir/test_cminus.cpp.o"
  "CMakeFiles/test_cminus.dir/test_cminus.cpp.o.d"
  "test_cminus"
  "test_cminus.pdb"
  "test_cminus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cminus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
