# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_cminus[1]_include.cmake")
include("/root/repo/build/tests/test_qual[1]_include.cmake")
include("/root/repo/build/tests/test_checker[1]_include.cmake")
include("/root/repo/build/tests/test_prover[1]_include.cmake")
include("/root/repo/build/tests/test_soundness[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_lambda[1]_include.cmake")
include("/root/repo/build/tests/test_cqual[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_inference[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
