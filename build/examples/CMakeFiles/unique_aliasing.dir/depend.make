# Empty dependencies file for unique_aliasing.
# This may be replaced when dependencies are built.
