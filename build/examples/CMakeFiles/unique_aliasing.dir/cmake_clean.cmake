file(REMOVE_RECURSE
  "CMakeFiles/unique_aliasing.dir/unique_aliasing.cpp.o"
  "CMakeFiles/unique_aliasing.dir/unique_aliasing.cpp.o.d"
  "unique_aliasing"
  "unique_aliasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unique_aliasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
