file(REMOVE_RECURSE
  "CMakeFiles/nonnull_grep.dir/nonnull_grep.cpp.o"
  "CMakeFiles/nonnull_grep.dir/nonnull_grep.cpp.o.d"
  "nonnull_grep"
  "nonnull_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonnull_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
