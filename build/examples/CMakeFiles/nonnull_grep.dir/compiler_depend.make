# Empty compiler generated dependencies file for nonnull_grep.
# This may be replaced when dependencies are built.
