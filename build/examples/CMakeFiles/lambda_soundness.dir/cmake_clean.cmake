file(REMOVE_RECURSE
  "CMakeFiles/lambda_soundness.dir/lambda_soundness.cpp.o"
  "CMakeFiles/lambda_soundness.dir/lambda_soundness.cpp.o.d"
  "lambda_soundness"
  "lambda_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lambda_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
