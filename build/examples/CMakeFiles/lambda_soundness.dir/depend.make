# Empty dependencies file for lambda_soundness.
# This may be replaced when dependencies are built.
