# Empty compiler generated dependencies file for taint_format_string.
# This may be replaced when dependencies are built.
