file(REMOVE_RECURSE
  "CMakeFiles/taint_format_string.dir/taint_format_string.cpp.o"
  "CMakeFiles/taint_format_string.dir/taint_format_string.cpp.o.d"
  "taint_format_string"
  "taint_format_string.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_format_string.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
