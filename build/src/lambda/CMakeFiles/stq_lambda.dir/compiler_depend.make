# Empty compiler generated dependencies file for stq_lambda.
# This may be replaced when dependencies are built.
