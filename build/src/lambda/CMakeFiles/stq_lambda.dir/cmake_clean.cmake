file(REMOVE_RECURSE
  "CMakeFiles/stq_lambda.dir/Lambda.cpp.o"
  "CMakeFiles/stq_lambda.dir/Lambda.cpp.o.d"
  "libstq_lambda.a"
  "libstq_lambda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_lambda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
