file(REMOVE_RECURSE
  "libstq_lambda.a"
)
