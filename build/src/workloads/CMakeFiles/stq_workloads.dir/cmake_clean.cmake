file(REMOVE_RECURSE
  "CMakeFiles/stq_workloads.dir/AnnotationDriver.cpp.o"
  "CMakeFiles/stq_workloads.dir/AnnotationDriver.cpp.o.d"
  "CMakeFiles/stq_workloads.dir/Workloads.cpp.o"
  "CMakeFiles/stq_workloads.dir/Workloads.cpp.o.d"
  "libstq_workloads.a"
  "libstq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
