file(REMOVE_RECURSE
  "libstq_workloads.a"
)
