# Empty compiler generated dependencies file for stq_workloads.
# This may be replaced when dependencies are built.
