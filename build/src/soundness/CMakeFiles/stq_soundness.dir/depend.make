# Empty dependencies file for stq_soundness.
# This may be replaced when dependencies are built.
