file(REMOVE_RECURSE
  "libstq_soundness.a"
)
