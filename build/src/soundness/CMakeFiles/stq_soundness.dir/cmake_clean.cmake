file(REMOVE_RECURSE
  "CMakeFiles/stq_soundness.dir/Axioms.cpp.o"
  "CMakeFiles/stq_soundness.dir/Axioms.cpp.o.d"
  "CMakeFiles/stq_soundness.dir/Soundness.cpp.o"
  "CMakeFiles/stq_soundness.dir/Soundness.cpp.o.d"
  "libstq_soundness.a"
  "libstq_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
