# Empty compiler generated dependencies file for stq_interp.
# This may be replaced when dependencies are built.
