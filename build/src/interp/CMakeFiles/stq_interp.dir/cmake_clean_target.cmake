file(REMOVE_RECURSE
  "libstq_interp.a"
)
