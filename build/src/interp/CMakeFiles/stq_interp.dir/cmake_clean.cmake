file(REMOVE_RECURSE
  "CMakeFiles/stq_interp.dir/Interp.cpp.o"
  "CMakeFiles/stq_interp.dir/Interp.cpp.o.d"
  "libstq_interp.a"
  "libstq_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
