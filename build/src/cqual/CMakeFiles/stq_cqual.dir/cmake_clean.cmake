file(REMOVE_RECURSE
  "CMakeFiles/stq_cqual.dir/Cqual.cpp.o"
  "CMakeFiles/stq_cqual.dir/Cqual.cpp.o.d"
  "libstq_cqual.a"
  "libstq_cqual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_cqual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
