# Empty dependencies file for stq_cqual.
# This may be replaced when dependencies are built.
