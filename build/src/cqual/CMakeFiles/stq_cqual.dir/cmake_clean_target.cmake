file(REMOVE_RECURSE
  "libstq_cqual.a"
)
