file(REMOVE_RECURSE
  "libstq_support.a"
)
