file(REMOVE_RECURSE
  "CMakeFiles/stq_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/stq_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/stq_support.dir/Lexer.cpp.o"
  "CMakeFiles/stq_support.dir/Lexer.cpp.o.d"
  "CMakeFiles/stq_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/stq_support.dir/SourceLoc.cpp.o.d"
  "libstq_support.a"
  "libstq_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
