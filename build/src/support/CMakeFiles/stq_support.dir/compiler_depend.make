# Empty compiler generated dependencies file for stq_support.
# This may be replaced when dependencies are built.
