# Empty compiler generated dependencies file for stq_cminus.
# This may be replaced when dependencies are built.
