
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cminus/AST.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/AST.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/AST.cpp.o.d"
  "/root/repo/src/cminus/Lowering.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/Lowering.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/Lowering.cpp.o.d"
  "/root/repo/src/cminus/Parser.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/Parser.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/Parser.cpp.o.d"
  "/root/repo/src/cminus/Printer.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/Printer.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/Printer.cpp.o.d"
  "/root/repo/src/cminus/Sema.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/Sema.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/Sema.cpp.o.d"
  "/root/repo/src/cminus/Type.cpp" "src/cminus/CMakeFiles/stq_cminus.dir/Type.cpp.o" "gcc" "src/cminus/CMakeFiles/stq_cminus.dir/Type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
