file(REMOVE_RECURSE
  "CMakeFiles/stq_cminus.dir/AST.cpp.o"
  "CMakeFiles/stq_cminus.dir/AST.cpp.o.d"
  "CMakeFiles/stq_cminus.dir/Lowering.cpp.o"
  "CMakeFiles/stq_cminus.dir/Lowering.cpp.o.d"
  "CMakeFiles/stq_cminus.dir/Parser.cpp.o"
  "CMakeFiles/stq_cminus.dir/Parser.cpp.o.d"
  "CMakeFiles/stq_cminus.dir/Printer.cpp.o"
  "CMakeFiles/stq_cminus.dir/Printer.cpp.o.d"
  "CMakeFiles/stq_cminus.dir/Sema.cpp.o"
  "CMakeFiles/stq_cminus.dir/Sema.cpp.o.d"
  "CMakeFiles/stq_cminus.dir/Type.cpp.o"
  "CMakeFiles/stq_cminus.dir/Type.cpp.o.d"
  "libstq_cminus.a"
  "libstq_cminus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_cminus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
