file(REMOVE_RECURSE
  "libstq_cminus.a"
)
