file(REMOVE_RECURSE
  "libstq_checker.a"
)
