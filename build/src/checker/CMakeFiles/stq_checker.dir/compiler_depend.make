# Empty compiler generated dependencies file for stq_checker.
# This may be replaced when dependencies are built.
