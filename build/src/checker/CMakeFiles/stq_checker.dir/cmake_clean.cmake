file(REMOVE_RECURSE
  "CMakeFiles/stq_checker.dir/Checker.cpp.o"
  "CMakeFiles/stq_checker.dir/Checker.cpp.o.d"
  "CMakeFiles/stq_checker.dir/Inference.cpp.o"
  "CMakeFiles/stq_checker.dir/Inference.cpp.o.d"
  "libstq_checker.a"
  "libstq_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
