file(REMOVE_RECURSE
  "libstq_prover.a"
)
