# Empty compiler generated dependencies file for stq_prover.
# This may be replaced when dependencies are built.
