
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prover/Formula.cpp" "src/prover/CMakeFiles/stq_prover.dir/Formula.cpp.o" "gcc" "src/prover/CMakeFiles/stq_prover.dir/Formula.cpp.o.d"
  "/root/repo/src/prover/Prover.cpp" "src/prover/CMakeFiles/stq_prover.dir/Prover.cpp.o" "gcc" "src/prover/CMakeFiles/stq_prover.dir/Prover.cpp.o.d"
  "/root/repo/src/prover/Term.cpp" "src/prover/CMakeFiles/stq_prover.dir/Term.cpp.o" "gcc" "src/prover/CMakeFiles/stq_prover.dir/Term.cpp.o.d"
  "/root/repo/src/prover/Theory.cpp" "src/prover/CMakeFiles/stq_prover.dir/Theory.cpp.o" "gcc" "src/prover/CMakeFiles/stq_prover.dir/Theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
