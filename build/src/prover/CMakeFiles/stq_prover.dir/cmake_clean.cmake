file(REMOVE_RECURSE
  "CMakeFiles/stq_prover.dir/Formula.cpp.o"
  "CMakeFiles/stq_prover.dir/Formula.cpp.o.d"
  "CMakeFiles/stq_prover.dir/Prover.cpp.o"
  "CMakeFiles/stq_prover.dir/Prover.cpp.o.d"
  "CMakeFiles/stq_prover.dir/Term.cpp.o"
  "CMakeFiles/stq_prover.dir/Term.cpp.o.d"
  "CMakeFiles/stq_prover.dir/Theory.cpp.o"
  "CMakeFiles/stq_prover.dir/Theory.cpp.o.d"
  "libstq_prover.a"
  "libstq_prover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_prover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
