# Empty dependencies file for stqc.
# This may be replaced when dependencies are built.
