file(REMOVE_RECURSE
  "CMakeFiles/stqc.dir/stqc.cpp.o"
  "CMakeFiles/stqc.dir/stqc.cpp.o.d"
  "stqc"
  "stqc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stqc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
