# CMake generated Testfile for 
# Source directory: /root/repo/src/tools
# Build directory: /root/repo/build/src/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(stqc.prove_builtins "/root/repo/build/src/tools/stqc" "prove")
set_tests_properties(stqc.prove_builtins PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;5;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.dump_builtin "/root/repo/build/src/tools/stqc" "dump-builtin" "pos")
set_tests_properties(stqc.dump_builtin PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;6;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.check_ok "/root/repo/build/src/tools/stqc" "check" "-e" "int pos x = 3;" "--builtins" "pos,neg")
set_tests_properties(stqc.check_ok PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;7;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.check_fails "/root/repo/build/src/tools/stqc" "check" "-e" "int pos x = -1;" "--builtins" "pos,neg")
set_tests_properties(stqc.check_fails PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;9;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.run_program "/root/repo/build/src/tools/stqc" "run" "-e" "int main() { printf(\"%d\", 6 * 7); return 0; }" "--builtins" "tainted,untainted")
set_tests_properties(stqc.run_program PROPERTIES  PASS_REGULAR_EXPRESSION "42" _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;12;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.run_check_failure "/root/repo/build/src/tools/stqc" "run" "-e" "int main() { int y = -3; int pos x = (int pos) y; return x; }" "--builtins" "pos,neg")
set_tests_properties(stqc.run_check_failure PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;16;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
add_test(stqc.infer "/root/repo/build/src/tools/stqc" "infer" "-e" "int f() { int x = 3; int y = x * x; return y; }" "--builtins" "pos,neg")
set_tests_properties(stqc.infer PROPERTIES  PASS_REGULAR_EXPRESSION "'y' may be annotated: pos" _BACKTRACE_TRIPLES "/root/repo/src/tools/CMakeLists.txt;20;add_test;/root/repo/src/tools/CMakeLists.txt;0;")
