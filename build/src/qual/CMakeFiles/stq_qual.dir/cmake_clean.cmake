file(REMOVE_RECURSE
  "CMakeFiles/stq_qual.dir/Builtins.cpp.o"
  "CMakeFiles/stq_qual.dir/Builtins.cpp.o.d"
  "CMakeFiles/stq_qual.dir/QualAST.cpp.o"
  "CMakeFiles/stq_qual.dir/QualAST.cpp.o.d"
  "CMakeFiles/stq_qual.dir/QualParser.cpp.o"
  "CMakeFiles/stq_qual.dir/QualParser.cpp.o.d"
  "libstq_qual.a"
  "libstq_qual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stq_qual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
