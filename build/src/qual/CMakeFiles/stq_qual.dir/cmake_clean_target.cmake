file(REMOVE_RECURSE
  "libstq_qual.a"
)
