# Empty compiler generated dependencies file for stq_qual.
# This may be replaced when dependencies are built.
