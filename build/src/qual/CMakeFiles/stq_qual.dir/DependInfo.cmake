
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qual/Builtins.cpp" "src/qual/CMakeFiles/stq_qual.dir/Builtins.cpp.o" "gcc" "src/qual/CMakeFiles/stq_qual.dir/Builtins.cpp.o.d"
  "/root/repo/src/qual/QualAST.cpp" "src/qual/CMakeFiles/stq_qual.dir/QualAST.cpp.o" "gcc" "src/qual/CMakeFiles/stq_qual.dir/QualAST.cpp.o.d"
  "/root/repo/src/qual/QualParser.cpp" "src/qual/CMakeFiles/stq_qual.dir/QualParser.cpp.o" "gcc" "src/qual/CMakeFiles/stq_qual.dir/QualParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cminus/CMakeFiles/stq_cminus.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stq_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
