file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_untainted.dir/bench_table2_untainted.cpp.o"
  "CMakeFiles/bench_table2_untainted.dir/bench_table2_untainted.cpp.o.d"
  "bench_table2_untainted"
  "bench_table2_untainted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_untainted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
