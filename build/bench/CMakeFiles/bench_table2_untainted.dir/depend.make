# Empty dependencies file for bench_table2_untainted.
# This may be replaced when dependencies are built.
