file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_time.dir/bench_checker_time.cpp.o"
  "CMakeFiles/bench_checker_time.dir/bench_checker_time.cpp.o.d"
  "bench_checker_time"
  "bench_checker_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
