# Empty compiler generated dependencies file for bench_checker_time.
# This may be replaced when dependencies are built.
