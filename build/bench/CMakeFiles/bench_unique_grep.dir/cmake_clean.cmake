file(REMOVE_RECURSE
  "CMakeFiles/bench_unique_grep.dir/bench_unique_grep.cpp.o"
  "CMakeFiles/bench_unique_grep.dir/bench_unique_grep.cpp.o.d"
  "bench_unique_grep"
  "bench_unique_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unique_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
