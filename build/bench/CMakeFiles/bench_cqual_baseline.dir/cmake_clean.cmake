file(REMOVE_RECURSE
  "CMakeFiles/bench_cqual_baseline.dir/bench_cqual_baseline.cpp.o"
  "CMakeFiles/bench_cqual_baseline.dir/bench_cqual_baseline.cpp.o.d"
  "bench_cqual_baseline"
  "bench_cqual_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cqual_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
