# Empty dependencies file for bench_cqual_baseline.
# This may be replaced when dependencies are built.
