file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nonnull.dir/bench_table1_nonnull.cpp.o"
  "CMakeFiles/bench_table1_nonnull.dir/bench_table1_nonnull.cpp.o.d"
  "bench_table1_nonnull"
  "bench_table1_nonnull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nonnull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
