# Empty dependencies file for bench_table1_nonnull.
# This may be replaced when dependencies are built.
