# Empty compiler generated dependencies file for bench_lambda_preservation.
# This may be replaced when dependencies are built.
