file(REMOVE_RECURSE
  "CMakeFiles/bench_lambda_preservation.dir/bench_lambda_preservation.cpp.o"
  "CMakeFiles/bench_lambda_preservation.dir/bench_lambda_preservation.cpp.o.d"
  "bench_lambda_preservation"
  "bench_lambda_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lambda_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
