# Empty dependencies file for bench_soundness_times.
# This may be replaced when dependencies are built.
