file(REMOVE_RECURSE
  "CMakeFiles/bench_soundness_times.dir/bench_soundness_times.cpp.o"
  "CMakeFiles/bench_soundness_times.dir/bench_soundness_times.cpp.o.d"
  "bench_soundness_times"
  "bench_soundness_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
