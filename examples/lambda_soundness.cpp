//===- lambda_soundness.cpp - The section 5 formalization, live -----------===//
//
// Theorem 5.1 (type preservation) as an executable experiment over the
// paper's lambda calculus with references and qualifiers: random
// well-typed programs preserve semantic conformance under locally sound
// rules, and the paper's bogus subtraction rule is caught by concrete
// counterexample programs.
//
//===----------------------------------------------------------------------===//

#include "lambda/Lambda.h"

#include <cstdio>

using namespace stq::lambda;

namespace {

struct SweepResult {
  unsigned Generated = 0;
  unsigned WellTyped = 0;
  unsigned Preserved = 0;
  std::string FirstCounterexample;
};

SweepResult sweep(const QualSystem &Sys, unsigned N) {
  SweepResult R;
  for (unsigned I = 0; I < N; ++I) {
    GenOptions Options;
    Options.Seed = I;
    Options.MaxDepth = 4;
    TermPtr T = generateTerm(Options);
    ++R.Generated;
    LTypePtr Ty = typecheck(T, Sys);
    if (!Ty)
      continue;
    Store S;
    EvalResult E = evaluate(T, S);
    if (!E.Ok)
      continue;
    ++R.WellTyped;
    if (preservationHolds(E.Value, Ty, S, Sys)) {
      ++R.Preserved;
    } else if (R.FirstCounterexample.empty()) {
      R.FirstCounterexample = T->str() + " : " + Ty->str() +
                              "  evaluated to " + E.Value->str();
    }
  }
  return R;
}

} // namespace

int main() {
  std::printf("== A concrete derivation ==\n");
  QualSystem Sound = QualSystem::posNegNonzero();
  TermPtr Demo = tLet("x", tConst(3),
                      tBin(LBinOp::Mul, tVar("x"), tVar("x")));
  LTypePtr DemoTy = typecheck(Demo, Sound);
  std::printf("  %s : %s\n", Demo->str().c_str(), DemoTy->str().c_str());

  std::printf("\n== Theorem 5.1 over random programs ==\n");
  SweepResult S1 = sweep(Sound, 3000);
  std::printf("sound rules:  %u generated, %u well-typed runs, %u/%u "
              "preserved conformance\n",
              S1.Generated, S1.WellTyped, S1.Preserved, S1.WellTyped);

  QualSystem Bogus = QualSystem::withBogusSubtractionRule();
  SweepResult S2 = sweep(Bogus, 3000);
  std::printf("bogus `pos (e1 - e2)` rule: %u/%u preserved\n", S2.Preserved,
              S2.WellTyped);
  if (!S2.FirstCounterexample.empty())
    std::printf("  first counterexample: %s\n",
                S2.FirstCounterexample.c_str());

  bool Ok = S1.WellTyped > 0 && S1.Preserved == S1.WellTyped &&
            S2.Preserved < S2.WellTyped;
  std::printf("\n%s\n", Ok ? "Theorem 5.1 holds for the sound system; the "
                             "unsound variant is refuted."
                           : "UNEXPECTED RESULT");
  return Ok ? 0 : 1;
}
