//===- nonnull_grep.cpp - The Table 1 experiment, end to end --------------===//
//
// Reproduces section 6.1: statically ensuring the absence of NULL
// dereferences in a grep-dfa-shaped program. Shows the iterative
// annotation process the authors performed by hand: start unannotated
// (one error per dereference), add nonnull annotations where the rules
// justify them, insert casts where flow-insensitivity defeats the rules,
// and converge to zero errors.
//
//===----------------------------------------------------------------------===//

#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stq::workloads;

int main() {
  GeneratedWorkload W = makeGrepDfa();
  std::printf("workload: %s (%u non-blank lines)\n\n", W.Name.c_str(),
              W.Lines);

  Table1Row Row = runNonnullExperiment(W);

  std::printf("iterative annotation process (section 6.1):\n");
  std::printf("  initial errors (unannotated): %u\n", Row.InitialErrors);
  std::printf("  iterations to fixpoint:       %u\n", Row.Iterations);
  std::printf("  wall time:                    %.3fs\n\n", Row.Seconds);

  std::printf("%-16s %10s %10s\n", "Table 1", "paper", "this repo");
  std::printf("%-16s %10s %10s\n", "program:", "grep", "grep-dfa");
  std::printf("%-16s %10u %10u\n", "lines:", 2287u, Row.Lines);
  std::printf("%-16s %10u %10u\n", "dereferences:", 1072u,
              Row.Dereferences);
  std::printf("%-16s %10u %10u\n", "annotations:", 114u, Row.Annotations);
  std::printf("%-16s %10u %10u\n", "casts:", 59u, Row.Casts);
  std::printf("%-16s %10u %10u\n", "errors:", 0u, Row.Errors);
  return Row.Errors == 0 ? 0 : 1;
}
