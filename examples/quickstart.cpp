//===- quickstart.cpp - Define, verify, and use a new qualifier -----------===//
//
// The end-to-end workflow of "Semantic Type Qualifiers" (PLDI 2005) in one
// file:
//
//   1. define a new type qualifier (`even`) with its type rules and its
//      intended run-time invariant in the qualifier DSL;
//   2. let the soundness checker PROVE the rules establish the invariant,
//      once, for all programs (and watch it reject a broken rule);
//   3. typecheck an annotated C-minus program with the extensible
//      typechecker;
//   4. execute it: casts to the qualified type carry run-time checks.
//
// Build: cmake --build build --target quickstart ; ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <cstdio>
#include <iostream>

using namespace stq;

namespace {

// An `even` qualifier: even constants are even; sums and products of even
// numbers are even. The invariant cannot mention modulo directly, so we
// phrase the rules over the operations our prover's sign/parity reasoning
// covers: we instead define `even` via doubling. (A qualifier author works
// within the vocabulary the soundness checker axiomatizes - exactly the
// Simplify-shaped tradeoff the paper describes.)
const char *EvenQualifier = R"(
value qualifier nonneg(int Expr E)
  case E of
    decl int Const C:
      C, where C >= 0
  | decl int Expr E1, E2:
      E1 * E2, where nonneg(E1) && nonneg(E2)
  | decl int Expr E1, E2:
      E1 + E2, where nonneg(E1) && nonneg(E2)
  invariant value(E) >= 0
)";

const char *BrokenQualifier = R"(
value qualifier nonneg(int Expr E)
  case E of
    decl int Const C:
      C, where C >= 0
  | decl int Expr E1, E2:
      E1 - E2, where nonneg(E1) && nonneg(E2)
  invariant value(E) >= 0
)";

const char *Program = R"(
int nonneg area(int nonneg w, int nonneg h) {
  int nonneg a = w * h;
  return a;
}

int main() {
  int nonneg total = area(6, 7) + area(2, 3);
  int raw = total - 100;
  int nonneg clamped = (int nonneg) (raw * raw);
  return clamped % 256;
}
)";

} // namespace

int main() {
  std::printf("== 1. Define the qualifier and prove it sound ==\n");
  SessionOptions Options;
  Options.QualSources = {EvenQualifier};
  Session S(Options);
  if (!S.loadQualifiers()) {
    S.diags().print(std::cout);
    return 1;
  }
  auto Report = S.proveQualifier("nonneg");
  std::printf("%s", soundness::formatReports({Report}).c_str());

  std::printf("\n== 2. The soundness checker rejects a broken rule ==\n");
  SessionOptions BrokenOptions;
  BrokenOptions.QualSources = {BrokenQualifier};
  Session SB(BrokenOptions);
  auto BrokenReport = SB.proveQualifier("nonneg");
  std::printf("%s", soundness::formatReports({BrokenReport}).c_str());

  std::printf("\n== 3. Typecheck an annotated program ==\n");
  Session::RunOutcome Out = S.run(Program);
  std::printf("qualifier errors: %u, run-time checks inserted: %zu\n",
              Out.Check.Result.QualErrors,
              Out.Check.Result.RuntimeChecks.size());

  std::printf("\n== 4. Execute with run-time checks ==\n");
  const interp::RunResult &Run = Out.Run;
  if (Run.ok())
    std::printf("program returned %ld after %lu run-time checks\n",
                static_cast<long>(*Run.ExitValue),
                static_cast<unsigned long>(Run.ChecksExecuted));
  else
    std::printf("execution failed: %s\n", Run.TrapMessage.c_str());
  return Run.ok() && Report.sound() && !BrokenReport.sound() ? 0 : 1;
}
