//===- taint_format_string.cpp - Figure 4 and the bftpd bug ---------------===//
//
// The taintedness analysis of sections 2.1.4 and 6.3: untainted format
// strings for printf. Demonstrates:
//
//   * the paper's code snippet (a cast marks "%s" trustworthy; passing an
//     arbitrary buffer as the format is rejected);
//   * the full bftpd experiment: two wrapper parameters get annotated, the
//     real exploitable call is flagged;
//   * the exploit actually firing dynamically in the interpreter.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stq;
using namespace stq::workloads;

int main() {
  SessionOptions Options;
  Options.Builtins = {"tainted", "untainted"};

  std::printf("== Figure 4: flow checking for format strings ==\n");
  const char *Snippet = "int printf(char* untainted fmt, ...);\n"
                        "void f(char* buf) {\n"
                        "  char* untainted fmt = (char* untainted) \"%s\";\n"
                        "  printf(fmt, buf);\n" // OK
                        "  printf(buf);\n"      // rejected
                        "}\n";
  Session SnippetS(Options);
  Session::CheckOutcome R = SnippetS.check(Snippet);
  std::printf("printf(fmt, buf) accepted; printf(buf) rejected: "
              "%u qualifier error(s)\n",
              R.Result.QualErrors);
  for (const Diagnostic &D : SnippetS.diags().diagnostics())
    if (D.Phase == "qualcheck")
      std::printf("  %s\n", D.str().c_str());

  std::printf("\n== Table 2: the three programs ==\n");
  Table2Row B = runUntaintedExperiment(makeBftpd());
  Table2Row M = runUntaintedExperiment(makeMingetty());
  Table2Row I = runUntaintedExperiment(makeIdentd());
  std::printf("%-14s %18s %18s %18s\n", "Table 2", "bftpd", "mingetty",
              "identd");
  std::printf("%-14s %8u/%-9u %8u/%-9u %8u/%-9u   (paper/this repo)\n",
              "lines:", 750u, B.Lines, 293u, M.Lines, 228u, I.Lines);
  std::printf("%-14s %8u/%-9u %8u/%-9u %8u/%-9u\n", "printf calls:", 134u,
              B.PrintfCalls, 23u, M.PrintfCalls, 21u, I.PrintfCalls);
  std::printf("%-14s %8u/%-9u %8u/%-9u %8u/%-9u\n", "annotations:", 2u,
              B.Annotations, 1u, M.Annotations, 0u, I.Annotations);
  std::printf("%-14s %8u/%-9u %8u/%-9u %8u/%-9u\n", "casts:", 0u, B.Casts,
              0u, M.Casts, 0u, I.Casts);
  std::printf("%-14s %8u/%-9u %8u/%-9u %8u/%-9u\n", "errors:", 1u, B.Errors,
              0u, M.Errors, 0u, I.Errors);

  std::printf("\n== The bftpd bug is a real exploit ==\n");
  std::string Poc = makeBftpd().Source +
                    "\nint poc() {\n"
                    "  struct session* s = (struct session*) "
                    "malloc(sizeof(struct session));\n"
                    "  s->sock = 4;\n"
                    "  struct dirent* e = (struct dirent*) "
                    "malloc(sizeof(struct dirent));\n"
                    "  e->d_name = \"%x%x%x%x\";\n"
                    "  command_list_entry(s, e);\n"
                    "  return 0;\n"
                    "}\n";
  SessionOptions PocOptions = Options;
  PocOptions.Interp.EntryPoint = "poc";
  Session PocS(PocOptions);
  interp::RunResult Run = PocS.run(Poc).Run;
  for (const auto &V : Run.FormatViolations)
    std::printf("  format-string violation at %s: \"%s\" consumed %u "
                "arguments, %u supplied\n",
                V.Loc.str().c_str(), V.Format.c_str(), V.Consumed,
                V.Supplied);
  std::printf("  output leaked: %s\n", Run.Output.c_str());
  return (B.Errors == 1 && M.Errors == 0 && I.Errors == 0 &&
          !Run.FormatViolations.empty())
             ? 0
             : 1;
}
