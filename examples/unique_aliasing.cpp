//===- unique_aliasing.cpp - Reference qualifiers (figures 5-7, 13) -------===//
//
// The reference-qualifier half of the paper: unique and unaliased.
// Demonstrates:
//
//   * figure 6 (make_array) typechecking via the `new` assign rule;
//   * the disallow rule rejecting `int* q = p` and globals passed as
//     arguments (the real violations found in grep, section 6.2);
//   * the soundness checker proving unique/unaliased sound, and rejecting
//     unique with its disallow clause deleted (preservation fails);
//   * the section 6.2 experiment: 49 references to the dfa global
//     validated, the initialization handled by one unchecked cast.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "workloads/AnnotationDriver.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace stq;
using namespace stq::workloads;

int main() {
  SessionOptions Options;
  Options.Builtins = {"unique", "unaliased"};

  std::printf("== Figure 6: make_array typechecks ==\n");
  const char *Fig6 = "int* unique array;\n"
                     "void make_array(int n) {\n"
                     "  array = (int*) malloc(sizeof(int) * n);\n"
                     "  for (int i = 0; i < n; i = i + 1)\n"
                     "    array[i] = i;\n"
                     "}\n";
  Session S1(Options);
  auto R1 = S1.check(Fig6).Result;
  std::printf("qualifier errors: %u (malloc matches the `new` assign "
              "rule; element writes are unrestricted)\n",
              R1.QualErrors);

  std::printf("\n== The disallow rule at work ==\n");
  const char *Violations = "int* unique p;\n"
                           "void consume(int* x);\n"
                           "void f() {\n"
                           "  int* q = p;\n"   // refer-to: rejected
                           "  int i = *p;\n"   // dereference: fine
                           "  consume(p);\n"   // implicit copy: rejected
                           "}\n"
                           "void g() {\n"
                           "  int unaliased y;\n"
                           "  int* r = &y;\n"  // address-of: rejected
                           "  y = 3;\n"
                           "}\n";
  Session S2(Options);
  auto R2 = S2.check(Violations).Result;
  for (const Diagnostic &D : S2.diags().diagnostics())
    if (D.Phase == "qualcheck")
      std::printf("  %s\n", D.str().c_str());
  std::printf("(%u violations; the dereference was allowed)\n",
              R2.QualErrors);

  std::printf("\n== Soundness: disallow is what makes unique sound ==\n");
  Session SP(Options);
  auto UniqueReport = SP.proveQualifier("unique");
  auto UnaliasedReport = SP.proveQualifier("unaliased");
  std::printf("unique:    %s (%zu obligations, %.3fs)\n",
              UniqueReport.sound() ? "SOUND" : "UNSOUND",
              UniqueReport.Obligations.size(), UniqueReport.TotalSeconds);
  std::printf("unaliased: %s (%zu obligations, %.3fs)\n",
              UnaliasedReport.sound() ? "SOUND" : "UNSOUND",
              UnaliasedReport.Obligations.size(),
              UnaliasedReport.TotalSeconds);

  SessionOptions NoDisallowOptions;
  NoDisallowOptions.QualSources = {
      "ref qualifier unique(T* LValue L)\n"
      "  assign L\n"
      "    NULL\n"
      "  | new\n"
      "  invariant value(L) == NULL ||\n"
      "            (isHeapLoc(value(L)) &&\n"
      "             forall T** P: *P == value(L) => P == location(L))\n"};
  Session SND(NoDisallowOptions);
  auto BrokenReport = SND.proveQualifier("unique");
  std::printf("unique without `disallow L`: %s\n",
              BrokenReport.sound() ? "SOUND (?!)" : "UNSOUND - rejected");
  for (const auto &O : BrokenReport.Obligations)
    if (!O.proved())
      std::printf("  failed obligation: %s\n", O.Description.c_str());

  std::printf("\n== Section 6.2: the dfa global in grep ==\n");
  UniqueRow Ok = runUniqueExperiment(makeGrepDfaUnique());
  std::printf("references to dfa validated: %u (paper: 49), violations: "
              "%u, initialization casts: %u\n",
              Ok.RefSites, Ok.Violations, Ok.Casts);
  UniqueRow Bad = runUniqueExperiment(makeGrepDfaUniqueViolating());
  std::printf("with a global passed to a procedure: %u violation(s) "
              "(the idiom the paper reports as a true uniqueness "
              "violation)\n",
              Bad.Violations);

  return (R1.QualErrors == 0 && R2.QualErrors == 3 && UniqueReport.sound() &&
          !BrokenReport.sound() && Ok.Violations == 0 && Bad.Violations > 0)
             ? 0
             : 1;
}
